"""Substrate performance benchmark: kernel, scan kernels, end-to-end.

The paper's experiments all grind through two hot layers: the DES kernel
(every simulated RDMA op is a heap push/pop, an event and a generator
resume) and the R-tree scan kernels (every node visit scans up to 64
entries).  This module measures both in isolation plus one Fig-10-shaped
end-to-end run, and records the numbers in ``BENCH_perf.json`` so every PR
has a wall-clock trajectory to compare against.

Three kernels:

* ``kernel`` — pure DES event churn: timeout-heavy processes plus
  event ping-pong, reported as **events/second**;
* ``search`` — R-tree range scans over a bulk-loaded tree, reported as
  **node visits/second**;
* ``end_to_end`` — two Fig-10-shaped runs, reported as summed **wall
  seconds** (simulated results are also recorded so a perf PR can prove
  it did not change simulated time): an *adaptive* catfish point loaded
  past the offload threshold (both the server-side and the client-side
  traversal paths execute) and a pure *offload* point (one-sided reads,
  the serializer/snapshot path).  Only the simulation run is timed —
  dataset generation and bulk loading happen before the clock starts.

Artifact schema (``catfish-perf/v1``)::

    {
      "schema": "catfish-perf/v1",
      "scale": "small",
      "baseline": {<run>} | null,     # captured before an optimization PR
      "current":  {<run>},            # the latest measurement
      "speedup":  {"kernel": x, "search": x, "end_to_end": x}
    }

where ``<run>`` is::

    {
      "kernel_events_per_s": float,
      "search_visits_per_s": float,
      "end_to_end": {
        "wall_s": float,              # sum over points, observability on
        "wall_s_obs_off": float,      # ditto, counters disabled (repro.obs)
        "points": {                   # per-point detail
          "<name>": {
            "wall_s": float,
            "sim_elapsed_s": float,   # simulated seconds (must not change)
            "throughput_kops": float, # simulated throughput (ditto)
            "total_requests": int
          }, ...
        }
      },
      "repeats": int,                 # each stage ran this many times
      "total_wall_s": float
    }

All wall-clock numbers are **best-of-``repeats``** (min wall / max rate):
the minimum is the standard noise-robust estimator for benchmarks whose
true cost is constant and whose noise is strictly additive (scheduler
preemption, cache pollution from neighbours).  The end-to-end stage runs
*first*, before the kernel/search loops have churned the allocator.

Usage::

    python -m repro perf                  # measure, write BENCH_perf.json
    python -m repro perf --baseline       # record as the pre-PR baseline
    python benchmarks/bench_perf_substrate.py   # same, stand-alone
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

DEFAULT_OUT = "BENCH_perf.json"

#: Work sizes per CATFISH_BENCH_SCALE preset (kept deliberately smaller
#: than the figure benches: this harness runs on every perf-minded PR).
SCALE_PARAMS = {
    "small": dict(
        kernel_loops=150_000,
        search_queries=10_000,
        dataset_size=40_000,
        e2e_clients=32,
        e2e_requests=200,
    ),
    "medium": dict(
        kernel_loops=120_000,
        search_queries=6_000,
        dataset_size=200_000,
        e2e_clients=64,
        e2e_requests=400,
    ),
    "large": dict(
        kernel_loops=400_000,
        search_queries=20_000,
        dataset_size=2_000_000,
        e2e_clients=128,
        e2e_requests=1000,
    ),
}


def bench_scale() -> str:
    name = os.environ.get("CATFISH_BENCH_SCALE", "small")
    if name not in SCALE_PARAMS:
        raise KeyError(
            f"CATFISH_BENCH_SCALE={name!r}; known: {sorted(SCALE_PARAMS)}"
        )
    return name


# -- kernel events/sec -------------------------------------------------------


def bench_kernel_events(loops: int, repeats: int = 1) -> Dict[str, float]:
    """DES event churn: timeouts, manual events, process chains.

    Each loop iteration schedules/processes a fixed basket of events, so
    the shape of the workload (the alloc/heap/resume mix of a simulated
    RDMA op) is identical across PRs and events/sec is comparable.
    """
    from .sim.kernel import Simulator

    # Per loop iteration: 2 Timeout events + 1 manual event + the partner
    # resume = a realistic op's worth of kernel traffic.
    events_per_loop = 3

    def worker(sim, loops):
        for _ in range(loops):
            yield sim.timeout(1.0)
            ev = sim.event()
            ev.succeed(None)
            yield ev
            yield sim.timeout(0.5)

    n_workers = 4
    wall = None
    for _ in range(max(1, repeats)):
        sim = Simulator()
        for _ in range(n_workers):
            sim.process(worker(sim, loops // n_workers))
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        wall = elapsed if wall is None else min(wall, elapsed)
    total_events = loops // n_workers * n_workers * events_per_loop
    return {"events": total_events, "wall_s": wall,
            "events_per_s": total_events / wall}


# -- R-tree search visits/sec ------------------------------------------------


def bench_search_visits(dataset_size: int,
                        n_queries: int,
                        repeats: int = 1) -> Dict[str, float]:
    """Range scans over a bulk-loaded tree (the server's scan kernel)."""
    from .rtree.bulk import bulk_load
    from .rtree.geometry import Rect
    from .sim.rng import RngRegistry
    from .workloads.datasets import uniform_dataset

    items = uniform_dataset(dataset_size, seed=0)
    tree = bulk_load(items)
    rng = RngRegistry(0).stream("perf-search")
    side = 0.02  # a mid-size query: a few leaf nodes per search
    queries = []
    for _ in range(n_queries):
        cx = rng.uniform(side, 1.0 - side)
        cy = rng.uniform(side, 1.0 - side)
        queries.append(Rect(cx - side / 2, cy - side / 2,
                            cx + side / 2, cy + side / 2))
    wall = None
    for _ in range(max(1, repeats)):
        visits = 0
        matches = 0
        start = time.perf_counter()
        for query in queries:
            result = tree.search(query)
            visits += result.nodes_visited
            matches += result.count
        elapsed = time.perf_counter() - start
        wall = elapsed if wall is None else min(wall, elapsed)
    return {"queries": n_queries, "visits": visits, "matches": matches,
            "wall_s": wall, "visits_per_s": visits / wall}


#: Queries per shared-frontier group in the batched search stage.  The
#: amortization factor is bounded by (group size x visits-per-query) /
#: tree size, so the group must be deep enough for queries to overlap;
#: 4096 over the 40k-item small tree revisits each hot node ~25x fewer
#: times than sequential search does.
BATCH_GROUP_SIZE = 4096


def bench_search_visits_batched(dataset_size: int,
                                n_queries: int,
                                repeats: int = 1,
                                batch_size: int = BATCH_GROUP_SIZE
                                ) -> Dict[str, float]:
    """The same scans through the cross-query batch engine.

    Identical tree, identical query stream, identical per-query results
    (asserted); ``visits`` counts the same per-query node visits as the
    sequential stage, so visits/s is directly comparable — the batch
    engine's whole advantage is doing those visits as shared (Q x E)
    matrix evaluations, each tree node scanned once per group.
    """
    from .rtree.batch import BatchSearchEngine
    from .rtree.bulk import bulk_load
    from .rtree.geometry import Rect
    from .sim.rng import RngRegistry
    from .workloads.datasets import uniform_dataset

    items = uniform_dataset(dataset_size, seed=0)
    tree = bulk_load(items)
    rng = RngRegistry(0).stream("perf-search")
    side = 0.02
    queries = []
    for _ in range(n_queries):
        cx = rng.uniform(side, 1.0 - side)
        cy = rng.uniform(side, 1.0 - side)
        queries.append(Rect(cx - side / 2, cy - side / 2,
                            cx + side / 2, cy + side / 2))
    groups = [queries[i:i + batch_size]
              for i in range(0, len(queries), batch_size)]
    wall = None
    for _ in range(max(1, repeats)):
        engine = BatchSearchEngine(tree)
        visits = 0
        matches = 0
        start = time.perf_counter()
        for group in groups:
            for result in engine.search_batch(group):
                visits += result.nodes_visited
                matches += result.count
        elapsed = time.perf_counter() - start
        wall = elapsed if wall is None else min(wall, elapsed)
    return {"queries": n_queries, "batch_size": batch_size,
            "visits": visits, "matches": matches,
            "shared_visits": engine.shared_visits,
            "wall_s": wall, "visits_per_s": visits / wall}


# -- end-to-end Fig-10-shaped run --------------------------------------------


def _e2e_config(params: Dict[str, Any], seed: int = 0):
    from .client.adaptive import AdaptiveParams
    from .cluster.config import ExperimentConfig

    heartbeat = 0.25e-3
    return ExperimentConfig(
        scheme="catfish",
        fabric="ib-100g",
        n_clients=params["e2e_clients"],
        requests_per_client=params["e2e_requests"],
        workload_kind="search",
        scale="0.001",
        dataset_size=params["dataset_size"],
        heartbeat_interval=heartbeat,
        adaptive=AdaptiveParams(N=8, T=0.95, Inv=heartbeat),
        seed=seed,
    )


def _e2e_points(params: Dict[str, Any]):
    """The two timed experiment points (see module docstring).

    The adaptive point is loaded to ~1.5x the base client count: that is
    past Algorithm 1's busy threshold at the small/medium scales, so a
    realistic fraction of its requests take the offloaded path while the
    rest exercise the server-side fast-messaging path.
    """
    from dataclasses import replace

    base = _e2e_config(params)
    adaptive_clients = int(params["e2e_clients"] * 1.5)
    return [
        ("adaptive", replace(base, n_clients=adaptive_clients)),
        ("offload", replace(base, scheme="rdma-offloading")),
    ]


def _time_point(config, repeats: int):
    """Best-of-``repeats`` wall for one point; setup is never timed.

    Every repeat re-runs the identical deterministic experiment, so the
    simulated results are asserted equal across repeats and only the wall
    clock varies.
    """
    from .cluster.builder import ExperimentRunner

    wall = None
    result = None
    for _ in range(max(1, repeats)):
        runner = ExperimentRunner(config)  # dataset + bulk load: untimed
        start = time.perf_counter()
        run = runner.run()
        elapsed = time.perf_counter() - start
        wall = elapsed if wall is None else min(wall, elapsed)
        if result is not None and run.throughput_kops != result.throughput_kops:
            raise AssertionError(
                "non-deterministic end-to-end run: "
                f"{run.throughput_kops} != {result.throughput_kops} Kops"
            )
        result = run
    return wall, result


def bench_end_to_end(params: Dict[str, Any],
                     repeats: int = 1) -> Dict[str, Any]:
    """Both e2e points, timed twice: observability on and off."""
    from .obs.registry import metrics_enabled, set_metrics_enabled

    points: Dict[str, Dict[str, Any]] = {}
    wall_sum = 0.0
    for name, config in _e2e_points(params):
        wall, result = _time_point(config, repeats)
        wall_sum += wall
        points[name] = {
            "wall_s": wall,
            "sim_elapsed_s": result.elapsed_s,
            "throughput_kops": result.throughput_kops,
            "total_requests": result.total_requests,
        }

    was_enabled = metrics_enabled()
    set_metrics_enabled(False)
    try:
        wall_off_sum = 0.0
        for _name, config in _e2e_points(params):
            wall_off, _ = _time_point(config, repeats)
            wall_off_sum += wall_off
    finally:
        set_metrics_enabled(was_enabled)

    return {
        "wall_s": wall_sum,
        "wall_s_obs_off": wall_off_sum,
        "points": points,
    }


# -- driver ------------------------------------------------------------------


DEFAULT_REPEATS = 3


def run_perf(scale: Optional[str] = None,
             repeats: int = DEFAULT_REPEATS,
             log=print) -> Dict[str, Any]:
    """Run all three kernels at ``scale``; returns one ``<run>`` dict.

    The end-to-end stage runs first (cleanest process state); every stage
    reports its best-of-``repeats`` wall clock.
    """
    name = scale or bench_scale()
    params = SCALE_PARAMS[name]
    total_start = time.perf_counter()
    log(f"[perf] scale={name} repeats={repeats}")
    e2e = bench_end_to_end(params, repeats=repeats)
    detail = ", ".join(
        f"{pname} {p['wall_s']:.2f}s/{p['throughput_kops']:.0f}Kops"
        for pname, p in e2e["points"].items()
    )
    log(f"[perf] end-to-end: {e2e['wall_s']:.2f}s wall "
        f"({e2e['wall_s_obs_off']:.2f}s obs off; {detail})")
    kernel = bench_kernel_events(params["kernel_loops"], repeats=repeats)
    log(f"[perf] kernel: {kernel['events_per_s']:,.0f} events/s "
        f"({kernel['wall_s']:.2f}s)")
    search = bench_search_visits(params["dataset_size"],
                                 params["search_queries"],
                                 repeats=repeats)
    log(f"[perf] search: {search['visits_per_s']:,.0f} visits/s "
        f"({search['wall_s']:.2f}s)")
    from .rtree.batch import kernel_name
    batched = bench_search_visits_batched(params["dataset_size"],
                                          params["search_queries"],
                                          repeats=repeats)
    if batched["matches"] != search["matches"] or (
            batched["visits"] != search["visits"]):
        raise AssertionError(
            "batched search diverged from sequential: "
            f"{batched['matches']}/{batched['visits']} != "
            f"{search['matches']}/{search['visits']}"
        )
    log(f"[perf] search_batched: {batched['visits_per_s']:,.0f} visits/s "
        f"({batched['wall_s']:.2f}s, Q={batched['batch_size']}, "
        f"kernel={kernel_name()}, "
        f"{batched['visits'] / max(1, batched['shared_visits']):.1f} "
        f"queries/shared visit)")
    return {
        "kernel_events_per_s": kernel["events_per_s"],
        "search_visits_per_s": search["visits_per_s"],
        "search_batched_visits_per_s": batched["visits_per_s"],
        "scan_kernel": kernel_name(),
        "end_to_end": e2e,
        "repeats": repeats,
        "total_wall_s": time.perf_counter() - total_start,
    }


def _speedups(baseline: Dict[str, Any],
              current: Dict[str, Any]) -> Dict[str, float]:
    out = {
        "kernel": (current["kernel_events_per_s"]
                   / baseline["kernel_events_per_s"]),
        "search": (current["search_visits_per_s"]
                   / baseline["search_visits_per_s"]),
        "end_to_end": (baseline["end_to_end"]["wall_s"]
                       / current["end_to_end"]["wall_s"]),
    }
    # The batched trajectory appeared after the baseline was captured;
    # compare against the baseline's *sequential* rate (the honest
    # question: how much faster is a batch-capable run than the old
    # per-query scans), guarding older artifacts.
    if "search_batched_visits_per_s" in current:
        out["search_batched"] = (current["search_batched_visits_per_s"]
                                 / baseline["search_visits_per_s"])
    return out


def write_perf_json(path: str, run: Dict[str, Any], scale: str,
                    baseline: bool = False, log=print) -> Dict[str, Any]:
    """Merge ``run`` into the artifact at ``path`` (see module docstring)."""
    doc: Dict[str, Any] = {
        "schema": "catfish-perf/v1",
        "scale": scale,
        "baseline": None,
        "current": None,
    }
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                prior = json.load(fh)
            if prior.get("schema") == doc["schema"]:
                doc.update(prior)
        except (OSError, ValueError):
            pass
    doc["scale"] = scale
    if baseline:
        doc["baseline"] = run
    else:
        doc["current"] = run
    if doc.get("baseline") and doc.get("current"):
        doc["speedup"] = _speedups(doc["baseline"], doc["current"])
        batched = doc["speedup"].get("search_batched")
        log(f"[perf] speedup vs baseline: "
            f"kernel {doc['speedup']['kernel']:.2f}x, "
            f"search {doc['speedup']['search']:.2f}x, "
            + (f"search-batched {batched:.2f}x, "
               if batched is not None else "")
            + f"end-to-end {doc['speedup']['end_to_end']:.2f}x")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    log(f"[perf] artifact -> {path}")
    return doc


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="substrate perf benchmark (kernel / search / e2e)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"artifact path (default {DEFAULT_OUT})")
    parser.add_argument("--baseline", action="store_true",
                        help="record this run as the pre-PR baseline")
    parser.add_argument("--scale", default=None,
                        choices=sorted(SCALE_PARAMS),
                        help="work size (default: $CATFISH_BENCH_SCALE)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="runs per stage; best (min wall) is recorded")
    args = parser.parse_args(argv)
    scale = args.scale or bench_scale()
    run = run_perf(scale, repeats=args.repeats)
    write_perf_json(args.out, run, scale, baseline=args.baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
