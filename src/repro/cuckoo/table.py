"""A cuckoo hash table — the second §VI framework extension.

2-choice cuckoo hashing with multi-slot buckets (4-way associativity, the
standard configuration): every key lives in one of exactly two candidate
buckets; inserts displace ("kick") residents along a bounded random walk.

Buckets carry the same write-window versioning protocol as the tree nodes
so one-sided readers validate snapshots identically — and because the two
candidate buckets are known from the key alone, an offloaded GET needs a
single round trip of two concurrent RDMA Reads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

DEFAULT_SLOTS = 4
MAX_KICKS = 500

_SALT1 = 0x9E3779B97F4A7C15
_SALT2 = 0xC2B2AE3D27D4EB4F


def _mix(value: int, salt: int) -> int:
    """A 64-bit finalizer (xorshift-multiply), deterministic across runs."""
    value = (value ^ salt) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    return value


class CuckooFullError(Exception):
    """An insert exhausted its kick budget — the table is effectively full."""


class Bucket:
    """One bucket: up to ``slots`` (key, value) pairs + version protocol."""

    __slots__ = ("index", "entries", "version", "active_writers")

    def __init__(self, index: int):
        self.index = index
        self.entries: List[Tuple[int, int]] = []
        self.version = 0
        self.active_writers = 0

    # chunk-protocol compatibility (WriteTracker expects these)
    @property
    def chunk_id(self) -> int:
        return self.index

    def begin_write(self) -> None:
        self.active_writers += 1

    def end_write(self) -> None:
        if self.active_writers <= 0:
            raise RuntimeError(f"end_write() on idle bucket {self.index}")
        self.active_writers -= 1
        self.version += 1

    def find(self, key: int) -> Optional[int]:
        for k, v in self.entries:
            if k == key:
                return v
        return None

    def __repr__(self) -> str:
        return f"<Bucket {self.index} n={len(self.entries)}>"


@dataclass
class CuckooOpResult:
    """Accounting for one table operation."""

    ok: bool = True
    items: List[Tuple[int, int]] = field(default_factory=list)
    buckets_probed: int = 0
    kicks: int = 0
    mutated_nodes: List[Bucket] = field(default_factory=list)
    visited_chunks: List[int] = field(default_factory=list)

    def note(self, bucket: Bucket) -> None:
        if bucket not in self.mutated_nodes:
            self.mutated_nodes.append(bucket)


class CuckooHashTable:
    """2-choice, multi-slot cuckoo hashing over integer keys."""

    def __init__(
        self,
        n_buckets: int,
        slots_per_bucket: int = DEFAULT_SLOTS,
        seed: int = 0,
        max_kicks: int = MAX_KICKS,
    ):
        if n_buckets < 2:
            raise ValueError(f"need >= 2 buckets, got {n_buckets}")
        if slots_per_bucket < 1:
            raise ValueError(f"need >= 1 slot, got {slots_per_bucket}")
        self.n_buckets = n_buckets
        self.slots_per_bucket = slots_per_bucket
        self.max_kicks = max_kicks
        self.seed = seed
        self.buckets: List[Bucket] = [Bucket(i) for i in range(n_buckets)]
        self.size = 0
        self._rng = random.Random(seed)
        self.total_kicks = 0

    # -- hashing ------------------------------------------------------------

    def bucket_indices(self, key: int) -> Tuple[int, int]:
        """The key's two candidate buckets (may coincide)."""
        h1 = _mix(key + self.seed, _SALT1) % self.n_buckets
        h2 = _mix(key + self.seed, _SALT2) % self.n_buckets
        return h1, h2

    def _alternate(self, key: int, current: int) -> int:
        h1, h2 = self.bucket_indices(key)
        return h2 if current == h1 else h1

    @property
    def capacity(self) -> int:
        return self.n_buckets * self.slots_per_bucket

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity

    # -- operations -----------------------------------------------------------

    def get(self, key: int) -> CuckooOpResult:
        result = CuckooOpResult()
        h1, h2 = self.bucket_indices(key)
        for index in dict.fromkeys((h1, h2)):  # dedupe, keep order
            result.buckets_probed += 1
            result.visited_chunks.append(index)
            value = self.buckets[index].find(key)
            if value is not None:
                result.items.append((key, value))
                return result
        return result

    def put(self, key: int, value: int) -> CuckooOpResult:
        """Insert or overwrite; raises :class:`CuckooFullError` when the
        displacement walk exceeds the kick budget."""
        result = CuckooOpResult()
        h1, h2 = self.bucket_indices(key)
        # Overwrite in place if present.
        for index in dict.fromkeys((h1, h2)):
            result.buckets_probed += 1
            bucket = self.buckets[index]
            for i, (k, _v) in enumerate(bucket.entries):
                if k == key:
                    bucket.entries[i] = (key, value)
                    result.note(bucket)
                    return result
        # Free slot in either candidate.
        for index in dict.fromkeys((h1, h2)):
            bucket = self.buckets[index]
            if len(bucket.entries) < self.slots_per_bucket:
                bucket.entries.append((key, value))
                result.note(bucket)
                self.size += 1
                return result
        # Displacement walk.
        index = self._rng.choice((h1, h2))
        carry_key, carry_value = key, value
        for _kick in range(self.max_kicks):
            bucket = self.buckets[index]
            slot = self._rng.randrange(self.slots_per_bucket)
            victim_key, victim_value = bucket.entries[slot]
            bucket.entries[slot] = (carry_key, carry_value)
            result.note(bucket)
            result.kicks += 1
            self.total_kicks += 1
            carry_key, carry_value = victim_key, victim_value
            index = self._alternate(carry_key, index)
            target = self.buckets[index]
            if len(target.entries) < self.slots_per_bucket:
                target.entries.append((carry_key, carry_value))
                result.note(target)
                self.size += 1
                return result
        raise CuckooFullError(
            f"insert of {key} exceeded {self.max_kicks} kicks at load "
            f"{self.load_factor:.2f}"
        )

    def delete(self, key: int) -> CuckooOpResult:
        result = CuckooOpResult()
        h1, h2 = self.bucket_indices(key)
        for index in dict.fromkeys((h1, h2)):
            result.buckets_probed += 1
            bucket = self.buckets[index]
            for i, (k, _v) in enumerate(bucket.entries):
                if k == key:
                    bucket.entries.pop(i)
                    result.note(bucket)
                    self.size -= 1
                    return result
        result.ok = False
        return result

    # -- invariants --------------------------------------------------------------

    def validate(self) -> None:
        seen: Dict[int, int] = {}
        total = 0
        for bucket in self.buckets:
            assert len(bucket.entries) <= self.slots_per_bucket
            for k, _v in bucket.entries:
                assert k not in seen, f"key {k} in buckets {seen[k]} and " \
                                      f"{bucket.index}"
                seen[k] = bucket.index
                h1, h2 = self.bucket_indices(k)
                assert bucket.index in (h1, h2), (
                    f"key {k} in bucket {bucket.index}, candidates "
                    f"({h1}, {h2})"
                )
                total += 1
        assert total == self.size, f"size {self.size} but {total} entries"
