"""Server + offload client for the cuckoo hash table over the framework.

The table is one registered region of fixed-size bucket chunks; the
offloading GET computes both candidate buckets from the key and posts two
concurrent RDMA Reads — a single round trip, no meta region needed (no
resize, so the geometry never changes).  Writes go through the ring buffer
and the server's kick logic, wrapped in write windows so racing one-sided
readers observe torn buckets and retry (the window covers every bucket the
displacement walk touched, which is what makes heavy-kick inserts visibly
hostile to readers — an effect this module's benchmark ablates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from ..client.adaptive import CatfishSession
from ..client.base import ClientStats
from ..client.offload_client import OffloadError
from ..hw.host import Host
from ..msg.codec import (
    KvDeleteRequest,
    KvGetRequest,
    KvPutRequest,
    ResponseSegment,
    segment_results,
)
from ..rtree.locks import TreeLockManager
from ..rtree.versioning import WriteTracker
from ..server.costs import DEFAULT_COSTS, CostModel
from ..sim.kernel import Simulator
from ..sim.resources import Store
from ..transport.rdma import QpEndpoint
from .table import Bucket, CuckooFullError, CuckooHashTable

#: A bucket chunk: 4 slots x 16 B + versions, padded to two cache lines.
BUCKET_BYTES = 128


@dataclass(frozen=True)
class BucketSnapshot:
    index: int
    entries: Tuple[Tuple[int, int], ...]
    version: int
    torn: bool

    def find(self, key: int) -> Optional[int]:
        for k, v in self.entries:
            if k == key:
                return v
        return None


def snapshot_bucket(bucket: Bucket) -> BucketSnapshot:
    return BucketSnapshot(
        index=bucket.index,
        entries=tuple(bucket.entries),
        version=bucket.version,
        torn=bucket.active_writers > 0,
    )


@dataclass(frozen=True)
class CuckooDescriptor:
    """Client bootstrap: region + table geometry (hashing is code)."""

    rkey: int
    base: int
    bucket_bytes: int
    n_buckets: int
    slots_per_bucket: int
    seed: int


class _CuckooTarget:
    def __init__(self, service: "CuckooService"):
        self._service = service

    def rdma_read(self, address, length, now):
        offset = address - self._service.region.base
        index = offset // BUCKET_BYTES
        self._service.one_sided_reads += 1
        view = snapshot_bucket(self._service.table.buckets[index])
        if view.torn:
            self._service.torn_reads += 1
        return view

    def rdma_write(self, address, length, payload, now):
        raise PermissionError("clients never write the cuckoo region")


class CuckooService:
    """Server side: executes gets/puts/deletes with CPU costs + windows."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        items: Sequence[Tuple[int, int]] = (),
        n_buckets: int = 4096,
        slots_per_bucket: int = 4,
        costs: CostModel = DEFAULT_COSTS,
        seed: int = 0,
    ):
        self.sim = sim
        self.host = host
        self.costs = costs
        self.service_inflation = 1.0
        self.table = CuckooHashTable(
            n_buckets, slots_per_bucket=slots_per_bucket, seed=seed
        )
        self.region = host.memory.register(
            n_buckets * BUCKET_BYTES, name="cuckoo"
        )
        host.memory.bind(self.region.rkey, _CuckooTarget(self))
        self.locks = TreeLockManager(sim)
        self.write_tracker = WriteTracker(sim)
        self.one_sided_reads = 0
        self.torn_reads = 0
        self.gets_served = 0
        self.puts_served = 0
        self.deletes_served = 0
        self.failed_puts = 0
        for key, value in items:
            self.table.put(key, value)

    def descriptor(self) -> CuckooDescriptor:
        return CuckooDescriptor(
            rkey=self.region.rkey,
            base=self.region.base,
            bucket_bytes=BUCKET_BYTES,
            n_buckets=self.table.n_buckets,
            slots_per_bucket=self.table.slots_per_bucket,
            seed=self.table.seed,
        )

    def bucket_address(self, index: int) -> int:
        return self.region.base + index * BUCKET_BYTES

    # -- execution -----------------------------------------------------------

    def _read_cost(self, result) -> float:
        return (
            self.costs.request_parse
            + result.buckets_probed * self.costs.bucket_probe
        ) * self.service_inflation

    def _write_cost(self, result) -> float:
        return (
            self.costs.request_parse
            + result.buckets_probed * self.costs.bucket_probe
            + self.costs.insert_write
            + result.kicks * self.costs.bucket_probe * 2
        ) * self.service_inflation

    def execute_get(self, key: int) -> Generator:
        result = self.table.get(key)

        def body():
            yield from self.host.cpu.execute(self._read_cost(result))

        yield from self.locks.read_guard(result.visited_chunks, body())
        self.gets_served += 1
        return result.items

    def _run_write(self, result) -> Generator:
        cost = self._write_cost(result)
        chunk_ids = [b.index for b in result.mutated_nodes]

        def body():
            window = min(cost, self.costs.write_window(
                len(result.mutated_nodes)))
            yield from self.host.cpu.execute(cost - window)
            yield from self.write_tracker.write_window(
                result.mutated_nodes, self.host.cpu.execute(window)
            )

        yield from self.locks.write_guard(chunk_ids, body())

    def execute_put(self, key: int, value: int) -> Generator:
        try:
            result = self.table.put(key, value)
        except CuckooFullError:
            self.failed_puts += 1
            return False
        yield from self._run_write(result)
        self.puts_served += 1
        return True

    def execute_delete(self, key: int) -> Generator:
        result = self.table.delete(key)
        yield from self._run_write(result)
        self.deletes_served += 1
        return result.ok

    # -- transport dispatch ------------------------------------------------------

    def handle_request(self, request) -> Generator:
        if isinstance(request, KvGetRequest):
            items = yield from self.execute_get(request.key)
            return segment_results(request.req_id, items)
        if isinstance(request, KvPutRequest):
            ok = yield from self.execute_put(request.key, request.value)
            return [ResponseSegment(request.req_id, (), last=True, ok=ok)]
        if isinstance(request, KvDeleteRequest):
            ok = yield from self.execute_delete(request.key)
            return [ResponseSegment(request.req_id, (), last=True, ok=ok)]
        raise TypeError(f"cuckoo service got unexpected {request!r}")

    def cpu_utilization(self) -> float:
        return self.host.cpu.utilization()


class CuckooOffloadEngine:
    """Client-side GET: both candidate buckets in one concurrent wave."""

    def __init__(
        self,
        sim: Simulator,
        qp: QpEndpoint,
        descriptor: CuckooDescriptor,
        costs: CostModel,
        stats: ClientStats,
        max_read_retries: int = 8,
        retry_backoff: float = 1e-6,
    ):
        self.sim = sim
        self.qp = qp
        self.desc = descriptor
        self.costs = costs
        self.stats = stats
        self.max_read_retries = max_read_retries
        self.retry_backoff = retry_backoff
        #: Client-side mirror of the hash functions (same code, same seed).
        self._shadow = CuckooHashTable(
            descriptor.n_buckets,
            slots_per_bucket=descriptor.slots_per_bucket,
            seed=descriptor.seed,
        )
        self.buckets_fetched = 0

    def _addr(self, index: int) -> int:
        return self.desc.base + index * self.desc.bucket_bytes

    def _read_bucket(self, index: int) -> Generator:
        for attempt in range(self.max_read_retries):
            view: BucketSnapshot = yield self.qp.post_read(
                self.desc.rkey, self._addr(index), self.desc.bucket_bytes
            )
            self.buckets_fetched += 1
            if not view.torn:
                return view
            self.stats.torn_retries += 1
            yield self.sim.timeout(self.retry_backoff * (attempt + 1))
        return None

    def get(self, key: int) -> Generator:
        """One-RTT lookup: both buckets fetched concurrently."""
        self.stats.offloaded_requests += 1
        h1, h2 = self._shadow.bucket_indices(key)
        indices = list(dict.fromkeys((h1, h2)))
        arrived: Store = Store(self.sim)

        def fetch(index):
            view = yield from self._read_bucket(index)
            arrived.put(view)

        for index in indices:
            self.sim.process(fetch(index), name="cuckoo-read")
        views = []
        for _ in indices:
            view = yield arrived.get()
            views.append(view)
        if any(v is None for v in views):
            raise OffloadError(f"bucket reads for key {key} kept tearing")
        yield self.sim.timeout(self.costs.client_node_check)
        items: List[Tuple[int, int]] = []
        for view in views:
            value = view.find(key)
            if value is not None:
                items.append((key, value))
                break
        self.stats.results_received += len(items)
        return items


class CuckooCatfishSession(CatfishSession):
    """Algorithm 1 over cuckoo operations: GETs offload, writes never."""

    def _is_offloadable(self, request) -> bool:
        return request.op == "get"

    def _offload(self, request) -> Generator:
        result = yield from self.engine.get(request.key)
        return result
