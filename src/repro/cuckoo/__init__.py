"""Cuckoo hashing over the Catfish framework (paper §VI extension)."""

from .service import (
    BUCKET_BYTES,
    BucketSnapshot,
    CuckooCatfishSession,
    CuckooDescriptor,
    CuckooOffloadEngine,
    CuckooService,
    snapshot_bucket,
)
from .table import (
    DEFAULT_SLOTS,
    MAX_KICKS,
    Bucket,
    CuckooFullError,
    CuckooHashTable,
    CuckooOpResult,
)

__all__ = [
    "BUCKET_BYTES",
    "BucketSnapshot",
    "CuckooCatfishSession",
    "CuckooDescriptor",
    "CuckooOffloadEngine",
    "CuckooService",
    "snapshot_bucket",
    "DEFAULT_SLOTS",
    "MAX_KICKS",
    "Bucket",
    "CuckooFullError",
    "CuckooHashTable",
    "CuckooOpResult",
]
