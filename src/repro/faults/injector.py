"""The fault injector: interprets a :class:`FaultPlan` against a cluster.

Two kinds of faults exist:

* **passive** faults are consulted from hooks on the hot paths — the
  link asks for a transfer penalty, the NIC for a read stall, the
  heartbeat service whether it is blacked out, the client driver for a
  stall.  Each hook is a single attribute check when no injector is
  attached, so the fault machinery costs nothing in fault-free runs.
* **active** faults are driven by injector-owned processes — worker
  crash/restart windows and write storms do things *to* the cluster on a
  schedule.

All stochastic choices (packet loss) draw from one seeded stream, so a
plan replays bit-identically under a fixed seed.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, List, Optional

from ..obs.registry import Counter, MetricsRegistry
from ..sim.kernel import Simulator
from .plan import (
    BOTH,
    ClientStall,
    FaultPlan,
    HeartbeatBlackout,
    LinkFault,
    NicReadStall,
    ShardLoss,
    WorkerCrash,
    WriteStorm,
)


class FaultInjector:
    """Applies one plan to one simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.plan = plan
        self.rng = rng or random.Random(0)
        # Pre-split by type: the hooks run on hot paths.
        self._link_faults: List[LinkFault] = plan.of_type(LinkFault)
        self._nic_stalls: List[NicReadStall] = plan.of_type(NicReadStall)
        self._blackouts: List[HeartbeatBlackout] = (
            plan.of_type(HeartbeatBlackout)
        )
        self._client_stalls: List[ClientStall] = plan.of_type(ClientStall)
        self._started = False
        self.packets_dropped = Counter("faults.packets_dropped")
        self.latency_injections = Counter("faults.latency_injections")
        self.nic_stalls_injected = Counter("faults.nic_stalls_injected")
        self.beats_blacked_out = Counter("faults.beats_blacked_out")
        self.workers_crashed = Counter("faults.workers_crashed")
        self.workers_restarted = Counter("faults.workers_restarted")
        self.write_storm_windows = Counter("faults.write_storm_windows")
        self.client_stalls_injected = Counter("faults.client_stalls_injected")
        self.shards_lost = Counter("faults.shards_lost")
        self.shards_restored = Counter("faults.shards_restored")

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "faults") -> None:
        """Adopt the injection counters into ``registry``."""
        registry.adopt(f"{prefix}.packets_dropped", self.packets_dropped)
        registry.adopt(f"{prefix}.latency_injections",
                       self.latency_injections)
        registry.adopt(f"{prefix}.nic_stalls_injected",
                       self.nic_stalls_injected)
        registry.adopt(f"{prefix}.beats_blacked_out", self.beats_blacked_out)
        registry.adopt(f"{prefix}.workers_crashed", self.workers_crashed)
        registry.adopt(f"{prefix}.workers_restarted", self.workers_restarted)
        registry.adopt(f"{prefix}.write_storm_windows",
                       self.write_storm_windows)
        registry.adopt(f"{prefix}.client_stalls_injected",
                       self.client_stalls_injected)
        registry.adopt(f"{prefix}.shards_lost", self.shards_lost)
        registry.adopt(f"{prefix}.shards_restored", self.shards_restored)

    # -- passive hooks -----------------------------------------------------

    def link_penalty(self, direction: str) -> float:
        """Extra seconds a transfer waits before taking the transmitter.

        Lost packets pay one ``retransmit_delay_s`` per (geometric)
        retransmission; latency spikes add a flat delay.  Holding the
        penalty *before* the transmitter keeps the link FIFO and lets the
        delay back-pressure senders, like a real retransmission would.
        """
        now = self.sim.now
        penalty = 0.0
        for fault in self._link_faults:
            if not fault.active(now):
                continue
            if fault.direction != BOTH and fault.direction != direction:
                continue
            if fault.extra_latency_s:
                penalty += fault.extra_latency_s
                self.latency_injections += 1
            if fault.loss_prob:
                rng_random = self.rng.random
                while rng_random() < fault.loss_prob:
                    penalty += fault.retransmit_delay_s
                    self.packets_dropped += 1
        return penalty

    def nic_read_stall(self, host_name: str) -> float:
        """Extra seconds ``host_name``'s NIC takes to serve one read."""
        now = self.sim.now
        stall = 0.0
        for fault in self._nic_stalls:
            if fault.active(now) and fault.host == host_name:
                stall += fault.stall_s
        if stall:
            self.nic_stalls_injected += 1
        return stall

    def heartbeat_suppressed(self) -> bool:
        """True when the current heartbeat must be silently skipped."""
        now = self.sim.now
        for fault in self._blackouts:
            if fault.active(now):
                self.beats_blacked_out += 1
                return True
        return False

    def client_stall(self, client_id: int) -> float:
        """Stall to insert before this client's next request (0 if none)."""
        now = self.sim.now
        stall = 0.0
        for fault in self._client_stalls:
            if fault.active(now) and (
                not fault.client_ids or client_id in fault.client_ids
            ):
                stall += fault.stall_s
        if stall:
            self.client_stalls_injected += 1
        return stall

    # -- attachment --------------------------------------------------------

    def attach_network(self, network) -> None:
        """Install the loss/latency hook on the server's access link."""
        network.attach_injector(self)

    def attach_host(self, host) -> None:
        """Install the read-stall hook on ``host``'s NIC."""
        host.nic.fault_injector = self

    def attach_heartbeats(self, service) -> None:
        """Install the blackout hook on the heartbeat service."""
        service.fault_injector = self

    # -- active drivers ----------------------------------------------------

    def start(
        self,
        fm_server=None,
        storm_targets: Optional[Callable[[], list]] = None,
        shard_fm_servers: Optional[list] = None,
    ) -> None:
        """Spawn the driver processes for the plan's active faults.

        ``fm_server`` is required if the plan contains
        :class:`WorkerCrash` faults; ``storm_targets`` (a callable
        returning the nodes to poison — re-evaluated per window, so tree
        restructuring is tolerated) is required for :class:`WriteStorm`;
        ``shard_fm_servers`` (one fast-messaging server per shard, dense
        by shard id) is required for :class:`ShardLoss`.
        """
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        for fault in self.plan.of_type(WorkerCrash):
            if fm_server is None:
                raise ValueError("WorkerCrash fault needs fm_server")
            self.sim.process(self._crash_driver(fault, fm_server),
                             name="fault-crash")
        for fault in self.plan.of_type(WriteStorm):
            if storm_targets is None:
                raise ValueError("WriteStorm fault needs storm_targets")
            self.sim.process(self._storm_driver(fault, storm_targets),
                             name="fault-storm")
        for fault in self.plan.of_type(ShardLoss):
            if shard_fm_servers is None:
                raise ValueError("ShardLoss fault needs shard_fm_servers")
            self.sim.process(
                self._shard_loss_driver(fault, shard_fm_servers),
                name="fault-shard-loss",
            )

    def _crash_driver(self, fault: WorkerCrash, fm_server) -> Generator:
        sim = self.sim
        if fault.start > sim.now:
            yield sim.timeout(fault.start - sim.now)
        crashed = []
        for conn in fm_server.connections:
            if fault.conn_ids and conn.conn_id not in fault.conn_ids:
                continue
            fm_server.crash_worker(conn)
            crashed.append(conn)
            self.workers_crashed += 1
        if fault.end > sim.now:
            yield sim.timeout(fault.end - sim.now)
        for conn in crashed:
            fm_server.restart_worker(conn)
            self.workers_restarted += 1

    def _shard_loss_driver(self, fault: ShardLoss,
                           fm_servers: list) -> Generator:
        """Crash every worker of the lost shards, restore at window end.

        The shard's fabric, rings, and heartbeat service stay up — only
        request service stops — so clients experience silence, the
        hardest failure mode for a scatter-gather router to attribute.
        """
        sim = self.sim
        if fault.start > sim.now:
            yield sim.timeout(fault.start - sim.now)
        targets = (fault.shard_ids if fault.shard_ids
                   else tuple(range(len(fm_servers))))
        crashed = []
        for shard_id in targets:
            fm_server = fm_servers[shard_id]
            for conn in fm_server.connections:
                fm_server.crash_worker(conn)
                crashed.append((fm_server, conn))
                self.workers_crashed += 1
            self.shards_lost += 1
        if fault.end > sim.now:
            yield sim.timeout(fault.end - sim.now)
        for fm_server, conn in crashed:
            fm_server.restart_worker(conn)
            self.workers_restarted += 1
        for _shard_id in targets:
            self.shards_restored += 1

    def _storm_driver(self, fault: WriteStorm,
                      storm_targets: Callable[[], list]) -> Generator:
        sim = self.sim
        if fault.start > sim.now:
            yield sim.timeout(fault.start - sim.now)
        while sim.now < fault.end:
            nodes = list(storm_targets())
            for node in nodes:
                node.begin_write()
            self.write_storm_windows += 1
            try:
                yield sim.timeout(fault.hold_s)
            finally:
                for node in nodes:
                    node.end_write()
            if fault.gap_s:
                yield sim.timeout(fault.gap_s)
