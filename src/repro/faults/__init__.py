"""Composable fault injection for the simulated Catfish cluster.

``repro.faults`` turns the designed-for failure modes of the model (torn
reads, dropped heartbeats, full rings) into *injectable* events: a
:class:`FaultPlan` is a set of timed windows (link loss/latency, NIC read
stalls, server-worker crashes, heartbeat blackouts, write storms, slow
clients) and a :class:`FaultInjector` threads them through the network,
transport, hardware and server layers via cheap optional hooks.

See docs/robustness.md for the fault model and the matching resilience
mechanisms (``repro.client.resilience``), and ``repro chaos`` for the
scenario runner that asserts end-to-end invariants under each fault.
"""

from .plan import (
    ClientStall,
    FaultPlan,
    FaultWindow,
    HeartbeatBlackout,
    LinkFault,
    NicReadStall,
    ShardLoss,
    WorkerCrash,
    WriteStorm,
)
from .injector import FaultInjector
from .scenarios import (
    SCENARIOS,
    ChaosConfig,
    ScenarioReport,
    run_scenario,
)

__all__ = [
    "ChaosConfig",
    "ClientStall",
    "FaultInjector",
    "FaultPlan",
    "FaultWindow",
    "HeartbeatBlackout",
    "LinkFault",
    "NicReadStall",
    "SCENARIOS",
    "ScenarioReport",
    "ShardLoss",
    "WorkerCrash",
    "WriteStorm",
    "run_scenario",
]
