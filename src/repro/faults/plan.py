"""Fault plans: declarative, timed fault windows.

A plan is data, not behaviour — frozen dataclasses naming *what* goes
wrong and *when* (absolute simulated seconds).  The
:class:`~repro.faults.injector.FaultInjector` interprets the plan against
a live cluster.  Keeping the plan declarative makes scenarios composable
(a chaos scenario is just a plan constructor) and trivially reproducible:
the same plan + seed yields the same run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Type

#: Link fault directions, from the server's point of view: ``tx`` is the
#: server's transmit side (responses, heartbeats, read-reply data), ``rx``
#: its receive side (requests, read requests).
TX = "tx"
RX = "rx"
BOTH = "both"


@dataclass(frozen=True)
class FaultWindow:
    """Base class: a fault active during ``[start, end)`` seconds."""

    start: float
    end: float

    def __post_init__(self):
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"window [{self.start}, {self.end}) is empty or inverted"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class LinkFault(FaultWindow):
    """Packet loss and/or extra latency on the server's access link.

    Loss is modelled at the reliable-transport level: a lost packet is
    retransmitted after ``retransmit_delay_s`` (geometric number of
    retransmits with probability ``loss_prob`` each), which is what both
    IB RC and TCP present to the layers above — delay, not corruption.
    """

    direction: str = BOTH
    loss_prob: float = 0.0
    retransmit_delay_s: float = 100e-6
    extra_latency_s: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if self.direction not in (TX, RX, BOTH):
            raise ValueError(f"unknown direction {self.direction!r}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(
                f"loss_prob must be in [0, 1), got {self.loss_prob}"
            )
        if self.retransmit_delay_s < 0 or self.extra_latency_s < 0:
            raise ValueError("delays must be >= 0")


@dataclass(frozen=True)
class NicReadStall(FaultWindow):
    """The named host's NIC stalls each one-sided read it serves.

    Models PCIe/DMA contention on the responder: every RDMA Read served
    by ``host`` during the window takes ``stall_s`` longer at the remote
    NIC, before the data leaves the server.
    """

    host: str = "server"
    stall_s: float = 5e-6

    def __post_init__(self):
        super().__post_init__()
        if self.stall_s <= 0:
            raise ValueError(f"stall_s must be > 0, got {self.stall_s}")


@dataclass(frozen=True)
class WorkerCrash(FaultWindow):
    """Fail-stop crash of per-connection server workers for the window.

    ``conn_ids`` selects which connections lose their worker; empty means
    all.  Workers restart (and drain their backlog) at ``end``.  The
    crash is delivered at a request boundary — a worker mid-request
    finishes it first — because the simulated worker holds locks and core
    slots that a mid-flight kill would leak (a real fail-stop process
    death releases them via the OS; the simulation has no kernel to do
    that cleanup).
    """

    conn_ids: Tuple[int, ...] = ()


@dataclass(frozen=True)
class HeartbeatBlackout(FaultWindow):
    """The heartbeat service sends nothing during the window.

    Distinct from droppable-beat congestion (ring full): a blackout
    suppresses the send itself, as when the heartbeat thread is starved
    or its timer wedged.  Clients must notice via staleness, not errors.
    """


@dataclass(frozen=True)
class WriteStorm(FaultWindow):
    """Forced write intervals on hot nodes → version-retry storms.

    During the window the injector repeatedly opens torn windows
    (``begin_write``/``end_write``) of ``hold_s`` on the storm targets
    (by default the root), separated by ``gap_s``.  One-sided readers see
    unvalidatable snapshots and burn their retry/restart budgets — the
    stress test for the adaptive client's offload circuit breaker.
    """

    hold_s: float = 20e-6
    gap_s: float = 5e-6

    def __post_init__(self):
        super().__post_init__()
        if self.hold_s <= 0 or self.gap_s < 0:
            raise ValueError("need hold_s > 0 and gap_s >= 0")


@dataclass(frozen=True)
class ShardLoss(FaultWindow):
    """Fail-stop loss of whole shards in a sharded cluster.

    During the window every per-connection worker of the named shards is
    crashed (restarted at ``end``) and the shard's heartbeat service goes
    silent — the server machine is gone, not merely slow.  The fabric
    stays up, so the router must notice via retry deadlines and heartbeat
    staleness, not connection errors, and degrade to
    :class:`~repro.shard.router.PartialResult`\\ s.  Empty ``shard_ids``
    means every shard (a full outage).
    """

    shard_ids: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ClientStall(FaultWindow):
    """Selected clients pause ``stall_s`` before each request they issue
    inside the window (GC pause / noisy neighbour).  Empty ``client_ids``
    means every client."""

    client_ids: Tuple[int, ...] = ()
    stall_s: float = 1e-3

    def __post_init__(self):
        super().__post_init__()
        if self.stall_s <= 0:
            raise ValueError(f"stall_s must be > 0, got {self.stall_s}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of fault windows.

    An empty plan is the no-op plan: every injector hook returns its
    zero-cost answer, and the builder skips attaching hooks entirely, so
    fault support costs nothing when unused.
    """

    faults: Tuple[FaultWindow, ...] = ()

    def __post_init__(self):
        for fault in self.faults:
            if not isinstance(fault, FaultWindow):
                raise TypeError(f"{fault!r} is not a FaultWindow")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, cls: Type[FaultWindow]) -> List[FaultWindow]:
        return [f for f in self.faults if isinstance(f, cls)]

    @property
    def horizon(self) -> float:
        """Latest window end (0.0 for an empty plan)."""
        return max((f.end for f in self.faults), default=0.0)

    def describe(self) -> List[str]:
        """One human-readable line per fault, in time order."""
        return [
            f"[{f.start * 1e3:7.3f}ms, {f.end * 1e3:7.3f}ms) "
            f"{type(f).__name__}"
            for f in sorted(self.faults, key=lambda f: (f.start, f.end))
        ]


#: The canonical empty plan.
EMPTY_PLAN = FaultPlan()
