"""Named chaos scenarios: faults + end-to-end invariants.

Each scenario pairs a :class:`~repro.faults.plan.FaultPlan` with a small,
self-contained simulated cluster (server, fast-messaging workers,
heartbeats, adaptive clients with retries and circuit breakers) and a
read-only search workload whose ground truth is the server tree itself —
``tree.search(rect)`` is a pure function, so every response a client
accepts can be checked exactly against the oracle.

After the run, scenario-independent invariants are evaluated:

* **completed** — every issued request finished (retries recovered every
  injected loss; nothing timed out for good or leaked an OffloadError);
* **oracle-match** — every accepted result equals the tree's answer;
* **exactly-once** — no client saw a response it could not attribute
  (late answers to abandoned attempts are *suppressed*, never delivered);
* **bounded-retries** — the retry volume stayed within the per-request
  budget (no retry storm);
* **throughput-recovered** — the post-fault completion rate came back to
  a floor fraction of the pre-fault rate;
* **fault-fired:<x>** — per scenario, the injected fault demonstrably
  happened (its injector counter advanced), so a green run can not be a
  run in which the fault silently failed to inject.

Everything is driven from seeded named streams
(:class:`~repro.sim.rng.RngRegistry`), so a scenario's
:meth:`ScenarioReport.fingerprint` is bit-identical across replays at
the same seed — that property is itself under test (``repro chaos`` and
``tests/test_chaos.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..client.adaptive import AdaptiveParams, CatfishSession
from ..client.base import ClientStats, OP_SEARCH, Request
from ..client.fm_client import FmSession
from ..client.node_cache import NodeCache, NodeCacheConfig
from ..client.offload_client import OffloadEngine, OffloadError
from ..client.resilience import (
    BreakerParams,
    CircuitBreaker,
    RequestTimeoutError,
    RetryPolicy,
)
from ..hw.host import Host
from ..msg.ringbuffer import DEFAULT_RING_CAPACITY
from ..net.fabric import IB_100G, Network
from ..rtree.geometry import Rect
from ..server.base import RTreeServer
from ..server.fast_messaging import EVENT, FastMessagingServer
from ..server.heartbeat import HeartbeatService
from ..sim.kernel import SimulationError, Simulator, all_of
from ..sim.rng import RngRegistry
from ..workloads.datasets import uniform_dataset
from .injector import FaultInjector
from .plan import (
    BOTH,
    ClientStall,
    FaultPlan,
    HeartbeatBlackout,
    LinkFault,
    NicReadStall,
    TX,
    WorkerCrash,
    WriteStorm,
)


@dataclass(frozen=True)
class ChaosConfig:
    """Tunables shared by every scenario (overridable per scenario/CLI).

    The timing is deliberately compressed relative to the paper's
    figures: a single fault window ``[fault_start, fault_end)`` sits in
    the middle of the request stream so that every run has a clean
    pre-fault, in-fault and post-fault phase for the recovery invariant.
    The retry deadline is a small multiple of the fault-free request
    latency and much shorter than the fault window, so deadlines and
    retries are genuinely exercised (a request stuck behind a crashed
    worker times out and re-sends *during* the outage, not after it).
    """

    seed: int = 0
    n_clients: int = 4
    requests_per_client: int = 300
    dataset_size: int = 2000
    max_entries: int = 16
    server_cores: int = 4
    ring_capacity: int = DEFAULT_RING_CAPACITY
    #: Query rectangle edge (uniform centres over the unit square).
    query_scale: float = 0.03

    #: The fault window every scenario's plan is built around.
    fault_start: float = 0.2e-3
    fault_end: float = 0.9e-3

    heartbeat_interval: float = 0.1e-3
    #: Low threshold so clients offload eagerly — both paths stay hot.
    adaptive: AdaptiveParams = AdaptiveParams(N=4, T=0.05, Inv=0.1e-3)
    retry: RetryPolicy = RetryPolicy(
        deadline_s=0.3e-3, max_attempts=6, backoff_base_s=20e-6
    )
    breaker: BreakerParams = BreakerParams(
        failure_threshold=2, cooldown_s=0.2e-3, cooldown_factor=2.0,
        max_cooldown_s=2e-3,
    )
    stale_after_missing: int = 2
    max_queue_depth: Optional[int] = None

    #: Tight offload budgets: a write storm produces OffloadErrors in
    #: microseconds instead of grinding through the default budget.
    engine_read_retries: int = 4
    engine_search_restarts: int = 3

    #: Client-side node cache under faults (None = seed behaviour; the
    #: chaos golden fingerprints are pinned on None).  Enabling it runs
    #: every scenario's oracle/invariant checks against cache-served
    #: traversals — the write-storm scenario is the cache's adversarial
    #: exactness test.
    node_cache: Optional[NodeCacheConfig] = None

    #: Simulated-time ceiling for one scenario (wedges fail, not hang).
    time_limit: float = 0.05
    #: Extra simulated time after the last driver finishes, letting
    #: late/suppressed segments drain before invariants are read.
    grace_s: float = 0.5e-3
    #: ``post_rate >= recovery_floor * pre_rate`` for recovery to hold.
    recovery_floor: float = 0.3

    @property
    def total_requests(self) -> int:
        return self.n_clients * self.requests_per_client


@dataclass(frozen=True)
class ChaosScenario:
    """A named fault plan plus what must demonstrably fire."""

    name: str
    summary: str
    build_plan: Callable[[ChaosConfig], FaultPlan]
    #: ChaosConfig overrides this scenario needs, as (field, value).
    tweaks: Tuple[Tuple[str, object], ...] = ()
    #: Injection counters (keys of ``_FIRED_COUNTERS``) that must be > 0.
    fired_checks: Tuple[str, ...] = ()
    #: Custom harness: when set, :func:`run_scenario` hands the resolved
    #: config to this callable instead of the single-server ``_Cluster``
    #: (the sharded scenarios bring their own cluster and invariants).
    runner: Optional[Callable[[ChaosConfig], "ScenarioReport"]] = None


# -- the scenario registry ---------------------------------------------------

def _link_loss_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((
        LinkFault(cfg.fault_start, cfg.fault_end, direction=BOTH,
                  loss_prob=0.3, retransmit_delay_s=30e-6),
    ))


def _latency_spike_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((
        LinkFault(cfg.fault_start, cfg.fault_end, direction=TX,
                  extra_latency_s=60e-6),
    ))


def _nic_stall_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((
        NicReadStall(cfg.fault_start, cfg.fault_end, host="server",
                     stall_s=10e-6),
    ))


def _worker_crash_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((WorkerCrash(cfg.fault_start, cfg.fault_end),))


def _blackout_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((HeartbeatBlackout(cfg.fault_start, cfg.fault_end),))


def _write_storm_plan(cfg: ChaosConfig) -> FaultPlan:
    # The hold must outlast a full offload retry budget (~36us with the
    # chaos engine budgets) or every search squeaks through on the gap.
    return FaultPlan((
        WriteStorm(cfg.fault_start, cfg.fault_end, hold_s=250e-6,
                   gap_s=8e-6),
    ))


def _slow_client_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((
        ClientStall(cfg.fault_start, cfg.fault_end, client_ids=(0, 1),
                    stall_s=0.15e-3),
    ))


def _shard_loss_plan(cfg: ChaosConfig) -> FaultPlan:
    from ..shard.chaos import shard_loss_plan
    return shard_loss_plan(cfg)


def _shard_loss_runner(cfg: ChaosConfig) -> "ScenarioReport":
    # Imported lazily: repro.shard builds on the cluster layer, which
    # imports repro.faults — a module-level import would be a cycle.
    from ..shard.chaos import run_shard_loss
    return run_shard_loss(cfg)


def _rebalance_fault_plan(cfg: ChaosConfig) -> FaultPlan:
    from ..shard.chaos import rebalance_fault_plan
    return rebalance_fault_plan(cfg)


def _rebalance_under_fault_runner(cfg: ChaosConfig) -> "ScenarioReport":
    # Lazy import for the same cycle reason as the shard-loss runner.
    from ..shard.chaos import run_rebalance_under_fault
    return run_rebalance_under_fault(cfg)


def _racing_writes_plan(cfg: ChaosConfig) -> FaultPlan:
    # The workload races the migration windows; no injector faults.
    return FaultPlan(())


def _racing_writes_runner(cfg: ChaosConfig) -> "ScenarioReport":
    from ..shard.chaos import run_migration_racing_writes
    return run_migration_racing_writes(cfg)


def _flash_crowd_plan(cfg: ChaosConfig) -> FaultPlan:
    # The workload *is* the fault: the arrival rate spikes inside the
    # fault window.  No injector faults are planned.
    return FaultPlan(())


def _flash_crowd_runner(cfg: ChaosConfig) -> "ScenarioReport":
    # Lazy for the same reason as the shard runner: the traffic harness
    # builds on the cluster layer, which imports repro.faults.
    from ..traffic.chaos import run_flash_crowd
    return run_flash_crowd(cfg)


def _combo_plan(cfg: ChaosConfig) -> FaultPlan:
    start, end = cfg.fault_start, cfg.fault_end
    third = (end - start) / 3.0
    return FaultPlan((
        LinkFault(start, end, direction=BOTH, loss_prob=0.15,
                  retransmit_delay_s=30e-6),
        HeartbeatBlackout(start, start + 2 * third),
        WorkerCrash(start + third, end, conn_ids=(0,)),
        NicReadStall(start + third, end, host="server", stall_s=5e-6),
    ))


SCENARIOS: Dict[str, ChaosScenario] = {
    s.name: s for s in (
        ChaosScenario(
            "link-loss",
            "30% packet loss on the server link; retransmit delays",
            _link_loss_plan,
            fired_checks=("packets-dropped",),
        ),
        ChaosScenario(
            "latency-spike",
            "flat +60us on every server->client transfer",
            _latency_spike_plan,
            fired_checks=("latency-injected",),
        ),
        ChaosScenario(
            "nic-read-stall",
            "server NIC adds 10us to every one-sided read it serves",
            _nic_stall_plan,
            fired_checks=("nic-stalls",),
        ),
        ChaosScenario(
            "worker-crash",
            "all server workers fail-stop for the window, then restart",
            _worker_crash_plan,
            fired_checks=("workers-crashed", "workers-restarted",
                          "duplicates-suppressed"),
        ),
        ChaosScenario(
            "heartbeat-blackout",
            "the heartbeat service sends nothing for the window",
            _blackout_plan,
            fired_checks=("beats-blacked-out",),
        ),
        ChaosScenario(
            "write-storm",
            "forced torn windows on the root; offload trips the breaker",
            _write_storm_plan,
            fired_checks=("write-storms", "breaker-trips", "failovers"),
        ),
        ChaosScenario(
            "overload-shed",
            "worker crash + queue-depth cap: stale backlog is shed",
            _worker_crash_plan,
            tweaks=(("max_queue_depth", 1),),
            fired_checks=("workers-crashed", "requests-shed"),
        ),
        ChaosScenario(
            "slow-client",
            "clients 0/1 pause 150us before each request in the window",
            _slow_client_plan,
            fired_checks=("client-stalls",),
        ),
        ChaosScenario(
            "shard-loss",
            "one shard of a 4-shard cluster fail-stops; router degrades "
            "to partial results",
            _shard_loss_plan,
            # The total retry budget (attempts x per-attempt deadline)
            # must exhaust *inside* the outage, or every request to the
            # dead shard blocks until the restart drain answers it and
            # the loss is never client-visible.
            tweaks=(
                ("retry", RetryPolicy(deadline_s=0.15e-3, max_attempts=2,
                                      backoff_base_s=20e-6)),
            ),
            runner=_shard_loss_runner,
        ),
        ChaosScenario(
            "flash-crowd",
            "open-loop arrival spike; mux watermark and the server "
            "overload guard shed, then recover",
            _flash_crowd_plan,
            # A per-attempt deadline a saturated session blows (service
            # rounds across the mux's contended sessions exceed it)
            # while an uncontended base-rate request never does — that
            # is what piles retries onto the rings and trips the
            # queue-depth guard during the spike.  The deployment shape
            # (cores, dataset, aggregates) is pinned alongside the
            # deadline: the spike/recover calibration holds only when
            # the base-rate service time sits below the deadline and
            # the spiked service time above it.
            tweaks=(
                ("retry", RetryPolicy(deadline_s=40e-6, max_attempts=2,
                                      backoff_base_s=5e-6)),
                ("max_queue_depth", 1),
                ("server_cores", 2),
                ("n_clients", 2),
                ("dataset_size", 1000),
                ("max_entries", 64),
            ),
            runner=_flash_crowd_runner,
        ),
        ChaosScenario(
            "rebalance-under-fault",
            "skewed reads drive tile splits + live migration on a lossy "
            "link; the epoch-cut protocol must stay exactly-once",
            _rebalance_fault_plan,
            runner=_rebalance_under_fault_runner,
        ),
        ChaosScenario(
            "migration-racing-writes",
            "hybrid writes race live migration windows; conservation "
            "(no lost or duplicated item) must hold after settling",
            _racing_writes_plan,
            runner=_racing_writes_runner,
        ),
        ChaosScenario(
            "chaos-combo",
            "loss + heartbeat blackout + one crashed worker + NIC stalls",
            _combo_plan,
            fired_checks=("packets-dropped", "beats-blacked-out",
                          "workers-crashed"),
        ),
    )
}


# -- the harness -------------------------------------------------------------

class _Cluster:
    """One scenario's simulated stack (built fresh per run)."""

    def __init__(self, cfg: ChaosConfig, plan: FaultPlan):
        self.cfg = cfg
        sim = self.sim = Simulator()
        rngs = self.rngs = RngRegistry(cfg.seed)
        self.injector = FaultInjector(sim, plan, rng=rngs.stream("faults"))

        net = self.net = Network(sim, IB_100G)
        server_host = Host(sim, "server", IB_100G, cores=cfg.server_cores)
        net.attach_server(server_host)
        self.injector.attach_network(net)
        self.injector.attach_host(server_host)

        self.server = RTreeServer(
            sim, server_host,
            uniform_dataset(cfg.dataset_size, seed=cfg.seed),
            max_entries=cfg.max_entries,
        )
        self.fm_server = FastMessagingServer(
            sim, self.server, net, mode=EVENT,
            ring_capacity=cfg.ring_capacity,
            max_queue_depth=cfg.max_queue_depth,
        )
        cache_enabled = (cfg.node_cache is not None
                         and cfg.node_cache.enabled)
        self.heartbeats = HeartbeatService(
            sim, server_host.cpu.window_utilization,
            interval=cfg.heartbeat_interval,
            mut_seq_fn=((lambda: self.server.tree.mut_hwm)
                        if cache_enabled else None),
        )
        self.injector.attach_heartbeats(self.heartbeats)

        self.stats: List[ClientStats] = []
        self.sessions: List[CatfishSession] = []
        self.breakers: List[CircuitBreaker] = []
        for i in range(cfg.n_clients):
            crngs = rngs.fork(f"client-{i}")
            host = Host(sim, f"chaos-c{i}", IB_100G, cores=2)
            conn = self.fm_server.open_connection(host)
            stats = ClientStats()
            fm = FmSession(sim, conn, i, stats, retry=cfg.retry,
                           rng=crngs.stream("retry"))
            self.heartbeats.subscribe(
                conn.response_ring,
                lambda hb, conn=conn: conn.server_post_response(hb),
            )
            engine = OffloadEngine(
                sim, conn.client_end, self.server.offload_descriptor(),
                self.server.costs, stats,
                max_read_retries=cfg.engine_read_retries,
                max_search_restarts=cfg.engine_search_restarts,
            )
            if cache_enabled:
                cache = NodeCache(cfg.node_cache)
                engine.attach_cache(cache)
                conn.mailbox.attach_hint_sink(cache.apply_hint)
            breaker = CircuitBreaker(sim, cfg.breaker)
            session = CatfishSession(
                sim, fm, engine, stats, params=cfg.adaptive,
                rng=crngs.stream("adaptive"), breaker=breaker,
                stale_after_missing=cfg.stale_after_missing,
            )
            self.stats.append(stats)
            self.breakers.append(breaker)
            self.sessions.append(session)

        self.heartbeats.start()
        self.injector.start(
            fm_server=self.fm_server,
            storm_targets=lambda: [self.server.tree.root],
        )

    def workload(self, client_id: int) -> List[Request]:
        cfg = self.cfg
        rng = self.rngs.fork(f"client-{client_id}").stream("workload")
        edge = cfg.query_scale
        requests = []
        for _ in range(cfg.requests_per_client):
            x = rng.uniform(0.0, 1.0 - edge)
            y = rng.uniform(0.0, 1.0 - edge)
            requests.append(
                Request(OP_SEARCH, Rect(x, y, x + edge, y + edge))
            )
        return requests


#: ``fired_checks`` vocabulary: counter-name -> reader over the cluster.
_FIRED_COUNTERS: Dict[str, Callable[[_Cluster], int]] = {
    "packets-dropped": lambda c: int(c.injector.packets_dropped),
    "latency-injected": lambda c: int(c.injector.latency_injections),
    "nic-stalls": lambda c: int(c.injector.nic_stalls_injected),
    "beats-blacked-out": lambda c: int(c.injector.beats_blacked_out),
    "client-stalls": lambda c: int(c.injector.client_stalls_injected),
    "write-storms": lambda c: int(c.injector.write_storm_windows),
    "workers-crashed": lambda c: int(c.fm_server.workers_crashed),
    "workers-restarted": lambda c: int(c.fm_server.workers_restarted),
    "requests-shed": lambda c: int(c.fm_server.requests_shed),
    "breaker-trips": lambda c: sum(int(b.trips) for b in c.breakers),
    "failovers": lambda c: sum(
        int(s.offload_failovers) for s in c.sessions
    ),
    "duplicates-suppressed": lambda c: sum(
        int(s.duplicates_suppressed) for s in c.stats
    ),
}


@dataclass
class ScenarioReport:
    """Everything ``repro chaos`` prints (and the tests assert on)."""

    name: str
    seed: int
    issued: int
    completed: int
    timeouts: int
    offload_errors: int
    mismatches: int
    retries: int
    duplicates_suppressed: int
    unexpected_messages: int
    pre_rate: float
    post_rate: float
    end_time: float
    counters: Dict[str, int] = field(default_factory=dict)
    invariants: List[Tuple[str, bool, str]] = field(default_factory=list)
    _fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return all(passed for _, passed, _ in self.invariants)

    @property
    def failures(self) -> List[str]:
        return [f"{name}: {detail}"
                for name, passed, detail in self.invariants if not passed]

    def fingerprint(self) -> str:
        """Stable digest of the run's observable outcome (replay check)."""
        return self._fingerprint

    @staticmethod
    def header() -> str:
        return (f"{'scenario':<20} {'ok':>4} {'done':>9} {'retry':>6} "
                f"{'dup':>5} {'fail':>5}  invariants")

    def row(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        bad = len(self.failures)
        return (f"{self.name:<20} {status:>4} "
                f"{self.completed:>4}/{self.issued:<4} {self.retries:>6} "
                f"{self.duplicates_suppressed:>5} {bad:>5}  "
                f"{len(self.invariants)} checked")

    def describe(self) -> List[str]:
        """One line per invariant, pass/fail plus detail."""
        lines = []
        for name, passed, detail in self.invariants:
            mark = "ok  " if passed else "FAIL"
            lines.append(f"  [{mark}] {name}: {detail}")
        return lines


def _invariants(cfg: ChaosConfig, scenario: ChaosScenario,
                report: ScenarioReport, finished: bool,
                cluster: _Cluster) -> List[Tuple[str, bool, str]]:
    checks: List[Tuple[str, bool, str]] = []
    checks.append((
        "finished-in-time", finished,
        f"drivers {'finished' if finished else 'still running'} at "
        f"t={report.end_time * 1e3:.3f}ms (limit {cfg.time_limit * 1e3:.0f}ms)",
    ))
    checks.append((
        "completed", report.completed == report.issued,
        f"{report.completed}/{report.issued} requests "
        f"({report.timeouts} timeouts, {report.offload_errors} "
        f"offload errors escaped)",
    ))
    checks.append((
        "oracle-match", report.mismatches == 0,
        f"{report.mismatches} responses disagreed with the tree",
    ))
    checks.append((
        "exactly-once", report.unexpected_messages == 0,
        f"{report.unexpected_messages} unattributable messages "
        f"({report.duplicates_suppressed} late answers suppressed)",
    ))
    retry_budget = report.issued * (cfg.retry.max_attempts - 1)
    checks.append((
        "bounded-retries", report.retries <= retry_budget,
        f"{report.retries} retries <= budget {retry_budget}",
    ))
    if report.pre_rate > 0.0 and report.post_rate > 0.0:
        recovered = report.post_rate >= cfg.recovery_floor * report.pre_rate
        detail = (f"post {report.post_rate / 1e3:.0f} kops vs pre "
                  f"{report.pre_rate / 1e3:.0f} kops "
                  f"(floor {cfg.recovery_floor:.0%})")
    else:
        recovered, detail = True, "vacuous (no pre- or post-fault sample)"
    checks.append(("throughput-recovered", recovered, detail))
    for key in scenario.fired_checks:
        value = _FIRED_COUNTERS[key](cluster)
        checks.append((
            f"fault-fired:{key}", value > 0, f"counter = {value}",
        ))
    return checks


def run_scenario(name: str, seed: int = 0,
                 config: Optional[ChaosConfig] = None,
                 **overrides) -> ScenarioReport:
    """Run one named scenario; returns its report (never raises on a
    failed invariant — failures are data).  Unknown names raise KeyError.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        ) from None
    cfg = config if config is not None else ChaosConfig()
    cfg = replace(cfg, seed=seed)
    if scenario.tweaks:
        cfg = replace(cfg, **dict(scenario.tweaks))
    if overrides:
        cfg = replace(cfg, **overrides)

    if scenario.runner is not None:
        return scenario.runner(cfg)

    cluster = _Cluster(cfg, scenario.build_plan(cfg))
    sim = cluster.sim
    workloads = [cluster.workload(i) for i in range(cfg.n_clients)]
    # (client_id, index, completion time, sorted matching data ids)
    records: List[Tuple[int, int, float, Tuple[int, ...]]] = []
    errors: List[Tuple[int, int, str]] = []

    def driver(client_id: int):
        session = cluster.sessions[client_id]
        for index, request in enumerate(workloads[client_id]):
            stall = cluster.injector.client_stall(client_id)
            if stall > 0.0:
                yield sim.timeout(stall)
            try:
                matches = yield from session.execute(request)
            except RequestTimeoutError:
                errors.append((client_id, index, "timeout"))
                continue
            except OffloadError:
                errors.append((client_id, index, "offload-error"))
                continue
            ids = tuple(sorted(data_id for _rect, data_id in matches))
            records.append((client_id, index, sim.now, ids))

    drivers = [sim.process(driver(i), name=f"chaos-driver-{i}")
               for i in range(cfg.n_clients)]
    finished = True
    try:
        sim.run_until_triggered(all_of(sim, drivers),
                                limit=cfg.time_limit)
    except SimulationError:
        finished = False
    sim.run(until=sim.now + cfg.grace_s)

    # The workload is read-only (and write storms only toggle versions),
    # so the tree is still the ground truth for every query.
    mismatches = 0
    for client_id, index, _t, ids in records:
        rect = workloads[client_id][index].rect
        expected = tuple(sorted(
            cluster.server.tree.search(rect).data_ids
        ))
        if ids != expected:
            mismatches += 1

    times = sorted(t for _c, _i, t, _ids in records)
    pre = [t for t in times if t < cfg.fault_start]
    post = [t for t in times if t >= cfg.fault_end]
    pre_rate = len(pre) / cfg.fault_start if pre else 0.0
    post_span = (times[-1] - cfg.fault_end) if post else 0.0
    post_rate = len(post) / post_span if post_span > 0.0 else 0.0

    timeouts = sum(1 for _c, _i, kind in errors if kind == "timeout")
    report = ScenarioReport(
        name=name,
        seed=cfg.seed,
        issued=cfg.total_requests,
        completed=len(records),
        timeouts=timeouts,
        offload_errors=len(errors) - timeouts,
        mismatches=mismatches,
        retries=sum(int(s.request_retries) for s in cluster.stats),
        duplicates_suppressed=sum(
            int(s.duplicates_suppressed) for s in cluster.stats
        ),
        unexpected_messages=sum(
            int(s.unexpected_messages) for s in cluster.stats
        ),
        pre_rate=pre_rate,
        post_rate=post_rate,
        end_time=sim.now,
        counters={key: reader(cluster)
                  for key, reader in _FIRED_COUNTERS.items()},
    )
    report.invariants = _invariants(cfg, scenario, report, finished,
                                    cluster)

    digest = hashlib.sha256()
    digest.update(f"{name}:{cfg.seed}\n".encode())
    for client_id, index, t, ids in sorted(records):
        digest.update(
            f"{client_id},{index},{t:.15e},{len(ids)},"
            f"{sum(ids)}\n".encode()
        )
    for client_id, index, kind in sorted(errors):
        digest.update(f"err,{client_id},{index},{kind}\n".encode())
    for key, value in report.counters.items():
        digest.update(f"{key}={value}\n".encode())
    report._fingerprint = digest.hexdigest()[:16]
    return report
