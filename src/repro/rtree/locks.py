"""Server-side concurrency control for the R-tree.

The paper (§II-A, §III-A) adopts the high-concurrency R-tree locking of
Kornacker & Banks for server threads: searches take shared (read) locks,
mutations take exclusive (write) locks, preventing read-write and
write-write conflicts between server threads.  One-sided RDMA reads bypass
these locks entirely — that is what the version-number mechanism in
:mod:`repro.rtree.versioning` is for.

:class:`RWLock` is writer-preferring to avoid writer starvation under the
paper's search-heavy workloads.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, Tuple

from ..sim.kernel import Event, Simulator


class RWLock:
    """A readers-writer lock for simulation processes."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._readers = 0
        self._writer = False
        #: queue of (event, is_writer) in arrival order
        self._waiting: Deque[Tuple[Event, bool]] = deque()
        #: writers currently in ``_waiting`` (kept so the writer-preference
        #: check in acquire_read is O(1) instead of scanning the queue)
        self._waiting_writers = 0
        self.read_acquisitions = 0
        self.write_acquisitions = 0

    # -- acquisition --------------------------------------------------------

    def acquire_read(self) -> Event:
        """Event that succeeds when the shared lock is held."""
        event = self.sim.event()
        if not self._writer and self._waiting_writers == 0:
            self._readers += 1
            self.read_acquisitions += 1
            event.succeed()
        else:
            self._waiting.append((event, False))
        return event

    def acquire_write(self) -> Event:
        """Event that succeeds when the exclusive lock is held."""
        event = self.sim.event()
        if not self._writer and self._readers == 0 and not self._waiting:
            self._writer = True
            self.write_acquisitions += 1
            event.succeed()
        else:
            self._waiting.append((event, True))
            self._waiting_writers += 1
        return event

    # -- release -------------------------------------------------------------

    def release_read(self) -> None:
        if self._readers <= 0:
            raise RuntimeError("release_read() without a held read lock")
        self._readers -= 1
        self._dispatch()

    def release_write(self) -> None:
        if not self._writer:
            raise RuntimeError("release_write() without a held write lock")
        self._writer = False
        self._dispatch()

    def _dispatch(self) -> None:
        if self._writer:
            return
        while self._waiting:
            event, is_writer = self._waiting[0]
            if is_writer:
                if self._readers == 0:
                    self._waiting.popleft()
                    self._waiting_writers -= 1
                    self._writer = True
                    self.write_acquisitions += 1
                    event.succeed()
                return
            self._waiting.popleft()
            self._readers += 1
            self.read_acquisitions += 1
            event.succeed()

    # -- context helpers -------------------------------------------------------

    def read_locked(self, body: Generator) -> Generator:
        """Run ``body`` (a process generator) under the shared lock."""
        yield self.acquire_read()
        try:
            yield from body
        finally:
            self.release_read()

    def write_locked(self, body: Generator) -> Generator:
        """Run ``body`` (a process generator) under the exclusive lock."""
        yield self.acquire_write()
        try:
            yield from body
        finally:
            self.release_write()

    @property
    def held(self) -> str:
        if self._writer:
            return "write"
        if self._readers:
            return f"read({self._readers})"
        return "free"


class TreeLockManager:
    """Per-node reader-writer locks, created lazily.

    The server threads use coarse two-phase access: a search read-locks the
    nodes it visits; a mutation write-locks the nodes it changes.  Lock
    objects are keyed by chunk id so they survive node relocation.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._locks: Dict[int, RWLock] = {}

    def lock_for(self, chunk_id: int) -> RWLock:
        lock = self._locks.get(chunk_id)
        if lock is None:
            lock = RWLock(self.sim)
            self._locks[chunk_id] = lock
        return lock

    def read_guard(self, chunk_ids, body: Generator) -> Generator:
        """Run ``body`` holding read locks on all ``chunk_ids`` (sorted to
        avoid deadlock)."""
        ordered = sorted(set(chunk_ids))
        locks = [self.lock_for(cid) for cid in ordered]
        for lock in locks:
            yield lock.acquire_read()
        try:
            yield from body
        finally:
            for lock in reversed(locks):
                lock.release_read()

    def write_guard(self, chunk_ids, body: Generator) -> Generator:
        """Run ``body`` holding write locks on all ``chunk_ids`` (sorted)."""
        ordered = sorted(set(chunk_ids))
        locks = [self.lock_for(cid) for cid in ordered]
        for lock in locks:
            yield lock.acquire_write()
        try:
            yield from body
        finally:
            for lock in reversed(locks):
                lock.release_write()

    @property
    def lock_count(self) -> int:
        return len(self._locks)
