"""R-tree node structures.

A node holds up to ``max_entries`` entries.  Leaf entries carry user data
ids; internal entries point at child nodes.  Every node knows its chunk id
(its slot in the server's registered memory region, §III-B of the paper)
and carries versioning state for one-sided-read validation.
"""

from __future__ import annotations

from typing import List, Optional

from .geometry import Rect

#: Paper-style capacity: a 4 KB chunk fits 64 entries of 4 doubles + an id.
DEFAULT_MAX_ENTRIES = 64

#: R*-tree recommendation: m = 40% of M.
MIN_FILL_FRACTION = 0.4


class Entry:
    """One slot of a node: an MBR plus either a child or a data id."""

    __slots__ = ("rect", "child", "data_id")

    def __init__(
        self,
        rect: Rect,
        child: Optional["Node"] = None,
        data_id: Optional[int] = None,
    ):
        if (child is None) == (data_id is None):
            raise ValueError("entry needs exactly one of child / data_id")
        self.rect = rect
        self.child = child
        self.data_id = data_id

    @property
    def is_leaf_entry(self) -> bool:
        return self.data_id is not None

    def __repr__(self) -> str:
        ref = f"data={self.data_id}" if self.is_leaf_entry else (
            f"child=#{self.child.chunk_id}"
        )
        return f"Entry({self.rect!r}, {ref})"


class Node:
    """An R-tree node.  ``level`` 0 is a leaf; the root has the max level."""

    __slots__ = (
        "level",
        "entries",
        "chunk_id",
        "parent",
        "version",
        "active_writers",
        "mut_seq",
        "_coords",
        "_coords_ok",
        "_npcols",
        "_np_seq",
        "_payload",
        "_payload_seq",
    )

    def __init__(self, level: int, chunk_id: int = -1):
        if level < 0:
            raise ValueError(f"negative level {level}")
        self.level = level
        self.entries: List[Entry] = []
        self.chunk_id = chunk_id
        self.parent: Optional["Node"] = None
        #: Incremented on every modification (per-cache-line version model).
        self.version = 0
        #: Number of server threads currently mutating this node; a one-
        #: sided read sampled while this is non-zero is a torn read.
        self.active_writers = 0
        #: Bumped on every structural mutation (entry added/removed or an
        #: entry's rect replaced).  Unlike ``version`` — which only moves
        #: at ``end_write()``, i.e. when the simulated write window closes
        #: — this tracks the in-memory truth and keys derived caches (the
        #: flat coordinate scan cache below, the server's packed-chunk
        #: byte cache).
        self.mut_seq = 0
        #: Flat ``[minx, miny, maxx, maxy] * count`` scan cache so search
        #: and ChooseSubtree read local floats instead of chasing
        #: ``entry.rect`` per entry.  Rebuilt lazily via ``scan_coords()``.
        self._coords: List[float] = []
        self._coords_ok = False
        #: Numpy column mirror (minx/miny/maxx/maxy arrays) built on demand
        #: by ``repro.rtree.batch.node_columns`` and keyed on ``mut_seq``
        #: via ``_np_seq`` — no extra invalidation sites needed, any
        #: mutation that bumps ``mut_seq`` implicitly stales it.
        self._npcols = None
        self._np_seq = -1
        #: Per-entry ``(rect, data_id)`` match payloads for leaves, built
        #: by ``repro.rtree.batch.node_leaf_payload`` and keyed on
        #: ``mut_seq`` the same way, so the batched scatter appends
        #: prebuilt tuples instead of touching ``Entry`` per hit.
        self._payload = None
        self._payload_seq = -1

    def invalidate(self) -> None:
        """Drop derived caches after a mutation (and bump ``mut_seq``).

        Every code path that appends/removes an entry or rebinds an
        ``entry.rect`` on this node must call this; ``add``/``remove`` do
        it themselves, the R* algorithms do it at their direct-assignment
        sites.
        """
        self._coords_ok = False
        self.mut_seq += 1

    def scan_coords(self) -> List[float]:
        """The flat coordinate array, rebuilding it if stale."""
        if self._coords_ok:
            return self._coords
        coords: List[float] = []
        for entry in self.entries:
            r = entry.rect
            coords.append(r.minx)
            coords.append(r.miny)
            coords.append(r.maxx)
            coords.append(r.maxy)
        self._coords = coords
        self._coords_ok = True
        return coords

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def count(self) -> int:
        return len(self.entries)

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries."""
        entries = self.entries
        if not entries:
            raise ValueError("mbr() of an empty node")
        # Single direct pass (mbr() runs on every insert path; the
        # generator + Rect.union_of indirection showed up in profiles).
        r = entries[0].rect
        minx, miny, maxx, maxy = r.minx, r.miny, r.maxx, r.maxy
        for entry in entries:
            r = entry.rect
            if r.minx < minx:
                minx = r.minx
            if r.miny < miny:
                miny = r.miny
            if r.maxx > maxx:
                maxx = r.maxx
            if r.maxy > maxy:
                maxy = r.maxy
        return Rect(minx, miny, maxx, maxy)

    def add(self, entry: Entry) -> None:
        """Append an entry, maintaining parent links for internal nodes."""
        if entry.child is not None:
            if entry.child.level != self.level - 1:
                raise ValueError(
                    f"child level {entry.child.level} under node level "
                    f"{self.level}"
                )
            entry.child.parent = self
        elif not self.is_leaf:
            raise ValueError("data entry added to an internal node")
        self.entries.append(entry)
        self._coords_ok = False
        self.mut_seq += 1

    def remove(self, entry: Entry) -> None:
        self.entries.remove(entry)
        self._coords_ok = False
        self.mut_seq += 1
        if entry.child is not None:
            entry.child.parent = None

    def entry_for_child(self, child: "Node") -> Entry:
        for entry in self.entries:
            if entry.child is child:
                return entry
        raise KeyError(f"node #{self.chunk_id} has no entry for child "
                       f"#{child.chunk_id}")

    def begin_write(self) -> None:
        """Mark the start of a server-side mutation (versioning model)."""
        self.active_writers += 1

    def end_write(self) -> None:
        """Mark the end of a mutation; bumps the version."""
        if self.active_writers <= 0:
            raise RuntimeError(
                f"end_write() without begin_write() on node #{self.chunk_id}"
            )
        self.active_writers -= 1
        self.version += 1

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal(l{self.level})"
        return f"<Node #{self.chunk_id} {kind} n={self.count} v{self.version}>"


def min_entries(max_entries: int) -> int:
    """R*-tree minimum fill: 40% of capacity, at least 2."""
    return max(2, int(max_entries * MIN_FILL_FRACTION))
