"""Vectorized node-scan kernels and the cross-query batch search engine.

Following SIMD-ified R-tree Query Processing (Rayhan & Aref), the
per-entry intersection test over a node can be evaluated as **one numpy
broadcast** over the node's flat ``[minx, miny, maxx, maxy]`` coordinate
mirror instead of a Python loop.  Going beyond that paper, the
:class:`BatchSearchEngine` batches *across queries*: a group of
concurrent searches shares one frontier traversal, testing a whole
``(Q x E)`` query-by-entry matrix per node, so one scan of a hot node
(and, on the offload path, one RDMA chunk read) serves many requests.

Three layers live here:

* **kernel selection** — ``CATFISH_SCAN_KERNEL`` picks ``auto``
  (default), ``numpy`` or ``python``; :func:`forced_kernel` switches it
  per-test.  ``python`` is the no-numpy fallback and must stay green
  (the tier-1 CI leg runs without numpy installed).  **``auto`` is
  measured, not dogmatic**: the batched ``(Q x E)`` kernels use numpy —
  one broadcast serves a whole query group — but single-query scans of
  a <=64-entry node keep the tight Python loop, because a numpy call
  carries ~1µs of fixed dispatch overhead and a short-circuiting loop
  over 64 floats beats four array ops plus ``flatnonzero`` (~2µs vs
  ~5µs measured on the bench tree).  ``numpy`` forces the broadcast
  form everywhere, which is what the single-query vectorized-scan
  property tests pin against the loop.
* **scan kernels** — :func:`node_scan_indices` /
  :func:`view_scan_indices` (single-query intersection over one node),
  :func:`node_min_dist2` / :func:`view_min_dist2` (kNN MINDIST), and
  :func:`batch_leaf_hits` / :func:`batch_child_sets` (the ``(Q x E)``
  matrix test).  All flavours implement the exact closed-interval
  predicate and float operation order of ``Rect.intersects`` /
  ``Rect.min_dist2_point``, so results are bit-identical regardless of
  which kernel runs.
* **the batch engine** — :class:`BatchSearchEngine` runs a shared
  depth-first frontier (node -> the set of still-interested queries)
  and returns per-query :class:`~repro.rtree.rstar.SearchResult`
  objects **identical to sequential** ``RStarTree.search``, including
  match order and per-query traversal accounting.

Why the shared DFS preserves per-query order: a child's query set is
always a subset of its parent's, so for any single query ``q`` the
subsequence of shared-stack pops containing ``q`` evolves exactly like
``q``'s private LIFO stack — pops and pushes of ``q``-free nodes cannot
reorder the ``q``-nodes among themselves.  Each tree node is popped at
most once per batch (query sets merge at the parent), which is where
the amortization comes from.

The closed-interval test ``e.minx <= q.maxx and e.maxx >= q.minx and
e.miny <= q.maxy and e.maxy >= q.miny`` is evaluated in packed form by
the numpy batch kernels: per node a ``(4, E)`` matrix ``[minx, miny,
-maxx, -maxy]`` and per batch a ``(Q, 4)`` matrix ``[maxx, maxy,
-minx, -miny]`` turn all four axis comparisons into one ``<=``
broadcast plus one ``all`` reduction — two array ops per node instead
of eleven, which matters when interest sets are small.  Negation is
exact in IEEE-754, so the packed form decides exactly the same
predicate.  The numpy mirrors are cached per node keyed on
``Node.mut_seq`` (and built once per immutable
:class:`~repro.rtree.serialize.NodeView`), so a static tree pays the
list-to-ndarray conversion once per node, not per query.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Sequence, Tuple

from .geometry import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (rstar uses us)
    from .node import Node
    from .rstar import RStarTree, SearchResult
    from .serialize import NodeView

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when numpy importable at all (the ``[accel]`` extra is present).
HAVE_NUMPY = _np is not None

KERNEL_AUTO = "auto"
KERNEL_NUMPY = "numpy"
KERNEL_PYTHON = "python"

#: Environment override: "auto"/unset | "numpy" | "python".
_ENV_VAR = "CATFISH_SCAN_KERNEL"


def _resolve_kernel(name: str) -> str:
    """Validate a kernel name; returns the canonical mode string."""
    name = (name or KERNEL_AUTO).strip().lower()
    if name == "":
        name = KERNEL_AUTO
    if name == KERNEL_NUMPY and not HAVE_NUMPY:
        raise RuntimeError(
            f"{_ENV_VAR}={KERNEL_NUMPY!r} but numpy is not importable; "
            f"install the [accel] extra or drop the override"
        )
    if name not in (KERNEL_AUTO, KERNEL_NUMPY, KERNEL_PYTHON):
        raise ValueError(
            f"unknown scan kernel {name!r}; expected "
            f"{KERNEL_AUTO!r}, {KERNEL_NUMPY!r} or {KERNEL_PYTHON!r}"
        )
    return name


def _apply_mode(mode: str) -> None:
    """Set the per-kernel use-numpy flags from a canonical mode."""
    global _mode, _np_single, _np_batch
    _mode = mode
    # Single-query scans: numpy only when explicitly forced (see the
    # module docstring — the broadcast loses to the short-circuiting
    # loop at node size 64).  Batch kernels: numpy whenever available.
    _np_single = mode == KERNEL_NUMPY
    _np_batch = HAVE_NUMPY and mode != KERNEL_PYTHON


_mode = KERNEL_AUTO
_np_single = False
_np_batch = False
_apply_mode(_resolve_kernel(os.environ.get(_ENV_VAR, KERNEL_AUTO)))


def kernel_name() -> str:
    """The active scan-kernel flavour: ``"numpy"`` when the vectorized
    (batched) kernels run as numpy broadcasts, else ``"python"``."""
    return KERNEL_NUMPY if _np_batch else KERNEL_PYTHON


def kernel_mode() -> str:
    """The configured mode: ``"auto"``, ``"numpy"`` or ``"python"``."""
    return _mode


def set_kernel(name: str) -> str:
    """Force the scan kernel at runtime; returns the previous mode.

    Used by the fallback-equivalence tests and the benchmark harness;
    production code selects once at import via ``CATFISH_SCAN_KERNEL``.
    """
    previous = _mode
    _apply_mode(_resolve_kernel(name))
    return previous


@contextmanager
def forced_kernel(name: str) -> Iterator[None]:
    """Context manager pinning the scan kernel (test helper)."""
    previous = set_kernel(name)
    try:
        yield
    finally:
        set_kernel(previous)


# -- coordinate-column mirrors ------------------------------------------------
#
# The numpy kernels operate on per-node mirrors derived from the
# existing flat coordinate lists: four contiguous per-axis column
# arrays (axis-at-a-time forms) plus the packed (4, E) matrix described
# in the module docstring.  Nodes key theirs on ``mut_seq`` so any
# structural mutation invalidates the ndarray mirror exactly like the
# list mirror; NodeView snapshots are immutable, so theirs is built at
# most once.


def _columns_from_coords(coords: List[float], count: int):
    """(minx, miny, maxx, maxy, packed) arrays from a flat mirror."""
    if count == 0:
        empty = _np.empty(0, dtype=_np.float64)
        return (empty, empty, empty, empty,
                _np.empty((4, 0), dtype=_np.float64))
    arr = _np.asarray(coords, dtype=_np.float64).reshape(count, 4)
    minx = _np.ascontiguousarray(arr[:, 0])
    miny = _np.ascontiguousarray(arr[:, 1])
    maxx = _np.ascontiguousarray(arr[:, 2])
    maxy = _np.ascontiguousarray(arr[:, 3])
    packed = _np.empty((4, count), dtype=_np.float64)
    packed[0] = minx
    packed[1] = miny
    _np.negative(maxx, out=packed[2])
    _np.negative(maxy, out=packed[3])
    return (minx, miny, maxx, maxy, packed)


def node_columns(node: "Node"):
    """The node's numpy column mirror, rebuilt when ``mut_seq`` moved."""
    if node._np_seq != node.mut_seq or node._npcols is None:
        coords = node._coords if node._coords_ok else node.scan_coords()
        node._npcols = _columns_from_coords(coords, len(node.entries))
        node._np_seq = node.mut_seq
    return node._npcols


def view_columns(view: "NodeView"):
    """The view's numpy column mirror (views are immutable: built once)."""
    cols = view._npcols
    if cols is None:
        cols = _columns_from_coords(view.scan_coords(), len(view.entries))
        view._npcols = cols
    return cols


# -- single-query scan kernels ------------------------------------------------


def _scan_indices_py(coords: List[float], count: int,
                     qminx: float, qminy: float,
                     qmaxx: float, qmaxy: float) -> List[int]:
    """Pure-Python closed-interval scan over a flat coordinate mirror."""
    out: List[int] = []
    i = 0
    for j in range(count):
        if (
            coords[i] <= qmaxx
            and coords[i + 2] >= qminx
            and coords[i + 1] <= qmaxy
            and coords[i + 3] >= qminy
        ):
            out.append(j)
        i += 4
    return out


def _scan_indices_np(cols, qminx: float, qminy: float,
                     qmaxx: float, qmaxy: float) -> List[int]:
    """One-broadcast single-query scan over a column mirror."""
    minx, miny, maxx, maxy, _packed = cols
    mask = (minx <= qmaxx) & (maxx >= qminx)
    mask &= miny <= qmaxy
    mask &= maxy >= qminy
    return _np.flatnonzero(mask).tolist()


def node_scan_indices(node: "Node", qminx: float, qminy: float,
                      qmaxx: float, qmaxy: float) -> List[int]:
    """Entry indices of ``node`` intersecting the query window.

    Same predicate, same ascending entry order, bit-identical output
    from either kernel flavour.
    """
    if _np_single:
        return _scan_indices_np(node_columns(node),
                                qminx, qminy, qmaxx, qmaxy)
    coords = node._coords if node._coords_ok else node.scan_coords()
    return _scan_indices_py(coords, len(node.entries),
                            qminx, qminy, qmaxx, qmaxy)


def view_scan_indices(view: "NodeView", qminx: float, qminy: float,
                      qmaxx: float, qmaxy: float) -> List[int]:
    """Entry indices of a :class:`NodeView` intersecting the window."""
    if _np_single:
        return _scan_indices_np(view_columns(view),
                                qminx, qminy, qmaxx, qmaxy)
    return _scan_indices_py(view.scan_coords(), len(view.entries),
                            qminx, qminy, qmaxx, qmaxy)


def _min_dist2_py(coords: List[float], count: int,
                  x: float, y: float) -> List[float]:
    """Per-entry squared MINDIST, mirroring ``Rect.min_dist2_point``."""
    out: List[float] = []
    i = 0
    for _ in range(count):
        dx = max(coords[i] - x, 0.0, x - coords[i + 2])
        dy = max(coords[i + 1] - y, 0.0, y - coords[i + 3])
        out.append(dx * dx + dy * dy)
        i += 4
    return out


def _min_dist2_np(cols, x: float, y: float) -> List[float]:
    minx, miny, maxx, maxy, _packed = cols
    dx = _np.maximum(minx - x, 0.0)
    _np.maximum(dx, x - maxx, out=dx)
    dy = _np.maximum(miny - y, 0.0)
    _np.maximum(dy, y - maxy, out=dy)
    # dx/dy only differ from the scalar path in the sign of a zero
    # (max(-0.0, 0.0) keeps -0.0 in Python); squaring erases it.
    return (dx * dx + dy * dy).tolist()


def node_min_dist2(node: "Node", x: float, y: float) -> List[float]:
    """Squared MINDIST from ``(x, y)`` to every entry of ``node``."""
    if _np_single:
        return _min_dist2_np(node_columns(node), x, y)
    coords = node._coords if node._coords_ok else node.scan_coords()
    return _min_dist2_py(coords, len(node.entries), x, y)


def view_min_dist2(view: "NodeView", x: float, y: float) -> List[float]:
    """Squared MINDIST from ``(x, y)`` to every entry of a view."""
    if _np_single:
        return _min_dist2_np(view_columns(view), x, y)
    return _min_dist2_py(view.scan_coords(), len(view.entries), x, y)


# -- cross-query batch kernel --------------------------------------------------


class QueryBatch:
    """A group of query windows in structure-of-arrays form.

    Holds the packed ``(Q, 4)`` comparison matrix (numpy batch kernel)
    or per-axis lists (python kernel) over all queries, plus
    ``all_sel`` — the selector naming every query — which the
    traversals narrow into per-node interest sets.
    """

    __slots__ = ("queries", "packed", "minx", "miny", "maxx", "maxy",
                 "all_sel")

    def __init__(self, queries: Sequence[Rect]):
        self.queries: List[Rect] = list(queries)
        n = len(self.queries)
        if _np_batch:
            packed = _np.empty((n, 4), dtype=_np.float64)
            for i, q in enumerate(self.queries):
                packed[i, 0] = q.maxx
                packed[i, 1] = q.maxy
                packed[i, 2] = -q.minx
                packed[i, 3] = -q.miny
            self.packed = packed
            self.minx = self.miny = self.maxx = self.maxy = None
            self.all_sel = _np.arange(n)
        else:
            self.packed = None
            self.minx = [q.minx for q in self.queries]
            self.miny = [q.miny for q in self.queries]
            self.maxx = [q.maxx for q in self.queries]
            self.maxy = [q.maxy for q in self.queries]
            self.all_sel = list(range(n))

    def __len__(self) -> int:
        return len(self.queries)

    @staticmethod
    def sel_list(qsel) -> List[int]:
        """A selector as a plain list of query indices."""
        return qsel if isinstance(qsel, list) else qsel.tolist()


def _batch_mask(source, qb: QueryBatch, qsel):
    """The (|qsel|, E) boolean intersection matrix (numpy kernel).

    ``node_packed[:, e] <= qb.packed[q]`` in all four slots is exactly
    the closed-interval intersection test (see module docstring): one
    gather, one broadcast compare, one reduction.
    """
    node_packed = source[4]
    return (node_packed[None, :, :] <= qb.packed[qsel][:, :, None]).all(
        axis=1
    )


def batch_leaf_hits(source, count: int, qb: QueryBatch,
                    qsel) -> List[Tuple[int, List[int]]]:
    """Hits of a leaf grouped per query: ``[(row, entry_idxs), ...]``.

    Rows index into ``qsel`` (the node's interest set) and come out
    ascending; each row's entry indices are ascending too — exactly
    sequential per-query match order, ready for one ``extend`` per
    (query, leaf) pair instead of per-hit Python work.  ``source`` is
    the node's column tuple (numpy kernel) or flat coordinate list
    (python kernel).
    """
    if _np_batch:
        rows, entries = _np.nonzero(_batch_mask(source, qb, qsel))
        n = rows.shape[0]
        if n == 0:
            return []
        cuts = _np.flatnonzero(rows[1:] != rows[:-1])
        rows_list = rows.tolist()
        ents_list = entries.tolist()
        out = []
        start = 0
        for cut in cuts.tolist():
            out.append((rows_list[start], ents_list[start:cut + 1]))
            start = cut + 1
        out.append((rows_list[start], ents_list[start:]))
        return out
    coords = source
    out = []
    for row, q in enumerate(qsel):
        qminx = qb.minx[q]
        qminy = qb.miny[q]
        qmaxx = qb.maxx[q]
        qmaxy = qb.maxy[q]
        hits: List[int] = []
        i = 0
        for e in range(count):
            if (
                coords[i] <= qmaxx
                and coords[i + 2] >= qminx
                and coords[i + 1] <= qmaxy
                and coords[i + 3] >= qminy
            ):
                hits.append(e)
            i += 4
        if hits:
            out.append((row, hits))
    return out


def batch_child_sets(source, count: int, qb: QueryBatch, qsel) -> List:
    """Per-entry interest sets of an internal node.

    Returns ``[(entry_idx, sub_qsel), ...]`` in ascending entry order,
    skipping entries no query intersects.  ``sub_qsel`` is a selector
    in the same representation as ``qsel`` (ndarray or list) with its
    queries in the same relative order, which is what keeps per-query
    traversal order identical to a private DFS.
    """
    if _np_batch:
        # Transposed nonzero sorts hits by entry, then by row; one
        # gather maps rows back to query ids and cheap slices carve the
        # per-entry segments — no per-entry fancy indexing.
        ent, rows = _np.nonzero(_batch_mask(source, qb, qsel).T)
        n = ent.shape[0]
        if n == 0:
            return []
        qhit = qsel[rows]
        cuts = _np.flatnonzero(ent[1:] != ent[:-1])
        ent_list = ent.tolist()
        out = []
        start = 0
        for cut in cuts.tolist():
            out.append((ent_list[start], qhit[start:cut + 1]))
            start = cut + 1
        out.append((ent_list[start], qhit[start:]))
        return out
    coords = source
    out = []
    for e in range(count):
        i = 4 * e
        eminx = coords[i]
        eminy = coords[i + 1]
        emaxx = coords[i + 2]
        emaxy = coords[i + 3]
        sub = [
            q for q in qsel
            if (
                eminx <= qb.maxx[q]
                and emaxx >= qb.minx[q]
                and eminy <= qb.maxy[q]
                and emaxy >= qb.miny[q]
            )
        ]
        if sub:
            out.append((e, sub))
    return out


def node_leaf_payload(node: "Node") -> List[Tuple[Rect, int]]:
    """The leaf's per-entry ``(rect, data_id)`` tuples, mut_seq-cached.

    The batched scatter extends per-query match lists with these
    prebuilt tuples (one C-level ``map`` per (query, leaf) pair), so
    the per-hit cost is an index instead of two attribute reads and a
    tuple construction.
    """
    if node._payload_seq != node.mut_seq or node._payload is None:
        node._payload = [(e.rect, e.data_id) for e in node.entries]
        node._payload_seq = node.mut_seq
    return node._payload


def node_scan_source(node: "Node"):
    """What the batch kernels scan for a live node (kernel-dependent)."""
    if _np_batch:
        return node_columns(node)
    return node._coords if node._coords_ok else node.scan_coords()


def view_scan_source(view: "NodeView"):
    """What the batch kernels scan for a node view (kernel-dependent)."""
    if _np_batch:
        return view_columns(view)
    return view.scan_coords()


# -- the batch search engine ---------------------------------------------------


class BatchSearchEngine:
    """Cross-query batched range search over an :class:`RStarTree`.

    ``search_batch`` runs one shared depth-first frontier for the whole
    query group: each tree node is scanned (and, in the simulated
    system, visited) **once per batch** no matter how many queries reach
    it, with the per-node intersection test evaluated as one
    ``(Q x E)`` matrix.  The returned per-query results are identical
    to calling ``tree.search(q)`` per query — same matches in the same
    order, same ``nodes_visited`` / ``leaf_nodes_visited`` /
    ``visited_chunks`` accounting — so batching is purely a wall-clock
    (and, offloaded, an RTT) optimization, never a semantic one.
    """

    def __init__(self, tree: "RStarTree"):
        self.tree = tree
        #: Batches served, queries served, and shared node pops (cheap
        #: introspection for the benchmark harness and the obs layer:
        #: total per-query visits / shared_visits is the amortization
        #: factor batching achieved).
        self.batches_served = 0
        self.queries_served = 0
        self.shared_visits = 0

    def search_batch(self, queries: Sequence[Rect]) -> List["SearchResult"]:
        """Per-query results for a group of range queries."""
        from .rstar import SearchResult

        results = [SearchResult() for _ in queries]
        self.batches_served += 1
        self.queries_served += len(results)
        if not results:
            return results
        qb = QueryBatch(queries)
        shared_visits = 0
        # Per-visit accounting runs once per (query, node) pair — the
        # only O(total visits) loop left — so it is pared down to one
        # chunk append; ``nodes_visited`` is recovered as
        # ``len(visited_chunks)`` (sequential search appends exactly
        # one chunk per pop) and leaf counts come from a side array.
        visited = [r.visited_chunks for r in results]
        res_matches = [r.matches for r in results]
        leaf_visits = [0] * len(results)
        stack: List[Tuple] = [(self.tree.root, qb.all_sel)]
        push = stack.append
        while stack:
            node, qsel = stack.pop()
            shared_visits += 1
            qlist = QueryBatch.sel_list(qsel)
            chunk_id = node.chunk_id
            entries = node.entries
            if node.level == 0:
                for q in qlist:
                    visited[q].append(chunk_id)
                    leaf_visits[q] += 1
                if entries:
                    getp = node_leaf_payload(node).__getitem__
                    for row, ent_idxs in batch_leaf_hits(
                        node_scan_source(node), len(entries), qb, qsel
                    ):
                        res_matches[qlist[row]].extend(map(getp, ent_idxs))
            else:
                for q in qlist:
                    visited[q].append(chunk_id)
                if entries:
                    # Ascending entry order + LIFO pops = the private
                    # DFS every query would have run on its own.
                    for e_idx, sub in batch_child_sets(
                        node_scan_source(node), len(entries), qb, qsel
                    ):
                        push((entries[e_idx].child, sub))
        for q, result in enumerate(results):
            result.nodes_visited = len(result.visited_chunks)
            result.leaf_nodes_visited = leaf_visits[q]
        self.shared_visits += shared_visits
        return results

    def count_batch(self, queries: Sequence[Rect]) -> List[int]:
        """Per-query intersection counts (aggregate-only batch)."""
        return [r.count for r in self.search_batch(queries)]
