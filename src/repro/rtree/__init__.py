"""The R\\*-tree and its concurrency/serialization machinery."""

from .batch import (
    HAVE_NUMPY,
    BatchSearchEngine,
    QueryBatch,
    forced_kernel,
    kernel_name,
    set_kernel,
)
from .bulk import bulk_load
from .geometry import Rect
from .locks import RWLock, TreeLockManager
from .node import DEFAULT_MAX_ENTRIES, Entry, Node, min_entries
from .rstar import MutationResult, RStarTree, SearchResult
from .serialize import (
    CACHE_LINE,
    ENTRY_SIZE,
    HEADER_SIZE,
    NodeView,
    UnpackedNode,
    chunk_size,
    pack_node,
    snapshot_node,
    unpack_node,
)
from .versioning import (
    SnapshotReader,
    VersionValidationError,
    WriteTracker,
    validate_snapshot,
)

__all__ = [
    "HAVE_NUMPY",
    "BatchSearchEngine",
    "QueryBatch",
    "forced_kernel",
    "kernel_name",
    "set_kernel",
    "bulk_load",
    "Rect",
    "RWLock",
    "TreeLockManager",
    "DEFAULT_MAX_ENTRIES",
    "Entry",
    "Node",
    "min_entries",
    "MutationResult",
    "RStarTree",
    "SearchResult",
    "CACHE_LINE",
    "ENTRY_SIZE",
    "HEADER_SIZE",
    "NodeView",
    "UnpackedNode",
    "chunk_size",
    "pack_node",
    "snapshot_node",
    "unpack_node",
    "SnapshotReader",
    "VersionValidationError",
    "WriteTracker",
    "validate_snapshot",
]
