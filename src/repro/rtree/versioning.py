"""Torn-read detection for one-sided node reads (FaRM-style versions).

The paper (§III-B) adopts the version-number mechanism of FaRM: the server
stamps a version number into every cache line of a node on each write; a
client that RDMA-Reads a node checks that all version numbers agree and
retries otherwise.  Correctness rests on RDMA Read and CPU writes both
being cache-line atomic.

In the simulation the server cannot literally race the client (the DES is
single-threaded), so torn reads are *injected*: a :class:`WriteTracker`
wraps every server-side mutation in a ``begin/end`` window of simulated
time, and any snapshot taken inside such a window is marked torn.  This
yields the same observable behaviour — the retry rate grows with the
insert rate, degrading RDMA offloading under hybrid workloads exactly as
in the paper's Figs 12/13.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable

from ..sim.kernel import Simulator
from .node import Node
from .serialize import NodeView, snapshot_node


class VersionValidationError(Exception):
    """Raised when a client uses a torn snapshot it should have rejected."""


class WriteTracker:
    """Opens and closes mutation windows over simulated time."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.total_writes = 0
        self.open_windows = 0

    def write_window(self, nodes: Iterable[Node], duration_gen) -> Generator:
        """Run ``duration_gen`` (a process generator, e.g. a CPU charge)
        while all ``nodes`` are marked as being written.

        Usage::

            yield from tracker.write_window(result.mutated_nodes,
                                            cpu.execute(cost))
        """
        nodes = list(nodes)
        for node in nodes:
            node.begin_write()
        self.open_windows += 1
        try:
            yield from duration_gen
        finally:
            self.open_windows -= 1
            for node in nodes:
                node.end_write()
            self.total_writes += 1


def validate_snapshot(view: NodeView) -> bool:
    """The client-side version check: False means retry the read."""
    return not view.torn


class SnapshotReader:
    """Server-side service for one-sided reads with retry accounting.

    Quiescent snapshots are cached per chunk and shared across reads: a
    node that has not mutated since the last read returns the *same*
    :class:`NodeView` instance instead of re-snapshotting every entry.
    The stamp is ``(node identity, version, mut_seq)`` — the same triple
    the byte-mode chunk cache uses (``version`` only bumps when the write
    window closes, ``mut_seq`` at the mutation itself, and the node
    identity guards recycled chunk ids).  Torn snapshots (a writer is
    mid-mutation) always bypass the cache.
    """

    def __init__(self, nodes: Dict[int, Node]):
        self._nodes = nodes
        self.reads = 0
        self.torn_reads = 0
        self.cached_reads = 0
        self._cache: Dict[int, tuple] = {}

    def read_chunk(self, chunk_id: int, now: float) -> NodeView:
        """Snapshot a chunk as the NIC's DMA engine would see it."""
        node = self._nodes.get(chunk_id)
        self.reads += 1
        if node is None:
            # Freed chunk (e.g. after a condense): present garbage that can
            # never validate, like reading recycled memory.
            self.torn_reads += 1
            return NodeView(level=0, chunk_id=chunk_id, entries=(),
                            version=-1, torn=True)
        if node.active_writers > 0:
            self.torn_reads += 1
            return snapshot_node(node, now)
        cached = self._cache.get(chunk_id)
        if (cached is not None and cached[0] is node
                and cached[1] == node.version
                and cached[2] == node.mut_seq):
            self.cached_reads += 1
            return cached[3]
        view = snapshot_node(node, now)
        self._cache[chunk_id] = (node, node.version, node.mut_seq, view)
        return view
