"""STR (Sort-Tile-Recursive) bulk loading.

The paper pre-builds a 2-million-rectangle R-tree before every experiment.
Building that incrementally with R\\* inserts is needlessly slow for
benchmarking, so the harness bulk-loads with STR (Leutenegger et al.,
ICDE'97), the standard packing algorithm.  The result is a valid R-tree
over the same API; an ablation benchmark compares search quality of STR
vs. incremental R\\* builds.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from .geometry import Rect
from .node import DEFAULT_MAX_ENTRIES, Entry, Node
from .rstar import RStarTree


def bulk_load(
    items: Sequence[Tuple[Rect, int]],
    max_entries: int = DEFAULT_MAX_ENTRIES,
    fill: float = 0.9,
    alloc_chunk: Optional[Callable[[], int]] = None,
    free_chunk: Optional[Callable[[int], None]] = None,
) -> RStarTree:
    """Build an R-tree from ``(rect, data_id)`` pairs with STR packing.

    ``fill`` is the target node occupancy (90% leaves room for inserts
    without immediate splits).
    """
    if not 0.1 < fill <= 1.0:
        raise ValueError(f"fill {fill} outside (0.1, 1.0]")
    tree = RStarTree(
        max_entries=max_entries,
        alloc_chunk=alloc_chunk,
        free_chunk=free_chunk,
    )
    if not items:
        return tree
    per_node = max(2, int(max_entries * fill))

    # Pack the leaf level.
    leaf_entries = [Entry(rect, data_id=data_id) for rect, data_id in items]
    nodes = _pack_level(tree, leaf_entries, level=0, per_node=per_node)

    # Pack upper levels until a single node remains.
    level = 1
    while len(nodes) > 1:
        child_entries = [Entry(n.mbr(), child=n) for n in nodes]
        nodes = _pack_level(tree, child_entries, level=level,
                            per_node=per_node)
        level += 1

    # Replace the placeholder root created by RStarTree().
    placeholder = tree.root
    tree.root = nodes[0]
    tree.root.parent = None
    if placeholder is not tree.root:
        tree._drop_node(placeholder)
    tree.size = len(items)
    return tree


def _pack_level(
    tree: RStarTree, entries: List[Entry], level: int, per_node: int
) -> List[Node]:
    """One STR pass: tile by x, sort tiles by y, cut into nodes."""
    n_nodes = math.ceil(len(entries) / per_node)
    n_slices = max(1, math.ceil(math.sqrt(n_nodes)))
    slice_size = n_slices * per_node

    def cx(entry: Entry) -> float:
        return entry.rect.center()[0]

    def cy(entry: Entry) -> float:
        return entry.rect.center()[1]

    by_x = sorted(entries, key=cx)
    nodes: List[Node] = []
    for start in range(0, len(by_x), slice_size):
        chunk = sorted(by_x[start:start + slice_size], key=cy)
        for node_start in range(0, len(chunk), per_node):
            group = chunk[node_start:node_start + per_node]
            node = tree._new_node(level)
            for entry in group:
                node.add(entry)
            nodes.append(node)
    _rebalance_tiny_tail(nodes, tree.min_entries)
    return nodes


def _rebalance_tiny_tail(nodes: List[Node], minimum: int) -> None:
    """STR can leave a last node below the minimum fill; borrow entries
    from its predecessor so tree invariants hold."""
    if len(nodes) < 2:
        return
    last, prev = nodes[-1], nodes[-2]
    while last.count < minimum and prev.count > minimum:
        entry = prev.entries[-1]
        prev.remove(entry)
        last.add(entry)
