"""R\\*-tree: insertion, deletion, search and node splitting.

The paper integrates all its communication schemes with the R\\*-tree
(Beckmann, Kriegel, Schneider, Seeger, SIGMOD'90) — §III-A: "we use the
mechanisms of R*-tree for the rectangle insertion and R-tree split".  This
module implements the full algorithm set:

* **ChooseSubtree** with the minimum-overlap-enlargement rule at the leaf
  parent level (with the 32-candidate optimization from the paper) and
  minimum-area-enlargement above;
* **Split** with the two-pass axis/index selection over margin and overlap;
* **OverflowTreatment** with forced reinsertion (30% of entries, closest
  reinsert order) once per level per insertion;
* **CondenseTree** deletion with orphan reinsertion.

Every public operation reports which nodes it visited and mutated so the
surrounding simulation can charge CPU time and open torn-read windows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from . import batch as _batch
from .geometry import Rect
from .node import DEFAULT_MAX_ENTRIES, Entry, Node, min_entries

#: Fraction of entries evicted by forced reinsertion (R* paper: p = 30%).
REINSERT_FRACTION = 0.3

#: ChooseSubtree examines only the best-32 candidates by area enlargement
#: when computing overlap enlargements (R* paper optimization for large M).
CHOOSE_SUBTREE_CANDIDATES = 32


@dataclass
class SearchResult:
    """Outcome of one search: matches plus traversal accounting."""

    matches: List[Tuple[Rect, int]] = field(default_factory=list)
    nodes_visited: int = 0
    leaf_nodes_visited: int = 0
    visited_chunks: List[int] = field(default_factory=list)

    @property
    def data_ids(self) -> List[int]:
        """Just the matching data ids (the rects are in ``matches``)."""
        return [data_id for _rect, data_id in self.matches]

    @property
    def count(self) -> int:
        return len(self.matches)


@dataclass
class MutationResult:
    """Outcome of an insert/delete: accounting for the simulation layer."""

    ok: bool = True
    nodes_visited: int = 0
    mutated_nodes: List[Node] = field(default_factory=list)
    splits: int = 0
    reinserted_entries: int = 0


class RStarTree:
    """An in-memory R\\*-tree over 2-D rectangles.

    ``alloc_chunk``/``free_chunk`` tie node lifetimes to the server's
    registered-memory chunk allocator; by default an internal counter is
    used so the tree also works stand-alone.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries_override: Optional[int] = None,
        alloc_chunk: Optional[Callable[[], int]] = None,
        free_chunk: Optional[Callable[[int], None]] = None,
    ):
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries_override
            if min_entries_override is not None
            else min_entries(max_entries)
        )
        if not 2 <= self.min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries {self.min_entries} outside [2, {max_entries // 2}]"
            )
        self._counter = itertools.count()
        self._alloc_chunk = alloc_chunk or (lambda: next(self._counter))
        self._free_chunk = free_chunk or (lambda chunk_id: None)
        #: chunk id -> node; the simulated registered memory content.
        self.nodes: Dict[int, Node] = {}
        self.root = self._new_node(level=0)
        self.size = 0  # number of stored rectangles
        #: Tree-wide mutation high-water mark: bumped once per completed
        #: structural mutation (insert / successful delete).  Exposed to
        #: offloading clients through the meta region and piggybacked on
        #: heartbeats so client-side node caches know when *any* cached
        #: upper-level view may have gone stale.  Unlike the per-node
        #: ``mut_seq`` it is globally comparable, and like ``mut_seq`` it
        #: moves at the in-memory mutation (not at write-window close).
        self.mut_hwm = 0

    # -- node lifecycle -----------------------------------------------------

    def _new_node(self, level: int) -> Node:
        node = Node(level, chunk_id=self._alloc_chunk())
        self.nodes[node.chunk_id] = node
        return node

    def _drop_node(self, node: Node) -> None:
        del self.nodes[node.chunk_id]
        self._free_chunk(node.chunk_id)

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        return self.root.level + 1

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    # -- search ---------------------------------------------------------------

    def search(self, query: Rect) -> SearchResult:
        """All data ids whose rectangles intersect ``query``.

        The per-entry test goes through the shared scan kernel
        (``repro.rtree.batch.node_scan_indices``): one numpy broadcast
        over the node's coordinate mirror, or the flat-list loop when
        numpy is absent.  Same closed-interval predicate, same entry
        order, same results either way — see ``search_via_rects`` for
        the reference loop.
        """
        result = SearchResult()
        matches = result.matches
        visited_chunks = result.visited_chunks
        scan = _batch.node_scan_indices
        qminx, qminy = query.minx, query.miny
        qmaxx, qmaxy = query.maxx, query.maxy
        nodes_visited = 0
        leaf_nodes_visited = 0
        stack = [self.root]
        push = stack.append
        while stack:
            node = stack.pop()
            nodes_visited += 1
            visited_chunks.append(node.chunk_id)
            entries = node.entries
            hits = scan(node, qminx, qminy, qmaxx, qmaxy)
            if node.level == 0:
                leaf_nodes_visited += 1
                for j in hits:
                    entry = entries[j]
                    matches.append((entry.rect, entry.data_id))
            else:
                for j in hits:
                    push(entries[j].child)
        result.nodes_visited = nodes_visited
        result.leaf_nodes_visited = leaf_nodes_visited
        return result

    def search_batch(self, queries) -> List[SearchResult]:
        """Batched search: one shared traversal for a group of queries.

        Convenience wrapper over :class:`repro.rtree.batch
        .BatchSearchEngine`; per-query results are identical to calling
        :meth:`search` once per query.
        """
        return _batch.BatchSearchEngine(self).search_batch(queries)

    def search_via_rects(self, query: Rect) -> SearchResult:
        """Reference search: per-entry ``Rect.intersects``, no scan cache.

        Kept as the oracle for the flat-scan property test; must return
        byte-identical results to ``search``.
        """
        result = SearchResult()
        stack = [self.root]
        while stack:
            node = stack.pop()
            result.nodes_visited += 1
            result.visited_chunks.append(node.chunk_id)
            if node.is_leaf:
                result.leaf_nodes_visited += 1
                for entry in node.entries:
                    if entry.rect.intersects(query):
                        result.matches.append((entry.rect, entry.data_id))
            else:
                for entry in node.entries:
                    if entry.rect.intersects(query):
                        stack.append(entry.child)
        return result

    def count_intersections(self, query: Rect) -> int:
        return self.search(query).count

    def nearest(self, x: float, y: float, k: int = 1) -> SearchResult:
        """The ``k`` nearest rectangles to point ``(x, y)``.

        Classic best-first branch-and-bound (Hjaltason & Samet): a
        priority queue ordered by MINDIST interleaves nodes and data
        entries; entries popped before any closer candidate are final.
        ``matches`` comes back ordered nearest-first.
        """
        import heapq

        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        result = SearchResult()
        counter = itertools.count()  # tie-breaker for the heap
        heap = [(0.0, next(counter), self.root, None)]
        while heap and len(result.matches) < k:
            dist, _seq, node, entry = heapq.heappop(heap)
            if node is None:
                # A data entry surfaced: nothing unexplored is closer.
                result.matches.append((entry.rect, entry.data_id))
                continue
            result.nodes_visited += 1
            result.visited_chunks.append(node.chunk_id)
            dists = _batch.node_min_dist2(node, x, y)
            if node.is_leaf:
                result.leaf_nodes_visited += 1
                for leaf_entry, d in zip(node.entries, dists):
                    heapq.heappush(heap, (d, next(counter), None, leaf_entry))
            else:
                for child_entry, d in zip(node.entries, dists):
                    heapq.heappush(heap, (
                        d, next(counter), child_entry.child, None,
                    ))
        return result

    # -- insertion ---------------------------------------------------------------

    def insert(self, rect: Rect, data_id: int) -> MutationResult:
        """Insert one rectangle (R* insert with forced reinsertion)."""
        result = MutationResult()
        # One forced reinsert per level per insertion (R* OverflowTreatment).
        self._reinserted_levels: Set[int] = set()
        self._insert_entry(Entry(rect, data_id=data_id), level=0,
                           result=result)
        self.size += 1
        self.mut_hwm += 1
        return result

    def _insert_entry(self, entry: Entry, level: int,
                      result: MutationResult) -> None:
        node = self._choose_subtree(entry.rect, level, result)
        node.add(entry)
        self._note_mutation(node, result)
        self._adjust_path_mbrs(node, result)
        if node.count > self.max_entries:
            self._overflow_treatment(node, result)

    def _choose_subtree(self, rect: Rect, level: int,
                        result: MutationResult) -> Node:
        node = self.root
        while node.level > level:
            result.nodes_visited += 1
            if node.level == level + 1 and node.level == 1:
                entry = self._choose_leaf_parent_entry(node, rect)
            else:
                entry = self._choose_min_enlargement_entry(node, rect)
            node = entry.child
        result.nodes_visited += 1
        return node

    # The two ChooseSubtree scans below are the insert-path hot loops.
    # They inline the Rect metric arithmetic (union / area / enlargement /
    # overlap_area) over the node's flat coordinate cache, preserving the
    # exact float operation order and tie-breaking of the Rect-method
    # originals so chosen subtrees — and therefore whole experiments at a
    # fixed seed — are bit-identical.

    def _choose_min_enlargement_entry(self, node: Node, rect: Rect) -> Entry:
        rminx, rminy = rect.minx, rect.miny
        rmaxx, rmaxy = rect.maxx, rect.maxy
        coords = node._coords if node._coords_ok else node.scan_coords()
        best = None
        best_enl = best_area = 0.0
        i = 0
        for entry in node.entries:
            eminx = coords[i]
            eminy = coords[i + 1]
            emaxx = coords[i + 2]
            emaxy = coords[i + 3]
            i += 4
            # union(entry.rect, rect) — min/max with Rect.union's operand
            # order (ties keep the entry's coordinate).
            uminx = rminx if rminx < eminx else eminx
            uminy = rminy if rminy < eminy else eminy
            umaxx = rmaxx if rmaxx > emaxx else emaxx
            umaxy = rmaxy if rmaxy > emaxy else emaxy
            area = (emaxx - eminx) * (emaxy - eminy)
            enl = (umaxx - uminx) * (umaxy - uminy) - area
            if (
                best is None
                or enl < best_enl
                or (enl == best_enl and area < best_area)
            ):
                best = entry
                best_enl = enl
                best_area = area
        return best

    def _choose_leaf_parent_entry(self, node: Node, rect: Rect) -> Entry:
        """Min overlap enlargement among the best candidates (R* rule)."""
        candidates = node.entries
        if len(candidates) > CHOOSE_SUBTREE_CANDIDATES:
            candidates = sorted(
                candidates, key=lambda e: e.rect.enlargement(rect)
            )[:CHOOSE_SUBTREE_CANDIDATES]
        rminx, rminy = rect.minx, rect.miny
        rmaxx, rmaxy = rect.maxx, rect.maxy
        coords = node._coords if node._coords_ok else node.scan_coords()
        entries = node.entries
        best = None
        best_overlap = best_enl = best_area = 0.0
        for entry in candidates:
            er = entry.rect
            eminx, eminy, emaxx, emaxy = er.minx, er.miny, er.maxx, er.maxy
            uminx = rminx if rminx < eminx else eminx
            uminy = rminy if rminy < eminy else eminy
            umaxx = rmaxx if rmaxx > emaxx else emaxx
            umaxy = rmaxy if rmaxy > emaxy else emaxy
            overlap_delta = 0.0
            i = 0
            for other in entries:
                if other is entry:
                    i += 4
                    continue
                ominx = coords[i]
                ominy = coords[i + 1]
                omaxx = coords[i + 2]
                omaxy = coords[i + 3]
                i += 4
                # enlarged.overlap_area(other.rect)
                ixmin = ominx if ominx > uminx else uminx
                iymin = ominy if ominy > uminy else uminy
                ixmax = omaxx if omaxx < umaxx else umaxx
                iymax = omaxy if omaxy < umaxy else umaxy
                if ixmin > ixmax or iymin > iymax:
                    a1 = 0.0
                else:
                    a1 = (ixmax - ixmin) * (iymax - iymin)
                # entry.rect.overlap_area(other.rect)
                ixmin = ominx if ominx > eminx else eminx
                iymin = ominy if ominy > eminy else eminy
                ixmax = omaxx if omaxx < emaxx else emaxx
                iymax = omaxy if omaxy < emaxy else emaxy
                if ixmin > ixmax or iymin > iymax:
                    a2 = 0.0
                else:
                    a2 = (ixmax - ixmin) * (iymax - iymin)
                overlap_delta += a1 - a2
            area = (emaxx - eminx) * (emaxy - eminy)
            enl = (umaxx - uminx) * (umaxy - uminy) - area
            if (
                best is None
                or overlap_delta < best_overlap
                or (
                    overlap_delta == best_overlap
                    and (
                        enl < best_enl
                        or (enl == best_enl and area < best_area)
                    )
                )
            ):
                best = entry
                best_overlap = overlap_delta
                best_enl = enl
                best_area = area
        return best

    # -- overflow: forced reinsert or split ------------------------------------

    def _overflow_treatment(self, node: Node, result: MutationResult) -> None:
        if node is not self.root and node.level not in self._reinserted_levels:
            self._reinserted_levels.add(node.level)
            self._forced_reinsert(node, result)
        else:
            self._split(node, result)

    def _forced_reinsert(self, node: Node, result: MutationResult) -> None:
        """Evict the p% entries farthest from the node centre, re-insert."""
        count = max(1, int(REINSERT_FRACTION * self.max_entries))
        mbr = node.mbr()
        ordered = sorted(
            node.entries,
            key=lambda e: e.rect.center_distance2(mbr),
            reverse=True,
        )
        evicted = ordered[:count]
        for entry in evicted:
            node.remove(entry)
        self._note_mutation(node, result)
        self._adjust_path_mbrs(node, result)
        result.reinserted_entries += len(evicted)
        # Close reinsert: nearest first (R* experiments favour this order).
        for entry in reversed(evicted):
            self._insert_entry(entry, node.level, result)

    def _split(self, node: Node, result: MutationResult) -> None:
        result.splits += 1
        group_a, group_b = self._choose_split(node.entries)
        sibling = self._new_node(node.level)
        node.entries = []
        node.invalidate()
        for entry in group_a:
            node.add(entry)
        for entry in group_b:
            sibling.add(entry)
        self._note_mutation(node, result)
        self._note_mutation(sibling, result)
        if node is self.root:
            new_root = self._new_node(node.level + 1)
            new_root.add(Entry(node.mbr(), child=node))
            new_root.add(Entry(sibling.mbr(), child=sibling))
            self.root = new_root
            self._note_mutation(new_root, result)
            return
        parent = node.parent
        parent.entry_for_child(node).rect = node.mbr()
        parent.invalidate()
        parent.add(Entry(sibling.mbr(), child=sibling))
        self._note_mutation(parent, result)
        self._adjust_path_mbrs(parent, result)
        if parent.count > self.max_entries:
            self._overflow_treatment(parent, result)

    def _choose_split(
        self, entries: List[Entry]
    ) -> Tuple[List[Entry], List[Entry]]:
        """R* split: choose axis by margin sum, index by overlap/area."""
        m = self.min_entries
        best_axis_margin = None
        best_axis_sortings = None
        for axis in ("x", "y"):
            if axis == "x":
                by_lower = sorted(entries, key=lambda e: (e.rect.minx,
                                                          e.rect.maxx))
                by_upper = sorted(entries, key=lambda e: (e.rect.maxx,
                                                          e.rect.minx))
            else:
                by_lower = sorted(entries, key=lambda e: (e.rect.miny,
                                                          e.rect.maxy))
                by_upper = sorted(entries, key=lambda e: (e.rect.maxy,
                                                          e.rect.miny))
            margin_sum = 0.0
            for ordered in (by_lower, by_upper):
                for k in self._split_points(len(entries), m):
                    left = Rect.union_of(e.rect for e in ordered[:k])
                    right = Rect.union_of(e.rect for e in ordered[k:])
                    margin_sum += left.margin() + right.margin()
            if best_axis_margin is None or margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                best_axis_sortings = (by_lower, by_upper)
        best_key = None
        best_groups = None
        for ordered in best_axis_sortings:
            for k in self._split_points(len(entries), m):
                left = Rect.union_of(e.rect for e in ordered[:k])
                right = Rect.union_of(e.rect for e in ordered[k:])
                key = (left.overlap_area(right),
                       left.area() + right.area())
                if best_key is None or key < best_key:
                    best_key = key
                    best_groups = (list(ordered[:k]), list(ordered[k:]))
        return best_groups

    @staticmethod
    def _split_points(total: int, m: int) -> Iterable[int]:
        """Legal left-group sizes: both groups get at least ``m`` entries."""
        return range(m, total - m + 1)

    # -- deletion -----------------------------------------------------------------

    def delete(self, rect: Rect, data_id: int) -> MutationResult:
        """Remove one rectangle; returns ``ok=False`` if not present."""
        result = MutationResult()
        leaf, entry = self._find_leaf(self.root, rect, data_id, result)
        if leaf is None:
            result.ok = False
            return result
        leaf.remove(entry)
        self._note_mutation(leaf, result)
        self.size -= 1
        self.mut_hwm += 1
        self._condense_tree(leaf, result)
        # Shrink the root if it became a lone-child internal node.
        while not self.root.is_leaf and self.root.count == 1:
            old_root = self.root
            self.root = old_root.entries[0].child
            self.root.parent = None
            self._drop_node(old_root)
            self._note_mutation(self.root, result)
        return result

    def _find_leaf(
        self, node: Node, rect: Rect, data_id: int, result: MutationResult
    ) -> Tuple[Optional[Node], Optional[Entry]]:
        result.nodes_visited += 1
        if node.is_leaf:
            for entry in node.entries:
                if entry.data_id == data_id and entry.rect == rect:
                    return node, entry
            return None, None
        for entry in node.entries:
            if entry.rect.intersects(rect):
                leaf, found = self._find_leaf(entry.child, rect, data_id,
                                              result)
                if leaf is not None:
                    return leaf, found
        return None, None

    def _condense_tree(self, node: Node, result: MutationResult) -> None:
        orphans: List[Tuple[Entry, int]] = []
        while node is not self.root:
            parent = node.parent
            if node.count < self.min_entries:
                parent.remove(parent.entry_for_child(node))
                for entry in list(node.entries):
                    node.remove(entry)
                    orphans.append((entry, node.level))
                self._drop_node(node)
                self._note_mutation(parent, result)
            else:
                entry = parent.entry_for_child(node)
                entry.rect = node.mbr()
                parent.invalidate()
                self._note_mutation(parent, result)
            node = parent
        self._reinserted_levels = set()
        for entry, level in orphans:
            self._insert_entry(entry, level, result)

    # -- MBR maintenance ------------------------------------------------------------

    def _adjust_path_mbrs(self, node: Node, result: MutationResult) -> None:
        while node.parent is not None:
            parent = node.parent
            entry = parent.entry_for_child(node)
            new_mbr = node.mbr() if node.entries else entry.rect
            if new_mbr == entry.rect:
                break
            entry.rect = new_mbr
            parent.invalidate()
            self._note_mutation(parent, result)
            node = parent

    @staticmethod
    def _note_mutation(node: Node, result: MutationResult) -> None:
        if node not in result.mutated_nodes:
            result.mutated_nodes.append(node)

    # -- invariants (used by the test suite) ------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raises AssertionError on bugs."""
        seen_ids: List[int] = []
        self._validate_node(self.root, is_root=True, seen_ids=seen_ids)
        assert len(seen_ids) == self.size, (
            f"size {self.size} but {len(seen_ids)} leaf entries"
        )

    def _validate_node(self, node: Node, is_root: bool,
                       seen_ids: List[int]) -> None:
        if is_root:
            assert node.parent is None, "root has a parent"
            if not node.is_leaf:
                assert node.count >= 2, "internal root with < 2 entries"
        else:
            assert self.min_entries <= node.count <= self.max_entries, (
                f"node #{node.chunk_id} has {node.count} entries "
                f"(bounds [{self.min_entries}, {self.max_entries}])"
            )
        assert node.chunk_id in self.nodes, "node missing from registry"
        for entry in node.entries:
            if node.is_leaf:
                assert entry.is_leaf_entry, "child entry in a leaf"
                seen_ids.append(entry.data_id)
            else:
                assert not entry.is_leaf_entry, "data entry in internal node"
                child = entry.child
                assert child.parent is node, "broken parent pointer"
                assert child.level == node.level - 1, "level mismatch"
                assert entry.rect == child.mbr(), (
                    f"stale MBR for child #{child.chunk_id}"
                )
                self._validate_node(child, is_root=False, seen_ids=seen_ids)
