"""The on-chunk node format used by RDMA offloading.

Every R-tree node occupies one fixed-size chunk in the server's registered
region (§III-B of the paper).  A client that knows the region base and the
chunk size can fetch any node with a single RDMA Read.

Layout (little-endian)::

    header:   level:u32  count:u32  chunk_id:u64
    entries:  count x { minx:f64 miny:f64 maxx:f64 maxy:f64 ref:u64 }
    versions: one u8 per 64-byte cache line of the chunk (FaRM style)

``ref`` is a data id in leaves and a child chunk id in internal nodes.
The byte codec is exercised by the test suite for round-trip fidelity; the
simulation's hot path moves :class:`NodeView` snapshots instead of bytes
(equivalent content, no per-read pack cost) and charges the wire for
``chunk_size`` bytes, exactly what the real system reads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from . import batch as _batch
from .geometry import Rect
from .node import DEFAULT_MAX_ENTRIES, Node

HEADER_FORMAT = "<IIQ"
HEADER_SIZE = struct.calcsize(HEADER_FORMAT)  # 16
ENTRY_FORMAT = "<ddddQ"
ENTRY_SIZE = struct.calcsize(ENTRY_FORMAT)  # 40
CACHE_LINE = 64


def payload_size(max_entries: int) -> int:
    """Bytes of header + full entry array (before version bytes)."""
    return HEADER_SIZE + max_entries * ENTRY_SIZE


def version_bytes(max_entries: int) -> int:
    """One version byte per cache line touched by the payload."""
    payload = payload_size(max_entries)
    return (payload + CACHE_LINE - 1) // CACHE_LINE


def chunk_size(max_entries: int = DEFAULT_MAX_ENTRIES) -> int:
    """Total chunk footprint, rounded up to a cache-line multiple."""
    raw = payload_size(max_entries) + version_bytes(max_entries)
    return ((raw + CACHE_LINE - 1) // CACHE_LINE) * CACHE_LINE


def pack_node(node: Node, max_entries: int = DEFAULT_MAX_ENTRIES) -> bytes:
    """Serialize a node into its chunk bytes (version bytes uniform)."""
    if node.count > max_entries:
        raise ValueError(
            f"node #{node.chunk_id} has {node.count} > {max_entries} entries"
        )
    out = bytearray(chunk_size(max_entries))
    struct.pack_into(HEADER_FORMAT, out, 0, node.level, node.count,
                     node.chunk_id if node.chunk_id >= 0 else 0)
    offset = HEADER_SIZE
    for entry in node.entries:
        ref = entry.data_id if entry.is_leaf_entry else entry.child.chunk_id
        struct.pack_into(
            ENTRY_FORMAT, out, offset,
            entry.rect.minx, entry.rect.miny,
            entry.rect.maxx, entry.rect.maxy, ref,
        )
        offset += ENTRY_SIZE
    version = node.version & 0xFF
    base = payload_size(max_entries)
    for i in range(version_bytes(max_entries)):
        out[base + i] = version
    return bytes(out)


@dataclass
class UnpackedEntry:
    rect: Rect
    ref: int


@dataclass
class UnpackedNode:
    level: int
    chunk_id: int
    entries: List[UnpackedEntry]
    versions: Tuple[int, ...]

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def versions_consistent(self) -> bool:
        """FaRM validation: all cache-line versions must agree."""
        return len(set(self.versions)) <= 1


def unpack_node(
    data: bytes, max_entries: int = DEFAULT_MAX_ENTRIES
) -> UnpackedNode:
    """Parse chunk bytes back into a node image."""
    expected = chunk_size(max_entries)
    if len(data) != expected:
        raise ValueError(f"chunk is {len(data)} bytes, expected {expected}")
    level, count, chunk_id = struct.unpack_from(HEADER_FORMAT, data, 0)
    if count > max_entries:
        raise ValueError(f"corrupt chunk: count {count} > {max_entries}")
    entries = []
    offset = HEADER_SIZE
    for _ in range(count):
        minx, miny, maxx, maxy, ref = struct.unpack_from(
            ENTRY_FORMAT, data, offset
        )
        entries.append(UnpackedEntry(Rect(minx, miny, maxx, maxy), ref))
        offset += ENTRY_SIZE
    base = payload_size(max_entries)
    versions = tuple(data[base + i] for i in range(version_bytes(max_entries)))
    return UnpackedNode(level, chunk_id, entries, versions)


@dataclass
class NodeView:
    """A consistent snapshot of a node as an offloading client sees it.

    ``torn`` is True when the snapshot was taken while a server thread was
    mutating the node — the client's version check will reject it and
    retry, exactly like FaRM's per-cache-line version validation.

    The entry MBRs are additionally mirrored into a flat coordinate list
    (built lazily, once per view) so the client's per-node intersection
    scans compare floats directly instead of calling ``Rect.intersects``
    per entry — the same flat-scan technique the server tree uses.
    Snapshots of quiescent nodes are cached and shared across reads (see
    :class:`~repro.rtree.versioning.SnapshotReader`), so one coordinate
    build amortizes over every read of the node between mutations.
    """

    level: int
    chunk_id: int
    entries: Tuple[Tuple[Rect, int], ...]  # (mbr, ref) pairs
    version: int
    torn: bool
    #: lazy [minx, miny, maxx, maxy] * count mirror of the entry MBRs
    _coords: Optional[List[float]] = field(
        default=None, repr=False, compare=False
    )
    #: lazy numpy column mirror (minx/miny/maxx/maxy arrays), built at
    #: most once per view by ``repro.rtree.batch.view_columns``
    _npcols: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def scan_coords(self) -> List[float]:
        """The flat ``[minx, miny, maxx, maxy] * count`` coordinate list."""
        coords = self._coords
        if coords is None:
            coords = []
            for rect, _ref in self.entries:
                coords.append(rect.minx)
                coords.append(rect.miny)
                coords.append(rect.maxx)
                coords.append(rect.maxy)
            self._coords = coords
        return coords

    def intersecting_refs(self, query: Rect) -> List[int]:
        """Child chunk ids (or data ids at leaves) intersecting ``query``.

        Routed through the shared scan kernel (one numpy broadcast over
        the view's column mirror, or the flat-list fallback loop).
        """
        entries = self.entries
        return [
            entries[j][1]
            for j in _batch.view_scan_indices(
                self, query.minx, query.miny, query.maxx, query.maxy
            )
        ]

    def intersecting_entries(self, query: Rect) -> List[Tuple[Rect, int]]:
        """The ``(mbr, ref)`` pairs intersecting ``query`` (leaf matches)."""
        entries = self.entries
        return [
            entries[j]
            for j in _batch.view_scan_indices(
                self, query.minx, query.miny, query.maxx, query.maxy
            )
        ]


def pack_node_torn(node: Node, max_entries: int = DEFAULT_MAX_ENTRIES,
                   torn_at: int = 0) -> bytes:
    """Serialize a node as a concurrent writer would expose it mid-write:
    cache lines before ``torn_at`` carry the new version number, the rest
    still carry the old one — exactly the inconsistency FaRM's validation
    exists to catch."""
    data = bytearray(pack_node(node, max_entries))
    base = payload_size(max_entries)
    n_versions = version_bytes(max_entries)
    torn_at = max(1, min(torn_at if torn_at > 0 else n_versions // 2,
                         n_versions - 1))
    new_version = (node.version + 1) & 0xFF  # the writer's in-flight stamp
    for i in range(torn_at):
        data[base + i] = new_version
    return bytes(data)


def garbage_chunk(max_entries: int = DEFAULT_MAX_ENTRIES) -> bytes:
    """Recycled-memory bytes: version numbers that can never validate."""
    data = bytearray(chunk_size(max_entries))
    base = payload_size(max_entries)
    for i in range(version_bytes(max_entries)):
        data[base + i] = i & 0xFF or 1  # alternating, never uniform
    return bytes(data)


def view_from_bytes(
    data: bytes, max_entries: int = DEFAULT_MAX_ENTRIES
) -> Optional[NodeView]:
    """Client-side decode + FaRM validation of raw chunk bytes.

    Returns None when the image cannot be trusted: unparsable content or
    inconsistent per-cache-line versions (a torn read).
    """
    try:
        img = unpack_node(data, max_entries)
    except ValueError:
        return None
    if not img.versions_consistent:
        return None
    return NodeView(
        level=img.level,
        chunk_id=img.chunk_id,
        entries=tuple((e.rect, e.ref) for e in img.entries),
        version=img.versions[0] if img.versions else 0,
        torn=False,
    )


def snapshot_node(node: Node, now: Optional[float] = None) -> NodeView:
    """Take the client-visible snapshot of a live node."""
    return NodeView(
        level=node.level,
        chunk_id=node.chunk_id,
        entries=tuple(
            (e.rect, e.data_id if e.is_leaf_entry else e.child.chunk_id)
            for e in node.entries
        ),
        version=node.version,
        torn=node.active_writers > 0,
    )
