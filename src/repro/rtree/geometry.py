"""2-D rectangle geometry for the R-tree.

The paper stores 2-dimensional rectangles, each described by four double
precision coordinates ``min(x), max(x), min(y), max(y)`` (§II-A).  All
R\\*-tree heuristics (area, margin, overlap, enlargement) live here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple


class Rect:
    """An axis-aligned rectangle ``[minx, maxx] x [miny, maxy]``.

    Degenerate rectangles (points, segments) are legal — real spatial data
    contains them and the R\\*-tree handles them fine.
    """

    __slots__ = ("minx", "miny", "maxx", "maxy")

    def __init__(self, minx: float, miny: float, maxx: float, maxy: float):
        if minx > maxx or miny > maxy:
            raise ValueError(
                f"invalid rect: [{minx}, {maxx}] x [{miny}, {maxy}]"
            )
        self.minx = minx
        self.miny = miny
        self.maxx = maxx
        self.maxy = maxy

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float,
                    height: float) -> "Rect":
        """Rectangle of ``width x height`` centred on ``(cx, cy)``."""
        if width < 0 or height < 0:
            raise ValueError(f"negative extent {width} x {height}")
        return cls(cx - width / 2, cy - height / 2,
                   cx + width / 2, cy + height / 2)

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        return cls(x, y, x, y)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Minimum bounding rectangle of a non-empty collection."""
        it: Iterator[Rect] = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_of() of an empty collection") from None
        minx, miny = first.minx, first.miny
        maxx, maxy = first.maxx, first.maxy
        for r in it:
            if r.minx < minx:
                minx = r.minx
            if r.miny < miny:
                miny = r.miny
            if r.maxx > maxx:
                maxx = r.maxx
            if r.maxy > maxy:
                maxy = r.maxy
        return cls(minx, miny, maxx, maxy)

    # -- metrics -----------------------------------------------------------
    #
    # ``area``/``margin`` sit in the R*-tree's innermost loops, so they use
    # direct arithmetic rather than going through the ``width``/``height``
    # properties (a property call per operand is measurable there).

    @property
    def width(self) -> float:
        return self.maxx - self.minx

    @property
    def height(self) -> float:
        return self.maxy - self.miny

    def area(self) -> float:
        return (self.maxx - self.minx) * (self.maxy - self.miny)

    def margin(self) -> float:
        """Half-perimeter; the R\\*-tree split axis criterion."""
        return (self.maxx - self.minx) + (self.maxy - self.miny)

    def center(self) -> Tuple[float, float]:
        return ((self.minx + self.maxx) / 2, (self.miny + self.maxy) / 2)

    def center_distance2(self, other: "Rect") -> float:
        """Squared distance between centres (forced-reinsert ordering)."""
        ax, ay = self.center()
        bx, by = other.center()
        return (ax - bx) ** 2 + (ay - by) ** 2

    def min_dist2_point(self, x: float, y: float) -> float:
        """Squared distance from a point to the rectangle (0 if inside).

        The MINDIST lower bound of branch-and-bound kNN search: no object
        inside this MBR can be closer to ``(x, y)`` than this.
        """
        dx = max(self.minx - x, 0.0, x - self.maxx)
        dy = max(self.miny - y, 0.0, y - self.maxy)
        return dx * dx + dy * dy

    # -- predicates ---------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """Closed-interval overlap test (touching counts, as in Guttman)."""
        return not (
            other.minx > self.maxx
            or other.maxx < self.minx
            or other.miny > self.maxy
            or other.maxy < self.miny
        )

    def contains(self, other: "Rect") -> bool:
        return (
            self.minx <= other.minx
            and self.miny <= other.miny
            and self.maxx >= other.maxx
            and self.maxy >= other.maxy
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.minx <= x <= self.maxx and self.miny <= y <= self.maxy

    # -- combinations --------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.minx, other.minx),
            min(self.miny, other.miny),
            max(self.maxx, other.maxx),
            max(self.maxy, other.maxy),
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or None when disjoint."""
        minx = max(self.minx, other.minx)
        miny = max(self.miny, other.miny)
        maxx = min(self.maxx, other.maxx)
        maxy = min(self.maxy, other.maxy)
        if minx > maxx or miny > maxy:
            return None
        return Rect(minx, miny, maxx, maxy)

    def overlap_area(self, other: "Rect") -> float:
        inter = self.intersection(other)
        return inter.area() if inter is not None else 0.0

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed for this MBR to also cover ``other``."""
        return self.union(other).area() - self.area()

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.minx == other.minx
            and self.miny == other.miny
            and self.maxx == other.maxx
            and self.maxy == other.maxy
        )

    def __hash__(self) -> int:
        return hash((self.minx, self.miny, self.maxx, self.maxy))

    def __repr__(self) -> str:
        return (
            f"Rect({self.minx:.6g}, {self.miny:.6g}, "
            f"{self.maxx:.6g}, {self.maxy:.6g})"
        )
