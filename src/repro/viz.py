"""Tiny ASCII visualization helpers for terminals and logs.

Used by the CLI's ``--timeline`` flag and the examples to show how an
experiment evolved over time without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render values as a unicode sparkline.

    ``lo``/``hi`` pin the scale (defaults: data min/max).
    """
    values = list(values)
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        frac = (v - lo) / span
        index = min(len(SPARK_LEVELS) - 1,
                    max(0, int(frac * len(SPARK_LEVELS))))
        out.append(SPARK_LEVELS[index])
    return "".join(out)


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 40,
              unit: str = "") -> List[str]:
    """Horizontal bar chart lines: ``label  ####  value``."""
    rows = list(rows)
    if not rows:
        return []
    peak = max(v for _l, v in rows) or 1.0
    label_width = max(len(label) for label, _v in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1 if value > 0 else 0,
                        round(value / peak * width))
        lines.append(
            f"{label.rjust(label_width)}  {bar.ljust(width)} "
            f"{value:.1f}{unit}"
        )
    return lines


def render_timeline(timeline: Sequence[Tuple[float, float, float]],
                    max_points: int = 72) -> List[str]:
    """Render a RunResult timeline as labelled sparklines.

    The timeline entries are ``(time_s, cpu_utilization,
    offload_fraction)``; long traces are downsampled.
    """
    timeline = list(timeline)
    if not timeline:
        return ["(no timeline collected)"]
    if len(timeline) > max_points:
        step = len(timeline) / max_points
        timeline = [timeline[int(i * step)] for i in range(max_points)]
    cpu = [c for _t, c, _o in timeline]
    offload = [o for _t, _c, o in timeline]
    start_ms = timeline[0][0] * 1e3
    end_ms = timeline[-1][0] * 1e3
    return [
        f"timeline {start_ms:.2f} .. {end_ms:.2f} ms "
        f"({len(timeline)} windows)",
        f"server cpu   [0..1] {sparkline(cpu, 0.0, 1.0)}",
        f"offload frac [0..1] {sparkline(offload, 0.0, 1.0)}",
    ]
