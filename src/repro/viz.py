"""Tiny ASCII visualization helpers for terminals and logs.

Used by the CLI's ``--timeline`` flag and the examples to show how an
experiment evolved over time without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render values as a unicode sparkline.

    ``lo``/``hi`` pin the scale (defaults: data min/max).
    """
    values = list(values)
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        frac = (v - lo) / span
        index = min(len(SPARK_LEVELS) - 1,
                    max(0, int(frac * len(SPARK_LEVELS))))
        out.append(SPARK_LEVELS[index])
    return "".join(out)


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 40,
              unit: str = "") -> List[str]:
    """Horizontal bar chart lines: ``label  ####  value``."""
    rows = list(rows)
    if not rows:
        return []
    peak = max(v for _l, v in rows) or 1.0
    label_width = max(len(label) for label, _v in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1 if value > 0 else 0,
                        round(value / peak * width))
        lines.append(
            f"{label.rjust(label_width)}  {bar.ljust(width)} "
            f"{value:.1f}{unit}"
        )
    return lines


def render_metrics(document: dict, width: int = 40) -> List[str]:
    """Render a ``catfish-metrics/v1`` document as terminal text.

    Counters and gauges become one bar chart, histograms get a
    count/mean/percentile line each, series become sparklines.
    """
    metrics = document.get("metrics", {})
    meta = document.get("meta", {})
    lines: List[str] = []
    if meta:
        tag = " ".join(f"{k}={meta[k]}" for k in ("scheme", "fabric",
                                                  "n_clients") if k in meta)
        lines.append(f"metrics [{tag}]" if tag else "metrics")

    scalars = []
    for name in sorted(metrics):
        snap = metrics[name]
        if snap.get("type") in ("counter", "gauge"):
            value = snap.get("value")
            if isinstance(value, (int, float)) and value:
                scalars.append((name, float(value)))
    lines.extend(bar_chart(scalars, width=width))

    for name in sorted(metrics):
        snap = metrics[name]
        if snap.get("type") == "histogram" and snap.get("count"):
            unit = snap.get("unit", "")
            def fmt(key):
                v = snap.get(key)
                return f"{v:.1f}" if isinstance(v, (int, float)) else "-"
            tail = (f" p999={fmt('p999')}"
                    if snap.get("p999") is not None else "")
            loop = snap.get("loop")
            lines.append(
                f"{name}: n={snap['count']} mean={fmt('mean')}{unit} "
                f"p50={fmt('p50')} p95={fmt('p95')} p99={fmt('p99')}"
                f"{tail}{f' [{loop}-loop]' if loop else ''}"
            )

    for name in sorted(metrics):
        snap = metrics[name]
        if snap.get("type") == "series" and snap.get("points"):
            values = [v for _t, v in snap["points"] if v is not None]
            lines.append(f"{name} [{min(values):.3g}..{max(values):.3g}] "
                         f"{sparkline(values)}")

    trace = document.get("trace")
    if trace:
        lines.append(
            f"trace: {trace.get('total_events', 0)} events "
            f"({trace.get('dropped_events', 0)} dropped)"
        )
    return lines or ["(no metrics)"]


def render_timeline(timeline: Sequence[Tuple[float, float, float]],
                    max_points: int = 72) -> List[str]:
    """Render a RunResult timeline as labelled sparklines.

    The timeline entries are ``(time_s, cpu_utilization,
    offload_fraction)``; long traces are downsampled.
    """
    timeline = list(timeline)
    if not timeline:
        return ["(no timeline collected)"]
    if len(timeline) > max_points:
        step = len(timeline) / max_points
        timeline = [timeline[int(i * step)] for i in range(max_points)]
    cpu = [c for _t, c, _o in timeline]
    offload = [o for _t, _c, o in timeline]
    start_ms = timeline[0][0] * 1e3
    end_ms = timeline[-1][0] * 1e3
    return [
        f"timeline {start_ms:.2f} .. {end_ms:.2f} ms "
        f"({len(timeline)} windows)",
        f"server cpu   [0..1] {sparkline(cpu, 0.0, 1.0)}",
        f"offload frac [0..1] {sparkline(offload, 0.0, 1.0)}",
    ]
