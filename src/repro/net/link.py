"""Point-to-point link model: FIFO serialization + propagation delay.

A :class:`Link` is unidirectional.  Transmitting ``n`` bytes first waits for
the transmitter (FIFO — this is where bandwidth saturation and queueing
delay come from), holds it for ``n / bandwidth`` seconds, then the message
propagates for ``latency`` seconds without occupying the transmitter (so
back-to-back messages pipeline, as on a real wire).
"""

from __future__ import annotations

from typing import Generator

from ..sim.kernel import Simulator
from ..sim.monitor import ByteCounter
from ..sim.resources import Resource


class Link:
    """A unidirectional link with finite bandwidth and fixed latency."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        latency_s: float,
        name: str = "link",
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth_bps}")
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self._bytes_per_s = bandwidth_bps / 8.0
        self._tx = Resource(sim, capacity=1)
        self.counter = ByteCounter(sim)
        #: Optional fault hook (see repro.faults): a zero-arg callable
        #: returning extra seconds this transfer waits before taking the
        #: transmitter (packet loss retransmits, latency spikes).
        self.fault_hook = None

    @property
    def bytes_per_second(self) -> float:
        return self._bytes_per_s

    def serialization_delay(self, nbytes: int) -> float:
        """Time the transmitter is held for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        return nbytes / self._bytes_per_s

    def transfer(self, nbytes: int) -> Generator:
        """Process generator: completes when the last byte has arrived."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        if self.fault_hook is not None:
            penalty = self.fault_hook()
            if penalty > 0.0:
                yield self.sim.timeout(penalty)
        req = self._tx.request()
        try:
            yield req
            yield self.sim.timeout(nbytes / self._bytes_per_s)
            self.counter.record(nbytes)
        finally:
            req.release()
        # Propagation overlaps with the next sender's serialization.
        yield self.sim.timeout(self.latency_s)

    @property
    def queue_length(self) -> int:
        """Messages waiting for the transmitter (congestion signal)."""
        return self._tx.queue_length

    def utilization(self) -> float:
        """Average offered load since t=0 as a fraction of capacity."""
        if self.sim.now <= 0:
            return 0.0
        return (
            self.counter.total_bytes / self.bytes_per_second
        ) / self.sim.now

    def window_bandwidth_bps(self, reset: bool = True) -> float:
        """Average bits/second over the last measurement window."""
        return self.counter.window_bandwidth(reset=reset) * 8.0


class DuplexLink:
    """A pair of opposite unidirectional links (one host's access link)."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        latency_s: float,
        name: str = "duplex",
    ):
        self.tx = Link(sim, bandwidth_bps, latency_s, name=f"{name}.tx")
        self.rx = Link(sim, bandwidth_bps, latency_s, name=f"{name}.rx")

    def utilization(self) -> float:
        """The busier direction's utilization (what Fig 2 reports)."""
        return max(self.tx.utilization(), self.rx.utilization())
