"""Fabric profiles and the experiment network topology.

A :class:`FabricProfile` bundles every calibration constant of one
interconnect (the paper's 1 GbE, 40 GbE and EDR 100 Gb InfiniBand).  The
constants are chosen so that the micro-benchmark (paper Fig 9) reproduces:
RDMA Write one-way ~1.5-2 us, RDMA Read RTT ~3-4 us, TCP RTTs tens of us,
and bandwidth-bound behaviour past ~2 KB transfers.

The :class:`Network` topology is deliberately server-centric: the paper's
bottlenecks (Fig 2) are the server's CPU and the server's access link, so
only the server link is shared; client access links are modelled as
uncontended (documented simplification — the paper runs at most 32 clients
per 28-core client node and never reports client-side saturation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator

from ..sim.kernel import Simulator
from .link import DuplexLink
from .wire import ib_wire_size, tcp_wire_size


@dataclass(frozen=True)
class FabricProfile:
    """Calibration constants for one interconnect."""

    name: str
    bandwidth_bps: float
    #: One-way propagation including switch traversal, seconds.
    base_latency_s: float
    #: Whether one-sided verbs are available.
    rdma: bool
    #: CPU burned in the kernel per TCP send or receive (per side), seconds.
    tcp_kernel_per_msg_s: float = 0.0
    #: CPU burned per payload byte for kernel copies, seconds.
    tcp_kernel_per_byte_s: float = 0.0
    #: Local CPU cost to post a work request (doorbell + WQE build), seconds.
    rdma_post_overhead_s: float = 0.0
    #: NIC processing per RDMA operation (each NIC it crosses), seconds.
    rdma_nic_processing_s: float = 0.0

    def wire_size(self, payload: int) -> int:
        """On-the-wire bytes for a message of ``payload`` bytes."""
        if self.rdma:
            return ib_wire_size(payload)
        return tcp_wire_size(payload)

    def scaled(self, **changes) -> "FabricProfile":
        """A copy with some constants replaced (for ablations)."""
        return replace(self, **changes)


#: 1 Gbps Ethernet with the TCP/IP stack (paper's "TCP/IP-1G").
ETH_1G = FabricProfile(
    name="eth-1g",
    bandwidth_bps=1e9,
    base_latency_s=20e-6,
    rdma=False,
    tcp_kernel_per_msg_s=15e-6,
    tcp_kernel_per_byte_s=0.25e-9,
)

#: 40 Gbps Ethernet with the TCP/IP stack (paper's "TCP/IP-40G").
ETH_40G = FabricProfile(
    name="eth-40g",
    bandwidth_bps=40e9,
    base_latency_s=5e-6,
    rdma=False,
    tcp_kernel_per_msg_s=15e-6,
    tcp_kernel_per_byte_s=0.25e-9,
)

#: EDR 100 Gbps InfiniBand, ConnectX-5 (paper's RDMA fabric).
IB_100G = FabricProfile(
    name="ib-100g",
    bandwidth_bps=100e9,
    base_latency_s=0.9e-6,
    rdma=True,
    rdma_post_overhead_s=0.2e-6,
    rdma_nic_processing_s=0.25e-6,
)

PROFILES = {p.name: p for p in (ETH_1G, ETH_40G, IB_100G)}


def profile_by_name(name: str) -> FabricProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fabric {name!r}; known: {sorted(PROFILES)}"
        ) from None


class Network:
    """Star topology around the server's (shared) access link."""

    def __init__(self, sim: Simulator, profile: FabricProfile):
        self.sim = sim
        self.profile = profile
        self.server_host = None  # set via attach_server()
        self.server_link = DuplexLink(
            sim, profile.bandwidth_bps, profile.base_latency_s, name="server"
        )

    def attach_server(self, host) -> None:
        """Declare which host owns the shared access link."""
        self.server_host = host

    def attach_injector(self, injector) -> None:
        """Install a fault injector's loss/latency hooks on the server
        link (``tx`` = server transmit, ``rx`` = server receive — the
        direction names :class:`repro.faults.LinkFault` uses)."""
        self.server_link.tx.fault_hook = lambda: injector.link_penalty("tx")
        self.server_link.rx.fault_hook = lambda: injector.link_penalty("rx")

    def transfer(self, src, dst, wire_bytes: int) -> Generator:
        """Move ``wire_bytes`` (already wire-inflated) from src to dst host.

        Returns the link's transfer generator directly (rather than
        delegating with ``yield from``), so every hop through the fabric
        costs one generator frame instead of two — ``transfer`` sits under
        every simulated RDMA/TCP message.  Completes when the last byte
        arrives.  Exactly one endpoint must be the attached server.
        """
        if self.server_host is None:
            raise RuntimeError("Network has no attached server host")
        if dst is self.server_host:
            link = self.server_link.rx
        elif src is self.server_host:
            link = self.server_link.tx
        else:
            raise ValueError(
                f"transfer {getattr(src, 'name', src)} -> "
                f"{getattr(dst, 'name', dst)} does not touch the server"
            )
        return link.transfer(wire_bytes)

    def to_server(self, payload: int) -> Generator:
        """Deliver ``payload`` bytes client -> server (process generator)."""
        return self.server_link.rx.transfer(self.profile.wire_size(payload))

    def to_client(self, payload: int) -> Generator:
        """Deliver ``payload`` bytes server -> client (process generator)."""
        return self.server_link.tx.transfer(self.profile.wire_size(payload))

    def server_bandwidth_utilization(self) -> float:
        """Fraction of the server access link consumed (Fig 2's right axis)."""
        return self.server_link.utilization()

    def server_bandwidth_gbps(self) -> float:
        """Average consumed bandwidth of the busier direction, in Gbps."""
        if self.sim.now <= 0:
            return 0.0
        tx = self.server_link.tx.counter.total_bytes * 8.0 / self.sim.now
        rx = self.server_link.rx.counter.total_bytes * 8.0 / self.sim.now
        return max(tx, rx) / 1e9
