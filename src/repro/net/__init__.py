"""Network models: links, wire formats, fabric profiles, topology."""

from .fabric import (
    ETH_1G,
    ETH_40G,
    IB_100G,
    PROFILES,
    FabricProfile,
    Network,
    profile_by_name,
)
from .link import DuplexLink, Link
from .wire import (
    IB_ACK_SIZE,
    IB_MTU,
    IB_PACKET_OVERHEAD,
    IB_READ_REQUEST_SIZE,
    TCP_MSS,
    TCP_SEGMENT_OVERHEAD,
    ib_wire_size,
    tcp_wire_size,
)

__all__ = [
    "ETH_1G",
    "ETH_40G",
    "IB_100G",
    "PROFILES",
    "FabricProfile",
    "Network",
    "profile_by_name",
    "DuplexLink",
    "Link",
    "IB_ACK_SIZE",
    "IB_MTU",
    "IB_PACKET_OVERHEAD",
    "IB_READ_REQUEST_SIZE",
    "TCP_MSS",
    "TCP_SEGMENT_OVERHEAD",
    "ib_wire_size",
    "tcp_wire_size",
]
