"""Wire-format accounting: header overheads and segmentation.

Latency and saturation points depend on what actually crosses the wire, not
just the payload, so every transfer is inflated to its on-the-wire size
here.  Numbers follow the standard frame formats.
"""

from __future__ import annotations

import math

#: Ethernet (14+4) + IPv4 (20) + TCP (20 + typical 12 of options) + preamble
#: and inter-frame gap amortized in — per TCP segment.
TCP_SEGMENT_OVERHEAD = 78

#: Maximum TCP payload per segment with a 1500-byte Ethernet MTU.
TCP_MSS = 1448

#: InfiniBand RC packet overhead: LRH (8) + BTH (12) + RETH (16) + ICRC/VCRC
#: (6) — per IB MTU-sized packet.
IB_PACKET_OVERHEAD = 42

#: InfiniBand MTU used by the ConnectX-5 profile.
IB_MTU = 4096

#: Size of an RDMA read *request* packet on the wire (no payload).
IB_READ_REQUEST_SIZE = 28

#: Size of an RDMA write/read acknowledgement packet.
IB_ACK_SIZE = 20


def tcp_wire_size(payload: int) -> int:
    """Bytes on the wire for a TCP message of ``payload`` bytes."""
    if payload < 0:
        raise ValueError(f"negative payload {payload}")
    segments = max(1, math.ceil(payload / TCP_MSS))
    return payload + segments * TCP_SEGMENT_OVERHEAD


def ib_wire_size(payload: int) -> int:
    """Bytes on the wire for an RC RDMA payload of ``payload`` bytes."""
    if payload < 0:
        raise ValueError(f"negative payload {payload}")
    packets = max(1, math.ceil(payload / IB_MTU))
    return payload + packets * IB_PACKET_OVERHEAD
