"""Measurement helpers: time-weighted statistics, utilization, rates.

Every quantitative claim in the reproduction (CPU utilization heartbeats,
NIC bandwidth in Fig 2, latency distributions in Figs 7-14) is computed by
one of these trackers, so they are deliberately small and heavily tested.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .kernel import Simulator


class TallyStats:
    """Streaming mean / variance / min / max over observed samples."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0 if self.count else math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan


class LatencyRecorder:
    """Stores every sample so percentiles can be computed exactly.

    Latencies per experiment are at most a few hundred thousand floats,
    which is cheap to keep.
    """

    def __init__(self) -> None:
        self.samples: List[float] = []
        self.stats = TallyStats()

    def record(self, value: float) -> None:
        self.samples.append(value)
        self.stats.record(value)

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac


class UtilizationTracker:
    """Time-weighted busy fraction of a pool of ``capacity`` servers.

    Call :meth:`set_busy` whenever the number of busy servers changes.
    Utilization over a window is busy-server-time / (capacity * window).
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._busy = 0
        self._last_change = sim.now
        self._busy_time = 0.0  # cumulative busy * seconds
        self._window_start = sim.now
        self._window_busy_time = 0.0

    def _accumulate(self) -> None:
        elapsed = self.sim.now - self._last_change
        if elapsed > 0:
            self._busy_time += self._busy * elapsed
            self._window_busy_time += self._busy * elapsed
        self._last_change = self.sim.now

    def set_busy(self, busy: int) -> None:
        if busy < 0 or busy > self.capacity:
            raise ValueError(f"busy={busy} outside [0, {self.capacity}]")
        self._accumulate()
        self._busy = busy

    def adjust(self, delta: int) -> None:
        self.set_busy(self._busy + delta)

    @property
    def busy(self) -> int:
        return self._busy

    def utilization_since_start(self) -> float:
        self._accumulate()
        total = self.sim.now * self.capacity
        return self._busy_time / total if total > 0 else 0.0

    def window_utilization(self, reset: bool = True) -> float:
        """Utilization since the last window reset (the heartbeat reading)."""
        self._accumulate()
        window = self.sim.now - self._window_start
        if window <= 0:
            return float(self._busy) / self.capacity
        value = self._window_busy_time / (window * self.capacity)
        if reset:
            self._window_start = self.sim.now
            self._window_busy_time = 0.0
        return value


class ByteCounter:
    """Counts bytes moved through a link; reports average bandwidth."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.total_bytes = 0
        self.total_messages = 0
        self._window_start = sim.now
        self._window_bytes = 0

    def record(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        self.total_bytes += nbytes
        self._window_bytes += nbytes
        self.total_messages += 1

    def bandwidth_since_start(self) -> float:
        """Average bytes/second since t=0."""
        return self.total_bytes / self.sim.now if self.sim.now > 0 else 0.0

    def window_bandwidth(self, reset: bool = True) -> float:
        window = self.sim.now - self._window_start
        value = self._window_bytes / window if window > 0 else 0.0
        if reset:
            self._window_start = self.sim.now
            self._window_bytes = 0
        return value


class TimeSeries:
    """Sparse (time, value) series for plotting experiment traces."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.points: List[Tuple[float, float]] = []

    def record(self, value: float) -> None:
        self.points.append((self.sim.now, value))

    def values(self) -> Sequence[float]:
        return [v for _t, v in self.points]

    def mean(self) -> float:
        vals = self.values()
        return sum(vals) / len(vals) if vals else math.nan

    def last(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None
