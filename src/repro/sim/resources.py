"""Shared-resource primitives built on the DES kernel.

Three primitives cover everything the Catfish model needs:

* :class:`Resource` — ``capacity`` identical servers with a FIFO wait queue
  (CPU cores, NIC DMA engines).
* :class:`Store` — an unbounded (or bounded) FIFO of items with blocking
  ``get`` (message queues, completion queues, event channels).
* :class:`Container` — a continuous quantity with blocking ``get``/``put``
  (ring-buffer free space).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .kernel import Event, Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`; succeeds when granted.

    Usable as a context manager so releases cannot be forgotten::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "released")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self.released = False
        resource._on_request(self)

    def release(self) -> None:
        """Return the claimed slot (idempotent)."""
        if not self.released:
            self.released = True
            self.resource._on_release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """``capacity`` identical slots with FIFO granting."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: int = 0
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently claimed."""
        return self._users

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event succeeds when granted."""
        return Request(self)

    def _on_request(self, request: Request) -> None:
        if self._users < self.capacity:
            self._users += 1
            # Uncontended grant: trigger *and* mark processed in one step.
            # The requester's ``yield`` then resumes through the kernel's
            # already-processed path instead of paying a queue round-trip
            # for an event with a single, known callback.  Contended
            # grants (below, and in ``_on_release``) still go through the
            # queue, so FIFO fairness and wake-up ordering are untouched.
            request._ok = True
            request.callbacks = None
        else:
            self._waiting.append(request)

    def _on_release(self, request: Request) -> None:
        if request._ok is None:  # not triggered yet
            # Cancelled before being granted: drop from the wait queue.
            try:
                self._waiting.remove(request)
            except ValueError:
                pass
            return
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed()
        else:
            self._users -= 1


class StoreGet(Event):
    """Pending ``get`` on a :class:`Store`; value is the retrieved item."""

    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.sim)
        store._on_get(self)

    def cancel(self) -> None:
        """Withdraw the get if it has not been satisfied yet."""
        if not self.triggered:
            self.defused = True  # nothing will consume a cancelled get


class StorePut(Event):
    """Pending ``put`` on a bounded :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item
        store._on_put(self)


class Store:
    """FIFO item store with blocking get and (optionally bounded) put."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> StorePut:
        """Add ``item``; blocks (stays pending) if the store is full."""
        return StorePut(self, item)

    def put_discard(self, item: Any) -> None:
        """Deposit ``item`` without creating an acknowledgement event.

        Behaviourally identical to calling :meth:`put` and discarding the
        returned event: on an unbounded store the put succeeds instantly,
        and an instantly-succeeded event nobody holds runs zero callbacks
        when it pops — pure event-queue overhead.  Hot no-ack producers
        (completion queues, notification channels) use this instead.
        Bounded stores must use :meth:`put` (the ack event is how their
        back-pressure is expressed).
        """
        if self.capacity is not None:
            raise ValueError("put_discard() requires an unbounded store")
        self.items.append(item)
        if self._getters:
            self._match()

    def get(self) -> StoreGet:
        """Remove and return the oldest item; blocks while empty."""
        return StoreGet(self)

    def _on_put(self, put: StorePut) -> None:
        self.items.append(put.item)
        # An unbounded put always succeeds at once: trigger and mark
        # processed in one step (see Resource._on_request) so the putter
        # resumes inline instead of paying a queue round-trip.
        put._ok = True
        put.callbacks = None
        if self._getters:
            self._match()

    def _on_get(self, get: StoreGet) -> None:
        if self.items and not self._getters:
            # Item already buffered and nobody queued ahead: serve
            # synchronously (``_match`` invariant guarantees the two
            # deques are never both non-empty between operations).
            get._ok = True
            get._value = self.items.popleft()
            get.callbacks = None
            if self._putters:
                self._match()
            return
        self._getters.append(get)
        self._match()

    def _match(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter._ok is not None or getter.defused:
                continue
            getter.succeed(self.items.popleft())
        # Unblock putters while there is room.
        while self._putters and (
            self.capacity is None or len(self.items) < self.capacity
        ):
            putter = self._putters.popleft()
            self.items.append(putter.item)
            putter.succeed()


class BoundedStore(Store):
    """A store whose put blocks when ``capacity`` items are buffered."""

    def __init__(self, sim: Simulator, capacity: int):
        super().__init__(sim, capacity=capacity)

    def _on_put(self, put: StorePut) -> None:
        if len(self.items) < self.capacity or self._getters:
            self.items.append(put.item)
            put.succeed()
            self._match()
        else:
            self._putters.append(put)


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.sim)
        self.amount = amount
        container._on_get(self)

    def cancel(self) -> None:
        """Withdraw the get if it has not been satisfied yet.

        A cancelled get never takes quantity out of the container;
        ``_match`` skips it, so getters queued behind it are not starved
        (mirrors :meth:`StoreGet.cancel`).
        """
        if not self.triggered:
            self.defused = True


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.sim)
        self.amount = amount
        container._on_put(self)


class Container:
    """A continuous quantity (e.g. bytes of free ring-buffer space)."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if init < 0 or init > capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self._getters: Deque[ContainerGet] = deque()
        self._putters: Deque[ContainerPut] = deque()

    def get(self, amount: float) -> ContainerGet:
        """Take ``amount`` out; pending until enough is available (FIFO)."""
        return ContainerGet(self, amount)

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; pending until it fits under ``capacity``."""
        return ContainerPut(self, amount)

    def _on_get(self, get: ContainerGet) -> None:
        if not self._getters and get.amount <= self.level:
            # Immediately satisfiable with nobody queued ahead: take the
            # quantity and mark the event processed in one step (see
            # Resource._on_request).  The freed headroom may unblock a
            # queued putter, exactly as in the queued path.
            self.level -= get.amount
            get._ok = True
            get.callbacks = None
            if self._putters:
                self._match()
            return
        self._getters.append(get)
        self._match()

    def _on_put(self, put: ContainerPut) -> None:
        if not self._putters and self.level + put.amount <= self.capacity:
            self.level += put.amount
            put._ok = True
            put.callbacks = None
            if self._getters:
                self._match()
            return
        self._putters.append(put)
        self._match()

    def _match(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and (
                self.level + self._putters[0].amount <= self.capacity
            ):
                put = self._putters.popleft()
                self.level += put.amount
                put.succeed()
                progressed = True
            while self._getters and self._getters[0].defused:
                # Cancelled get (bounded-wait reservation that timed out):
                # drop it so it neither takes quantity nor blocks the FIFO.
                self._getters.popleft()
                progressed = True
            if self._getters and self._getters[0].amount <= self.level:
                get = self._getters.popleft()
                self.level -= get.amount
                get.succeed()
                progressed = True
