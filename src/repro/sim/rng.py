"""Named, seeded random-number streams.

Every stochastic component (workload generators, back-off jitter, scheduler
noise) draws from its own named stream derived from one experiment seed, so
that (a) runs are reproducible bit-for-bit and (b) changing how one component
consumes randomness does not perturb the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulated client)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def shard(self, shard_id: int) -> "RngRegistry":
        """Derive the registry for one shard of a sharded cluster.

        The child depends on ``(seed, shard_id)`` only — never on the
        total shard count — so growing a cluster from 4 to 8 shards
        leaves shards 0-3 drawing exactly the streams they drew before,
        and a sharded run is replayable shard by shard.
        """
        if shard_id < 0:
            raise ValueError(f"shard_id must be >= 0, got {shard_id}")
        return self.fork(f"shard-{shard_id}")
