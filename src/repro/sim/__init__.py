"""Discrete-event simulation substrate (kernel, resources, measurement)."""

from .kernel import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    all_of,
    any_of,
)
from .monitor import (
    ByteCounter,
    LatencyRecorder,
    TallyStats,
    TimeSeries,
    UtilizationTracker,
)
from .resources import (
    BoundedStore,
    Container,
    Resource,
    Store,
)
from .rng import RngRegistry

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "all_of",
    "any_of",
    "ByteCounter",
    "LatencyRecorder",
    "TallyStats",
    "TimeSeries",
    "UtilizationTracker",
    "BoundedStore",
    "Container",
    "Resource",
    "Store",
    "RngRegistry",
]
