"""Discrete-event simulation kernel.

This is the foundation of the whole reproduction: every host, NIC, link,
server thread and client in the Catfish system is a :class:`Process`
(a generator-based coroutine) scheduled by a :class:`Simulator`.

The design follows the classic event-loop DES style (compare simpy, which is
not available offline): a process yields *events* and is resumed when the
event triggers, receiving the event's value.  Simulated time only advances
between events; callbacks run at a single instant.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(5.0)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Sentinel priority: events scheduled with URGENT run before NORMAL ones
#: that were scheduled for the same simulated instant.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class EventAlreadyTriggered(SimulationError):
    """Raised when succeeding/failing an event that already triggered."""


class Interrupt(SimulationError):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*, is *triggered* by :meth:`succeed` or
    :meth:`fail` (which schedules it on the simulator queue), and is
    *processed* once its callbacks have run.  Processes wait on events by
    yielding them.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: True once a failure has been consumed by some waiter; lets the
        #: kernel detect unhandled failures.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or will be) processed."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, NORMAL)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            raise SimulationError("cannot add a callback to a processed event")
        self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "pending" if self._ok is None
            else "ok" if self._ok
            else "failed"
        )
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, URGENT)


class Process(Event):
    """A running coroutine; also an event that triggers when it finishes.

    The coroutine is a generator that yields :class:`Event` instances.  When
    a yielded event triggers, the process resumes with the event's value (or
    the event's exception thrown in, if it failed).  The process event itself
    succeeds with the generator's return value, or fails with its uncaught
    exception.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the coroutine has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is an error; interrupting a process
        twice before it handles the first is allowed (both are delivered).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is self.sim._active_event:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from the event we were waiting on so its later trigger does
        # not resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.sim._schedule(event, URGENT)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            # Stale wake-up (e.g. the event we abandoned on interrupt).
            if not event._ok:
                event.defused = True
            return
        self.sim._active_process = self
        self.sim._active_event = None
        while True:
            if event._ok:
                try:
                    target = self._generator.send(event._value)
                except StopIteration as exc:
                    self._finish(True, exc.value)
                    break
                except BaseException as exc:  # noqa: BLE001 - propagate via event
                    self._finish(False, exc)
                    break
            else:
                event.defused = True
                try:
                    target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._finish(True, exc.value)
                    break
                except BaseException as exc:  # noqa: BLE001
                    self._finish(False, exc)
                    break

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}, not an Event"
                )
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                event.defused = True
                continue
            if target.processed:
                # Already-processed events resume the process immediately.
                event = target
                continue
            target.add_callback(self._resume)
            self._target = target
            self.sim._active_event = target
            break
        self.sim._active_process = None
        self.sim._active_event = None

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        if not ok:
            # If nobody is waiting on this process, the failure must surface.
            if not self.callbacks:
                self.sim._crash(value)
                return
        self.sim._schedule(self, NORMAL)


class Simulator:
    """The event loop: a priority queue of (time, priority, seq, event)."""

    def __init__(self, start_time: float = 0.0):
        self.now: float = start_time
        self._queue: List = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self._active_event: Optional[Event] = None
        self._pending_crash: Optional[BaseException] = None

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heapq.heappush(
            self._queue, (self.now + delay, priority, next(self._seq), event)
        )

    def _crash(self, exc: BaseException) -> None:
        """Record an unhandled process failure; re-raised by run()/step()."""
        if self._pending_crash is None:
            self._pending_crash = exc

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------

    @property
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _prio, _seq, event = heapq.heappop(self._queue)
        self.now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            self._crash(event._value)
        if self._pending_crash is not None:
            exc, self._pending_crash = self._pending_crash, None
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the queue drains (or ``limit`` simulated
        time is reached) before the event triggers.
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError("queue drained before event triggered")
            if self._queue[0][0] > limit:
                raise SimulationError(f"event not triggered by t={limit}")
            self.step()
        if not event._ok:
            event.defused = True
            raise event._value
        return event._value


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that succeeds when every event in ``events`` succeeds.

    Its value is the list of the constituent events' values, in input order.
    If any constituent fails, the composite fails with that exception (once).
    """
    events = list(events)
    composite = sim.event()
    if not events:
        composite.succeed([])
        return composite
    remaining = [len(events)]

    def _check(_event: Event) -> None:
        if composite.triggered:
            return
        if not _event._ok:
            _event.defused = True
            composite.fail(_event._value)
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            composite.succeed([e._value for e in events])

    for event in events:
        if event.processed:
            # Feed processed events through the same path immediately.
            _check(event)
        else:
            event.add_callback(_check)
    return composite


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that succeeds when the first of ``events`` succeeds.

    Its value is ``(index, value)`` of the first event to trigger.  Fails if
    the first event to trigger failed.
    """
    events = list(events)
    if not events:
        raise ValueError("any_of() requires at least one event")
    composite = sim.event()

    def _make(index: int) -> Callable[[Event], None]:
        def _check(_event: Event) -> None:
            if composite.triggered:
                if not _event._ok:
                    _event.defused = True
                return
            if _event._ok:
                composite.succeed((index, _event._value))
            else:
                _event.defused = True
                composite.fail(_event._value)
        return _check

    for index, event in enumerate(events):
        callback = _make(index)
        if event.processed:
            callback(event)
            if composite.triggered:
                break
        else:
            event.add_callback(callback)
    return composite
