"""Discrete-event simulation kernel.

This is the foundation of the whole reproduction: every host, NIC, link,
server thread and client in the Catfish system is a :class:`Process`
(a generator-based coroutine) scheduled by a :class:`Simulator`.

The design follows the classic event-loop DES style (compare simpy, which is
not available offline): a process yields *events* and is resumed when the
event triggers, receiving the event's value.  Simulated time only advances
between events; callbacks run at a single instant.

Because every simulated RDMA op costs a handful of events, this module is
the hottest code in the repository and is written accordingly: all event
classes use ``__slots__``, the run loops are inlined (no per-event method
dispatch), :class:`Timeout` objects for the pervasive fixed-delay case are
pooled, and interrupt bookkeeping is O(1) (a tombstone check instead of a
linear ``callbacks.remove``).  See ``docs/performance.md`` for numbers.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(5.0)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Sentinel priority: events scheduled with URGENT run before NORMAL ones
#: that were scheduled for the same simulated instant.
URGENT = 0
NORMAL = 1

#: Heap entries are ``(time, key, event)`` where ``key`` packs priority and
#: schedule sequence into one int: ``(priority << 62) | seq``.  Comparing a
#: single int resolves the frequent same-instant ties in one step instead
#: of two tuple elements, and keys are unique so the event itself is never
#: compared.
_PRIO_SHIFT = 62
_NORMAL_KEY = NORMAL << _PRIO_SHIFT

_heappush = heapq.heappush

#: Upper bound on the simulator's :class:`Timeout` free list.  A run's
#: working set of concurrently pending timeouts rarely exceeds the number
#: of live processes; the cap just bounds worst-case memory.
_TIMEOUT_POOL_MAX = 4096


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class EventAlreadyTriggered(SimulationError):
    """Raised when succeeding/failing an event that already triggered."""


class Interrupt(SimulationError):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*, is *triggered* by :meth:`succeed` or
    :meth:`fail` (which schedules it on the simulator queue), and is
    *processed* once its callbacks have run.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: True once a failure has been consumed by some waiter; lets the
        #: kernel detect unhandled failures.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or will be) processed."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        _heappush(sim._queue, (sim.now, _NORMAL_KEY + seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        _heappush(sim._queue, (sim.now, _NORMAL_KEY + seq, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            raise SimulationError("cannot add a callback to a processed event")
        self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "pending" if self._ok is None
            else "ok" if self._ok
            else "failed"
        )
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    Instances created through :meth:`Simulator.timeout` are recycled into a
    per-simulator free list once processed (exact-type check; subclasses
    are never pooled).  A recycled instance is fully re-initialized on
    reuse, so every ``sim.timeout()`` call observably behaves like a fresh
    event.  The one caveat: a Timeout must not be *inspected* (``.value``)
    after the instant it fired — composites capture values at callback
    time for exactly this reason.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._seq = seq = sim._seq + 1
        _heappush(sim._queue, (sim.now + delay, _NORMAL_KEY + seq, self))


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._seq = seq = sim._seq + 1
        _heappush(sim._queue, (sim.now, seq, self))


class Process(Event):
    """A running coroutine; also an event that triggers when it finishes.

    The coroutine is a generator that yields :class:`Event` instances.  When
    a yielded event triggers, the process resumes with the event's value (or
    the event's exception thrown in, if it failed).  The process event itself
    succeeds with the generator's return value, or fails with its uncaught
    exception.
    """

    __slots__ = ("name", "_generator", "_target", "_interrupts")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        #: Events whose wake-up this process still expects: the event it is
        #: waiting on (``_target``) plus any pending interrupt deliveries.
        #: Anything else calling back is a tombstoned (abandoned) event.
        self._interrupts: List[Event] = []
        self._target: Optional[Event] = Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the coroutine has not finished."""
        return self._ok is None

    @property
    def has_started(self) -> bool:
        """True once the coroutine has executed its first step.

        Interrupting a process that has not yet started throws the
        :class:`Interrupt` at the generator's first instruction — before
        any ``try`` it opens — so callers that interrupt cooperatively
        (expecting the target to catch) must check this first.
        """
        return not isinstance(self._target, Initialize)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is an error; interrupting a process
        twice before it handles the first is allowed (both are delivered).

        The event the process was waiting on is *abandoned*, not edited:
        its callback list keeps the stale ``_resume`` entry (a tombstone
        discarded in O(1) when the event eventually fires) instead of
        paying an O(n) ``callbacks.remove`` here.
        """
        if self._ok is not None:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is self.sim._active_event:
            raise SimulationError("a process cannot interrupt itself")
        # Abandon the event we were waiting on; its later trigger is
        # recognized as stale in _resume (tombstone, no list surgery).
        self._target = None
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self._interrupts.append(event)
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        _heappush(sim._queue, (sim.now, seq, event))

    def _resume(self, event: Event) -> None:
        if self._ok is not None:
            # Stale wake-up (e.g. the event we abandoned on interrupt).
            if event._ok is False:
                event.defused = True
            return
        if event is not self._target:
            # Either a pending interrupt delivery or a stale wake-up from
            # an event abandoned by interrupt().
            try:
                self._interrupts.remove(event)
            except ValueError:
                if event._ok is False:
                    event.defused = True
                return
        sim = self.sim
        generator = self._generator
        while True:
            if event._ok:
                try:
                    target = generator.send(event._value)
                except StopIteration as exc:
                    self._finish(True, exc.value)
                    break
                except BaseException as exc:  # noqa: BLE001 - propagate via event
                    self._finish(False, exc)
                    break
            else:
                event.defused = True
                try:
                    target = generator.throw(event._value)
                except StopIteration as exc:
                    self._finish(True, exc.value)
                    break
                except BaseException as exc:  # noqa: BLE001
                    self._finish(False, exc)
                    break

            try:
                # Duck-typed: anything with a callbacks list is an event.
                # (Avoids an isinstance per resume on the hottest path.)
                target_callbacks = target.callbacks
            except AttributeError:
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}, not an Event"
                )
                event = Event(sim)
                event._ok = False
                event._value = exc
                event.defused = True
                continue
            if target_callbacks is None:
                # Already-processed events resume the process immediately.
                event = target
                continue
            target_callbacks.append(self._resume)
            self._target = target
            break

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        if not self.callbacks:
            if not ok:
                # Nobody is waiting on this process: the failure must
                # surface.
                self.sim._crash(value)
                return
            # Nobody is waiting: mark the event processed right away
            # instead of scheduling a queue entry that would run zero
            # callbacks.  A process that yields this event later resumes
            # through the already-processed path, and removing the no-op
            # entry only shifts later sequence numbers uniformly, so
            # same-instant tie-breaking among the remaining events is
            # unchanged (same argument as ``Store.put_discard``).
            self.callbacks = None
            return
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        _heappush(sim._queue, (sim.now, _NORMAL_KEY + seq, self))


class Simulator:
    """The event loop: a priority queue of ``(time, key, event)`` entries
    (``key`` packs priority and schedule sequence, see ``_PRIO_SHIFT``)."""

    def __init__(self, start_time: float = 0.0):
        self.now: float = start_time
        self._queue: List = []
        self._seq = 0
        self._timeout_pool: List[Timeout] = []
        self._active_process: Optional[Process] = None
        self._active_event: Optional[Event] = None
        self._pending_crash: Optional[BaseException] = None

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        _heappush(
            self._queue,
            (self.now + delay, (priority << _PRIO_SHIFT) + seq, event),
        )

    def _crash(self, exc: BaseException) -> None:
        """Record an unhandled process failure; re-raised by run()/step()."""
        if self._pending_crash is None:
            self._pending_crash = exc

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units.

        Reuses a pooled instance when one is available (every field is
        re-initialized, so the returned event is indistinguishable from a
        fresh one).
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            timeout = pool.pop()
            # The pooled instance kept its (cleared) callbacks list — see
            # the recycle sites in step()/run() — so no list is allocated.
            timeout._ok = True
            timeout._value = value
            timeout.defused = False
            timeout.delay = delay
            self._seq = seq = self._seq + 1
            _heappush(
                self._queue, (self.now + delay, _NORMAL_KEY + seq, timeout)
            )
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------

    @property
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _key, event = heapq.heappop(self._queue)
        self.now = time
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if event._ok is False:
            if not event.defused:
                self._crash(event._value)
        elif (type(event) is Timeout
              and len(self._timeout_pool) < _TIMEOUT_POOL_MAX):
            callbacks.clear()
            event.callbacks = callbacks
            self._timeout_pool.append(event)
        if self._pending_crash is not None:
            exc, self._pending_crash = self._pending_crash, None
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        An event scheduled *exactly* at ``until`` is still processed (the
        clock stops strictly after ``until`` is exceeded).
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        # Hot loop: the body of step() is inlined (one method call per
        # event otherwise dominates the kernel's own work).
        queue = self._queue
        pool = self._timeout_pool
        heappop = heapq.heappop
        while queue:
            if until is not None and queue[0][0] > until:
                self.now = until
                return
            time, _key, event = heappop(queue)
            self.now = time
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if event._ok is False:
                if not event.defused:
                    self._crash(event._value)
            elif (type(event) is Timeout
                  and len(pool) < _TIMEOUT_POOL_MAX):
                callbacks.clear()
                event.callbacks = callbacks
                pool.append(event)
            if self._pending_crash is not None:
                exc, self._pending_crash = self._pending_crash, None
                raise exc
        if until is not None:
            self.now = until

    def run_until_triggered(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the queue drains (or ``limit`` simulated
        time is reached) before the event triggers.
        """
        queue = self._queue
        pool = self._timeout_pool
        heappop = heapq.heappop
        while event._ok is None:
            if not queue:
                raise SimulationError("queue drained before event triggered")
            if queue[0][0] > limit:
                raise SimulationError(f"event not triggered by t={limit}")
            # Inlined step() body (see run()).
            time, _key, current = heappop(queue)
            self.now = time
            callbacks = current.callbacks
            current.callbacks = None
            for callback in callbacks:
                callback(current)
            if current._ok is False:
                if not current.defused:
                    self._crash(current._value)
            elif (type(current) is Timeout
                  and len(pool) < _TIMEOUT_POOL_MAX):
                callbacks.clear()
                current.callbacks = callbacks
                pool.append(current)
            if self._pending_crash is not None:
                exc, self._pending_crash = self._pending_crash, None
                raise exc
        if not event._ok:
            event.defused = True
            raise event._value
        return event._value


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that succeeds when every event in ``events`` succeeds.

    Its value is the list of the constituent events' values, in input order.
    If any constituent fails, the composite fails with that exception (once).

    Values are captured at each constituent's trigger instant (not when the
    composite completes), so pooled :class:`Timeout` constituents report
    the value they actually fired with.
    """
    events = list(events)
    composite = sim.event()
    if not events:
        composite.succeed([])
        return composite
    remaining = [len(events)]
    values: List[Any] = [None] * len(events)

    def _make(index: int) -> Callable[[Event], None]:
        def _check(_event: Event) -> None:
            if composite._ok is not None:
                if _event._ok is False:
                    _event.defused = True
                return
            if _event._ok is False:
                _event.defused = True
                composite.fail(_event._value)
                return
            values[index] = _event._value
            remaining[0] -= 1
            if remaining[0] == 0:
                composite.succeed(values)
        return _check

    for index, event in enumerate(events):
        callback = _make(index)
        if event.callbacks is None:
            # Feed processed events through the same path immediately.
            callback(event)
        else:
            event.callbacks.append(callback)
    return composite


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that succeeds when the first of ``events`` succeeds.

    Its value is ``(index, value)`` of the first event to trigger.  Fails if
    the first event to trigger failed.  Once the composite has triggered,
    every remaining constituent — pending *or* already processed — that
    turns out to have failed is defused, so a lost race cannot crash the
    run.
    """
    events = list(events)
    if not events:
        raise ValueError("any_of() requires at least one event")
    composite = sim.event()

    def _make(index: int) -> Callable[[Event], None]:
        def _check(_event: Event) -> None:
            if composite._ok is not None:
                if _event._ok is False:
                    _event.defused = True
                return
            if _event._ok:
                composite.succeed((index, _event._value))
            else:
                _event.defused = True
                composite.fail(_event._value)
        return _check

    for index, event in enumerate(events):
        callback = _make(index)
        if event.callbacks is None:
            # Already processed: feed it through the same path.  This also
            # covers processed *failures* seen after the composite
            # triggered — they must be defused, not skipped.
            callback(event)
        else:
            event.callbacks.append(callback)
    return composite
