"""The RDMA-Write ring buffer (paper Fig 5).

One ring buffer per direction per connection, pre-allocated and registered
once.  The *sender* RDMA-Writes messages at the free (tail) pointer; the
*receiver* consumes at the processed (head) pointer and writes the updated
head back so the sender knows how much space is free.

In the simulation the framing is byte-accurate — a message occupies
``MSG_HEADER_SIZE + payload`` bytes of ring capacity, senders block when
the ring is full (backpressure), FIFO order is preserved — while message
*content* travels as Python objects.

The ring buffer is also an RDMA-Write target (it implements
``rdma_write``), so fast-messaging clients genuinely deliver requests
through :meth:`QpEndpoint.post_write` on the verbs layer.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from ..sim.kernel import Simulator, any_of
from ..sim.resources import Container, Store
from .codec import MSG_HEADER_SIZE, message_size

#: The paper allocates a 256 KB ring buffer per connection pair (§V-B).
DEFAULT_RING_CAPACITY = 256 * 1024


class RingBufferFullError(Exception):
    """Raised when a non-blocking reservation does not fit."""


class RingBuffer:
    """One direction of a connection's message ring."""

    def __init__(
        self,
        sim: Simulator,
        capacity: int = DEFAULT_RING_CAPACITY,
        name: str = "ring",
    ):
        if capacity <= MSG_HEADER_SIZE:
            raise ValueError(f"capacity {capacity} too small")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        #: Free bytes between tail and head, as the *sender* sees them.
        self._free = Container(sim, capacity=float(capacity),
                               init=float(capacity))
        #: Delivered messages awaiting the receiver (message, footprint).
        self._inbox: Store = Store(sim)
        #: Reservations made but not yet deposited (sanity accounting).
        self._reserved_bytes = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.high_watermark = 0

    # -- sender side --------------------------------------------------------

    def reserve(self, message) -> Generator:
        """Claim ring space for ``message``; blocks while the ring is full.

        This models the sender checking the processed pointer before
        writing at the free pointer.
        """
        footprint = message_size(message)
        if footprint > self.capacity:
            raise ValueError(
                f"message of {footprint} B cannot fit a {self.capacity} B ring"
            )
        yield self._free.get(float(footprint))
        self._reserved_bytes += footprint
        used = self.capacity - int(self._free.level)
        if used > self.high_watermark:
            self.high_watermark = used

    def reserve_within(self, message, timeout_s: float) -> Generator:
        """Claim ring space, waiting at most ``timeout_s``.

        Raises :class:`RingBufferFullError` if the space is not granted in
        time — the bounded-wait alternative to :meth:`reserve` used by
        clients with a request deadline.  A timed-out claim is withdrawn
        (cancelled), so it cannot later swallow freed space or starve
        reservations queued behind it.
        """
        if timeout_s <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout_s}")
        footprint = message_size(message)
        if footprint > self.capacity:
            raise ValueError(
                f"message of {footprint} B cannot fit a {self.capacity} B ring"
            )
        get = self._free.get(float(footprint))
        if get.triggered:
            yield get
        else:
            yield any_of(self.sim, (get, self.sim.timeout(timeout_s)))
            if not get.triggered:
                get.cancel()
                raise RingBufferFullError(
                    f"no room for {footprint} B within "
                    f"{timeout_s * 1e6:.0f} us on {self.name}"
                )
        self._reserved_bytes += footprint
        used = self.capacity - int(self._free.level)
        if used > self.high_watermark:
            self.high_watermark = used

    def try_reserve(self, message) -> bool:
        """Non-blocking reservation; False when the ring lacks space.

        Used for droppable traffic (heartbeats): under congestion the
        sender skips the message instead of stalling, which is exactly the
        paper's "no heartbeat arrived because the server bandwidth is
        saturated" case.
        """
        footprint = message_size(message)
        if self._free.level < footprint:
            return False
        self._free.get(float(footprint))
        self._reserved_bytes += footprint
        used = self.capacity - int(self._free.level)
        if used > self.high_watermark:
            self.high_watermark = used
        return True

    def deposit(self, message) -> None:
        """The message has landed in ring memory (RDMA Write completed)."""
        footprint = message_size(message)
        if self._reserved_bytes < footprint:
            raise RingBufferFullError(
                f"deposit of {footprint} B without a reservation "
                f"({self._reserved_bytes} B reserved) on {self.name}"
            )
        self._reserved_bytes -= footprint
        self.messages_sent += 1
        self.bytes_sent += footprint
        self._inbox.put((message, footprint))

    # -- RDMA target protocol --------------------------------------------------

    def rdma_write(self, address: int, length: int, payload: Any,
                   now: float) -> None:
        """Verbs-layer entry point: the payload is the message object."""
        self.deposit(payload)

    def rdma_read(self, address: int, length: int, now: float) -> Any:
        raise NotImplementedError(
            "ring buffers are written one-sidedly, never read one-sidedly"
        )

    # -- receiver side -------------------------------------------------------

    def consume(self):
        """Event yielding the oldest message; frees its ring space.

        The space release models the receiver advancing the processed
        pointer and writing it back to the sender.
        """
        get = self._inbox.get()
        consumed = self.sim.event()

        def _on_message(event) -> None:
            message, footprint = event.value
            self.messages_received += 1
            self._free.put(float(footprint))
            consumed.succeed(message)

        if get.triggered:
            _on_message(get)
        else:
            get.add_callback(_on_message)
        return consumed

    def try_consume(self) -> Tuple[bool, Any]:
        """Non-blocking poll: (True, message) or (False, None)."""
        if not self._inbox.items:
            return False, None
        message, footprint = self._inbox.items.popleft()
        self.messages_received += 1
        self._free.put(float(footprint))
        return True, message

    # -- introspection -----------------------------------------------------------

    @property
    def pending_messages(self) -> int:
        return len(self._inbox.items)

    @property
    def free_bytes(self) -> int:
        return int(self._free.level)

    @property
    def used_bytes(self) -> int:
        return self.capacity - self.free_bytes
