"""Request/response message types with exact wire-size accounting.

The simulation moves Python objects, but every message knows the byte size
it would occupy in the ring buffer, following the paper's formats: a search
request carries one rectangle (four doubles); a search response returns the
matching rectangles (the paper returns "all overlapped rectangles").
Responses larger than a segment are split across ring-buffer messages with
CONT/END type flags (paper Fig 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..rtree.geometry import Rect

# Message type tags (the ring-buffer "type" field).
MSG_SEARCH = 1
MSG_INSERT = 2
MSG_DELETE = 3
MSG_RESPONSE_CONT = 4
MSG_RESPONSE_END = 5
MSG_HEARTBEAT = 6
# Key-value requests for the §VI framework extensions (B+tree, cuckoo).
MSG_KV_GET = 7
MSG_KV_PUT = 8
MSG_KV_DELETE = 9
MSG_KV_SCAN = 10
# Additional spatial operations.
MSG_NEAREST = 11
MSG_COUNT = 12
MSG_UPDATE = 13

#: Bytes of a rectangle: four doubles.
RECT_SIZE = 32
#: Request id (u64).
REQ_ID_SIZE = 8
#: Result entry: rectangle + data id.
RESULT_SIZE = RECT_SIZE + 8
#: Ring-buffer message header: size (u32) + type (u32).
MSG_HEADER_SIZE = 8
#: Maximum payload carried by one ring-buffer message; larger responses are
#: segmented with CONT/END (a fraction of the 256 KB ring so several
#: responses fit in flight).
MAX_SEGMENT_PAYLOAD = 8192


@dataclass(frozen=True)
class SearchRequest:
    req_id: int
    rect: Rect

    msg_type = MSG_SEARCH

    def payload_size(self) -> int:
        return REQ_ID_SIZE + RECT_SIZE


@dataclass(frozen=True)
class InsertRequest:
    req_id: int
    rect: Rect
    data_id: int

    msg_type = MSG_INSERT

    def payload_size(self) -> int:
        return REQ_ID_SIZE + RECT_SIZE + 8


@dataclass(frozen=True)
class DeleteRequest:
    req_id: int
    rect: Rect
    data_id: int

    msg_type = MSG_DELETE

    def payload_size(self) -> int:
        return REQ_ID_SIZE + RECT_SIZE + 8


@dataclass(frozen=True)
class ResponseSegment:
    """One ring-buffer message of a (possibly multi-segment) response."""

    req_id: int
    results: Tuple[Tuple[Rect, int], ...]
    last: bool  # END if True, CONT otherwise
    #: For insert/delete acknowledgements.
    ok: bool = True
    #: For count responses: the aggregate (no rectangles shipped).
    count: Optional[int] = None

    @property
    def msg_type(self) -> int:
        return MSG_RESPONSE_END if self.last else MSG_RESPONSE_CONT

    def payload_size(self) -> int:
        size = REQ_ID_SIZE + 1 + len(self.results) * RESULT_SIZE
        if self.count is not None:
            size += 4
        return size


@dataclass(frozen=True)
class UpdateRequest:
    """Move/resize one rectangle (the paper's "insert, update, delete and
    others"): atomically replaces ``old_rect`` with ``new_rect`` for
    ``data_id`` on the server."""

    req_id: int
    old_rect: Rect
    new_rect: Rect
    data_id: int

    msg_type = MSG_UPDATE

    def payload_size(self) -> int:
        return REQ_ID_SIZE + 2 * RECT_SIZE + 8


@dataclass(frozen=True)
class NearestRequest:
    """k-nearest-neighbour query around a point."""

    req_id: int
    x: float
    y: float
    k: int

    msg_type = MSG_NEAREST

    def payload_size(self) -> int:
        return REQ_ID_SIZE + 16 + 4

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class CountRequest:
    """Aggregate-only search: how many rectangles intersect?  The response
    carries a single integer instead of the matching rectangles — a
    bandwidth optimization for wide queries."""

    req_id: int
    rect: Rect

    msg_type = MSG_COUNT

    def payload_size(self) -> int:
        return REQ_ID_SIZE + RECT_SIZE


@dataclass(frozen=True)
class KvGetRequest:
    req_id: int
    key: int

    msg_type = MSG_KV_GET

    def payload_size(self) -> int:
        return REQ_ID_SIZE + 8


@dataclass(frozen=True)
class KvPutRequest:
    req_id: int
    key: int
    value: int
    #: Wire footprint of the value (the token itself is opaque).
    value_size: int = 32

    msg_type = MSG_KV_PUT

    def payload_size(self) -> int:
        return REQ_ID_SIZE + 8 + self.value_size


@dataclass(frozen=True)
class KvDeleteRequest:
    req_id: int
    key: int

    msg_type = MSG_KV_DELETE

    def payload_size(self) -> int:
        return REQ_ID_SIZE + 8


@dataclass(frozen=True)
class KvScanRequest:
    req_id: int
    lo: int
    hi: int
    max_results: Optional[int] = None

    msg_type = MSG_KV_SCAN

    def payload_size(self) -> int:
        return REQ_ID_SIZE + 8 + 8 + 4

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty scan range [{self.lo}, {self.hi}]")


@dataclass(frozen=True)
class Heartbeat:
    """Server CPU utilization piggybacked to clients every Inv (§IV-A).

    ``mut_seq`` optionally piggybacks the tree's mutation high-water
    mark as a client-cache invalidation hint (see
    :mod:`repro.client.node_cache`): a write storm then flushes stale
    upper-level views between searches without any extra round trips.
    ``None`` (the default) is the legacy wire format — the field is
    simply absent and the payload size is unchanged, so old senders and
    receivers interoperate bit-identically.
    """

    utilization: float
    seq: int = 0
    mut_seq: Optional[int] = None

    msg_type = MSG_HEARTBEAT

    def payload_size(self) -> int:
        size = 8 + 4  # f64 utilization + u32 sequence
        if self.mut_seq is not None:
            size += 8  # u64 mutation high-water mark (hint extension)
        return size


def message_size(message) -> int:
    """Total ring-buffer footprint: header + payload."""
    return MSG_HEADER_SIZE + message.payload_size()


def segment_results(
    req_id: int,
    results: List[Tuple[Rect, int]],
    max_payload: int = MAX_SEGMENT_PAYLOAD,
    ok: bool = True,
) -> List[ResponseSegment]:
    """Split a result set into CONT segments ending with one END segment."""
    fixed = REQ_ID_SIZE + 1
    per_segment = max(1, (max_payload - fixed) // RESULT_SIZE)
    if not results:
        return [ResponseSegment(req_id, (), last=True, ok=ok)]
    segments: List[ResponseSegment] = []
    for start in range(0, len(results), per_segment):
        chunk = tuple(results[start:start + per_segment])
        segments.append(
            ResponseSegment(req_id, chunk, last=False, ok=ok)
        )
    last = segments[-1]
    segments[-1] = ResponseSegment(req_id, last.results, last=True, ok=ok)
    return segments


def reassemble(segments: List[ResponseSegment]) -> List[Tuple[Rect, int]]:
    """Concatenate CONT...END segments back into the full result list."""
    if not segments:
        raise ValueError("no segments to reassemble")
    if not segments[-1].last:
        raise ValueError("last segment is not flagged END")
    for seg in segments[:-1]:
        if seg.last:
            raise ValueError("END segment in the middle of a response")
    req_id = segments[0].req_id
    results: List[Tuple[Rect, int]] = []
    for seg in segments:
        if seg.req_id != req_id:
            raise ValueError(
                f"mixed req_ids {req_id} and {seg.req_id} in one response"
            )
        results.extend(seg.results)
    return results
