"""CPU models: a pool of cores and an OS-scheduler oversubscription model.

Two distinct things are modelled here:

* :class:`CorePool` — ``n`` identical cores executing work items FCFS, with
  time-weighted utilization accounting.  All *useful* work (R-tree traversal,
  TCP kernel processing, request parsing) runs through a pool.
* :class:`SchedulerModel` — the round-robin OS thread scheduler that the
  paper's Fig 7 experiment stresses.  With one busy-polling server thread per
  RDMA connection, a message arriving for a descheduled thread waits until
  the OS runs that thread again; with many more threads than cores this
  wake-up delay dominates and search latency grows quadratically, which is
  exactly what the event-based redesign fixes.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from ..sim.kernel import Simulator
from ..sim.monitor import UtilizationTracker
from ..sim.resources import Resource

#: Default scheduling quantum, seconds.  Linux CFS granularity is in the
#: 0.75-6 ms range; the effective reschedule interval for pinned server
#: threads is far smaller.  The value is calibrated against Fig 7 (see
#: bench_fig07) and only its order of magnitude matters.
DEFAULT_QUANTUM = 12e-6

#: How strongly always-runnable polling threads slow down the threads doing
#: useful work (fraction of the oversubscription ratio showing up as service
#: inflation).  Calibrated so the polling fast-messaging baseline loses
#: ~3x throughput at 256 connections (paper Figs 7/10).
POLLING_INTERFERENCE = 0.1

#: Cost of a poll-loop iteration noticing a message when the thread is
#: already on a core (cache-line probe granularity).
POLL_GRANULARITY = 0.3e-6

#: Cost of waking a blocked thread through an event channel (interrupt +
#: context switch).
EVENT_WAKEUP_COST = 2.0e-6


class CorePool:
    """``capacity`` cores with a FIFO run queue and utilization tracking."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "cpu"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._cores = Resource(sim, capacity=capacity)
        self.tracker = UtilizationTracker(sim, capacity=capacity)
        self.total_work_seconds = 0.0

    @property
    def busy_cores(self) -> int:
        return self._cores.count

    @property
    def run_queue_length(self) -> int:
        return self._cores.queue_length

    def execute(self, cost: float) -> Generator:
        """Run ``cost`` seconds of work on one core (process generator).

        Usage: ``yield sim.process(pool.execute(cost))`` or delegate with
        ``yield from pool.execute(cost)`` inside another process.
        """
        if cost < 0:
            raise ValueError(f"negative work cost {cost}")
        req = self._cores.request()
        try:
            yield req
            self.tracker.adjust(+1)
            try:
                yield self.sim.timeout(cost)
                self.total_work_seconds += cost
            finally:
                self.tracker.adjust(-1)
        finally:
            req.release()

    def utilization(self) -> float:
        """Busy fraction since t=0 (for end-of-run reporting)."""
        return self.tracker.utilization_since_start()

    def window_utilization(self, reset: bool = True) -> float:
        """Busy fraction since the previous heartbeat window."""
        return self.tracker.window_utilization(reset=reset)


class SchedulerModel:
    """Wake-up latency of server threads under the OS scheduler.

    ``polling_wakeup_delay`` answers: a request message has just landed in
    the ring buffer of connection *i*; how long until the busy-polling thread
    serving that connection notices it?

    * If threads <= cores, every thread is always on a core: the delay is
      one poll-loop iteration.
    * If threads > cores, the thread must wait for its next round-robin
      slot.  The number of slots ahead of it grows with the oversubscription
      ratio, and the time per slot also grows because each scheduled
      polling thread burns its whole quantum whether or not it has work.
      The expected delay therefore scales with the *square* of the
      oversubscription ratio — the empirical quadratic of the paper's
      Fig 7.  We sample uniformly in ``[0, (n/c)^2 * quantum]``.

    ``event_wakeup_delay`` is the blocked-thread path: a constant interrupt +
    context-switch cost, independent of the number of connections.
    """

    def __init__(
        self,
        cores: int,
        quantum: float = DEFAULT_QUANTUM,
        rng: Optional[random.Random] = None,
    ):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self.cores = cores
        self.quantum = quantum
        self.rng = rng or random.Random(0)

    def oversubscription(self, n_threads: int) -> float:
        """Ratio of runnable threads to cores, >= 1."""
        return max(1.0, n_threads / self.cores)

    def polling_wakeup_delay(self, n_threads: int) -> float:
        """Sampled delay until a polling thread notices its message."""
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        ratio = self.oversubscription(n_threads)
        if ratio <= 1.0:
            return POLL_GRANULARITY
        return POLL_GRANULARITY + self.rng.uniform(0.0, ratio * ratio * self.quantum)

    def mean_polling_wakeup_delay(self, n_threads: int) -> float:
        """Expected value of :meth:`polling_wakeup_delay` (for tests)."""
        ratio = self.oversubscription(n_threads)
        if ratio <= 1.0:
            return POLL_GRANULARITY
        return POLL_GRANULARITY + ratio * ratio * self.quantum / 2.0

    def event_wakeup_delay(self) -> float:
        """Delay to wake a thread blocked on a completion channel."""
        return EVENT_WAKEUP_COST

    def service_inflation(self, n_threads: int) -> float:
        """CPU-time inflation of useful work under busy-poll interference.

        Polling threads never yield, so threads executing R-tree work only
        get a share of their core; empirically a fraction
        ``POLLING_INTERFERENCE`` of the oversubscription ratio shows up as
        lost service capacity.  Returns 1.0 when threads <= cores.
        """
        ratio = self.oversubscription(n_threads)
        return 1.0 + POLLING_INTERFERENCE * (ratio - 1.0)
