"""Registered-memory model: regions, rkeys and the chunk allocator.

The paper's RDMA-offloading design registers one large buffer for the whole
R-tree once, divides it into node-sized chunks, and lets clients address any
node as ``base + chunk_id * chunk_size`` (§III-B).  This module provides
exactly that: a :class:`MemoryRegion` registry handing out rkeys, and a
:class:`ChunkAllocator` mapping chunk ids to addresses with a free list so
node splits/frees reuse space.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class MemoryError_(Exception):
    """Raised on invalid registered-memory operations."""


class MemoryRegion:
    """A contiguous registered region addressable by remote reads/writes."""

    def __init__(self, base: int, size: int, rkey: int, name: str = ""):
        if size <= 0:
            raise ValueError(f"region size must be > 0, got {size}")
        self.base = base
        self.size = size
        self.rkey = rkey
        self.name = name

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """Whether ``[address, address+length)`` lies inside the region."""
        return self.base <= address and address + length <= self.end


class MemoryRegistry:
    """Per-host registry of registered memory regions (the NIC's MTT)."""

    def __init__(self) -> None:
        self._regions: Dict[int, MemoryRegion] = {}
        self._targets: Dict[int, object] = {}
        self._next_rkey = 1
        self._next_base = 0x10000000  # arbitrary simulated VA space start

    def register(self, size: int, name: str = "") -> MemoryRegion:
        """Register ``size`` bytes; returns the region with a fresh rkey."""
        region = MemoryRegion(self._next_base, size, self._next_rkey, name)
        self._regions[region.rkey] = region
        self._next_rkey += 1
        # Keep regions disjoint so address-containment checks are meaningful.
        self._next_base += size + 4096
        return region

    def deregister(self, rkey: int) -> None:
        if rkey not in self._regions:
            raise MemoryError_(f"rkey {rkey} is not registered")
        del self._regions[rkey]
        self._targets.pop(rkey, None)

    def bind(self, rkey: int, target: object) -> None:
        """Attach the object that services one-sided accesses to ``rkey``.

        The target must implement ``rdma_read(address, length, now)`` and/or
        ``rdma_write(address, length, payload, now)``.
        """
        self.lookup(rkey)  # validates existence
        self._targets[rkey] = target

    def target_of(self, rkey: int) -> Optional[object]:
        """The bound target for ``rkey`` or None."""
        return self._targets.get(rkey)

    def lookup(self, rkey: int) -> MemoryRegion:
        region = self._regions.get(rkey)
        if region is None:
            raise MemoryError_(f"rkey {rkey} is not registered")
        return region

    def validate(self, rkey: int, address: int, length: int) -> MemoryRegion:
        """Check an incoming one-sided access; raises on protection fault."""
        region = self.lookup(rkey)
        if not region.contains(address, length):
            raise MemoryError_(
                f"access [{address:#x}, +{length}) outside region "
                f"[{region.base:#x}, +{region.size}) rkey={rkey}"
            )
        return region


class ChunkAllocator:
    """Fixed-size chunk allocator over one registered region.

    Chunk ids are stable for the lifetime of a node, so a client that knows
    ``(region.base, chunk_size, chunk_id)`` can compute the node's address
    without asking the server — the basis of RDMA offloading.
    """

    def __init__(self, region: MemoryRegion, chunk_size: int):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
        if chunk_size > region.size:
            raise ValueError("chunk_size larger than the region")
        self.region = region
        self.chunk_size = chunk_size
        self.capacity = region.size // chunk_size
        self._next_fresh = 0
        self._free: List[int] = []
        self._allocated: set = set()

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def alloc(self) -> int:
        """Allocate a chunk; returns its chunk id."""
        if self._free:
            chunk_id = self._free.pop()
        elif self._next_fresh < self.capacity:
            chunk_id = self._next_fresh
            self._next_fresh += 1
        else:
            raise MemoryError_(
                f"region {self.region.name!r} out of chunks "
                f"(capacity {self.capacity})"
            )
        self._allocated.add(chunk_id)
        return chunk_id

    def free(self, chunk_id: int) -> None:
        if chunk_id not in self._allocated:
            raise MemoryError_(f"chunk {chunk_id} is not allocated")
        self._allocated.remove(chunk_id)
        self._free.append(chunk_id)

    def address_of(self, chunk_id: int) -> int:
        """Virtual address of a chunk (valid whether or not allocated —
        a remote reader cannot know the server-side free list)."""
        if not 0 <= chunk_id < self.capacity:
            raise MemoryError_(
                f"chunk id {chunk_id} outside [0, {self.capacity})"
            )
        return self.region.base + chunk_id * self.chunk_size

    def chunk_of(self, address: int) -> int:
        """Inverse of :meth:`address_of` for aligned addresses."""
        offset = address - self.region.base
        if offset < 0 or offset >= self.capacity * self.chunk_size:
            raise MemoryError_(f"address {address:#x} outside chunk area")
        if offset % self.chunk_size != 0:
            raise MemoryError_(f"address {address:#x} not chunk-aligned")
        return offset // self.chunk_size
