"""Hardware models: cores, OS scheduler, NIC, registered memory."""

from .cpu import (
    DEFAULT_QUANTUM,
    EVENT_WAKEUP_COST,
    POLL_GRANULARITY,
    CorePool,
    SchedulerModel,
)
from .host import SERVER_CORES, Host
from .memory import ChunkAllocator, MemoryRegion, MemoryRegistry, MemoryError_
from .nic import DEFAULT_MAX_OUTSTANDING_READS, Nic

__all__ = [
    "DEFAULT_QUANTUM",
    "EVENT_WAKEUP_COST",
    "POLL_GRANULARITY",
    "CorePool",
    "SchedulerModel",
    "SERVER_CORES",
    "Host",
    "ChunkAllocator",
    "MemoryRegion",
    "MemoryRegistry",
    "MemoryError_",
    "DEFAULT_MAX_OUTSTANDING_READS",
    "Nic",
]
