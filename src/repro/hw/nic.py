"""NIC model: per-operation processing and outstanding-request limits.

The NIC sits between a host and its fabric.  For this reproduction only two
properties matter beyond the link itself (which lives in ``repro.net``):

* per-WQE processing time (it bounds small-message rate), and
* the cap on outstanding one-sided reads per QP (ConnectX-class hardware
  allows 16; the multi-issue traversal must respect it).
"""

from __future__ import annotations

from typing import Generator

from ..net.fabric import FabricProfile
from ..sim.kernel import Simulator
from ..sim.resources import Resource

#: Outstanding RDMA Reads per QP (IB spec default for ConnectX NICs).
DEFAULT_MAX_OUTSTANDING_READS = 16


class Nic:
    """One host's network card."""

    def __init__(
        self,
        sim: Simulator,
        profile: FabricProfile,
        name: str = "nic",
        max_outstanding_reads: int = DEFAULT_MAX_OUTSTANDING_READS,
    ):
        if max_outstanding_reads < 1:
            raise ValueError(
                f"max_outstanding_reads must be >= 1, got {max_outstanding_reads}"
            )
        self.sim = sim
        self.profile = profile
        self.name = name
        self.max_outstanding_reads = max_outstanding_reads
        self._read_slots = Resource(sim, capacity=max_outstanding_reads)
        self.ops_processed = 0
        #: Optional fault injector (see repro.faults); when set, one-sided
        #: reads served by this NIC consult it for a per-read stall.
        self.fault_injector = None

    def read_stall_s(self, host_name: str) -> float:
        """Extra responder-side delay for one RDMA Read (0.0 normally)."""
        injector = self.fault_injector
        if injector is None:
            return 0.0
        return injector.nic_read_stall(host_name)

    def process_wqe(self) -> Generator:
        """Occupy the NIC pipeline for one work-queue element."""
        self.ops_processed += 1
        yield self.sim.timeout(self.profile.rdma_nic_processing_s)

    def acquire_read_slot(self):
        """Claim an outstanding-read slot (request event; release() it)."""
        return self._read_slots.request()

    @property
    def outstanding_reads(self) -> int:
        return self._read_slots.count
