"""A compute node: cores + NIC + registered memory.

The paper's testbed nodes are dual-socket 14-core Broadwells; the server
uses all 28 cores, client processes are lightweight.
"""

from __future__ import annotations

from ..net.fabric import FabricProfile
from ..sim.kernel import Simulator
from .cpu import CorePool, SchedulerModel
from .memory import MemoryRegistry
from .nic import Nic

#: Cores on the paper's server node (2 x 14-core Xeon E5-2680 v4).
SERVER_CORES = 28


class Host:
    """One simulated machine."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        profile: FabricProfile,
        cores: int = SERVER_CORES,
        scheduler: SchedulerModel = None,
    ):
        self.sim = sim
        self.name = name
        self.profile = profile
        self.cpu = CorePool(sim, capacity=cores, name=f"{name}.cpu")
        self.nic = Nic(sim, profile, name=f"{name}.nic")
        self.memory = MemoryRegistry()
        self.scheduler = scheduler or SchedulerModel(cores)

    def __repr__(self) -> str:
        return f"<Host {self.name} cores={self.cpu.capacity}>"
