"""Request-rectangle generators (paper §V-B).

The paper's search workloads are parameterized by a *scale*: the edges of a
requested rectangle are drawn uniformly from ``(0, scale]`` and the
location uniformly such that the rectangle stays inside the unit square.

* scale ``0.00001`` — tiny queries, CPU-intensive ("nearby restaurants");
* scale ``0.01`` — large queries, bandwidth-intensive ("hurricane area");
* power law — scale drawn from ``f(t) ∝ t^-0.99`` over ``(0.00001, 0.01]``,
  skewing heavily toward small scopes (the realistic mix).
"""

from __future__ import annotations

import random

from ..rtree.geometry import Rect

SCALE_SMALL = 1e-5
SCALE_LARGE = 1e-2
POWER_LAW_ALPHA = 0.99


def uniform_scale_rect(rng: random.Random, scale: float) -> Rect:
    """A rectangle with edges in ``(0, scale]`` placed inside [0,1]^2."""
    if not 0 < scale <= 1:
        raise ValueError(f"scale {scale} outside (0, 1]")
    w = rng.uniform(0.0, scale)
    h = rng.uniform(0.0, scale)
    x = rng.uniform(0.0, 1.0 - w)
    y = rng.uniform(0.0, 1.0 - h)
    return Rect(x, y, x + w, y + h)


def power_law_sample(
    rng: random.Random,
    t_min: float = SCALE_SMALL,
    t_max: float = SCALE_LARGE,
    alpha: float = POWER_LAW_ALPHA,
) -> float:
    """Draw from the truncated power law ``f(t) ∝ t^-alpha`` on (t_min, t_max].

    Uses inverse-CDF sampling; ``alpha != 1`` is assumed (the paper uses
    0.99).
    """
    if not 0 < t_min < t_max:
        raise ValueError(f"need 0 < t_min < t_max, got {t_min}, {t_max}")
    if alpha == 1.0:
        raise ValueError("alpha=1 needs the logarithmic form; use 0.99")
    u = rng.random()
    exponent = 1.0 - alpha
    lo = t_min ** exponent
    hi = t_max ** exponent
    return (lo + u * (hi - lo)) ** (1.0 / exponent)


class FixedScale:
    """Every request uses the same scale upper bound."""

    def __init__(self, scale: float):
        if not 0 < scale <= 1:
            raise ValueError(f"scale {scale} outside (0, 1]")
        self.scale = scale

    def next_rect(self, rng: random.Random) -> Rect:
        return uniform_scale_rect(rng, self.scale)

    def __repr__(self) -> str:
        return f"FixedScale({self.scale:g})"


class PowerLawScale:
    """The paper's skewed scale distribution f(t) ∝ t^-0.99."""

    def __init__(
        self,
        t_min: float = SCALE_SMALL,
        t_max: float = SCALE_LARGE,
        alpha: float = POWER_LAW_ALPHA,
    ):
        if not 0 < t_min < t_max:
            raise ValueError(f"need 0 < t_min < t_max, got {t_min}, {t_max}")
        self.t_min = t_min
        self.t_max = t_max
        self.alpha = alpha

    def next_rect(self, rng: random.Random) -> Rect:
        scale = power_law_sample(rng, self.t_min, self.t_max, self.alpha)
        return uniform_scale_rect(rng, scale)

    def __repr__(self) -> str:
        return f"PowerLawScale({self.t_min:g}, {self.t_max:g})"


def scale_generator(spec: str):
    """Parse the paper's scale labels.

    Accepts a plain number ('0.00001', '0.01'), 'powerlaw' (the paper's
    bounds), or 'powerlaw:<tmin>:<tmax>' for rescaled runs (the benchmark
    harness shrinks the dataset and rescales query sizes to preserve
    result-set cardinalities).
    """
    if spec == "powerlaw":
        return PowerLawScale()
    if spec.startswith("powerlaw:"):
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(f"bad power-law spec {spec!r}")
        return PowerLawScale(t_min=float(parts[1]), t_max=float(parts[2]))
    return FixedScale(float(spec))
