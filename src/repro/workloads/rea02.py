"""Synthetic stand-in for the *rea02* benchmark dataset (paper §V-C).

The real rea02 file (Beckmann & Seeger's multidimensional index benchmark)
contains 1,888,012 rectangles — street segments of California — and a query
file tuned so each query returns 50-150 rectangles (average ~100).  The
file is not redistributable/offline, so this module synthesizes a dataset
with the structural properties the paper states it relies on:

* rectangles are grouped into **sub-regions of roughly 20,000 objects**;
* sub-regions are *inserted in random order*;
* inside a sub-region, rectangles go in **row order, west to east**, rows
  **north to south** — i.e. the insertion order is strongly spatially
  correlated within a region and uncorrelated across regions;
* rectangles are thin street-segment-like boxes (alternating horizontal /
  vertical elongation);
* queries are sized from the local density so the expected result count is
  uniform in [50, 150].

DESIGN.md records this substitution.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from ..rtree.geometry import Rect

REA02_SIZE = 1_888_012
SUBREGION_OBJECTS = 20_000
QUERY_RESULTS_MIN = 50
QUERY_RESULTS_MAX = 150


def generate_rea02(
    n: int = REA02_SIZE,
    subregion_objects: int = SUBREGION_OBJECTS,
    seed: int = 0,
) -> List[Tuple[Rect, int]]:
    """Synthesize the dataset **in its insertion order**.

    Returns ``(rect, data_id)`` pairs; data ids number the insertion order.
    """
    if n <= 0:
        raise ValueError(f"dataset size must be > 0, got {n}")
    if subregion_objects < 4:
        raise ValueError("subregion_objects must be >= 4")
    rng = random.Random(seed)
    n_regions = max(1, math.ceil(n / subregion_objects))
    # Tile the unit square completely: split the regions into rows, each
    # row spanning the full width, so no part of the space is empty.
    n_rows = max(1, round(math.sqrt(n_regions)))
    base = n_regions // n_rows
    extras = n_regions % n_rows
    row_counts = [base + (1 if r < extras else 0) for r in range(n_rows)]
    region_h = 1.0 / n_rows
    region_geoms = []  # (x0, y0, width, height) per region, in order
    for row, count_in_row in enumerate(row_counts):
        width = 1.0 / count_in_row
        for col in range(count_in_row):
            region_geoms.append((col * width, row * region_h, width,
                                 region_h))

    # Build each sub-region's rectangles in row-major (west->east,
    # north->south) order, then shuffle the *regions*.
    regions: List[List[Rect]] = []
    remaining = n
    for region_index in range(n_regions):
        count = min(subregion_objects, remaining)
        remaining -= count
        x0, y0, region_w, region_h = region_geoms[region_index]
        rows = max(1, int(math.sqrt(count)))
        cols = math.ceil(count / rows)
        cell_w = region_w / cols
        cell_h = region_h / rows
        rects: List[Rect] = []
        made = 0
        # north (large y) to south: iterate rows top-down.
        for row in range(rows - 1, -1, -1):
            if made >= count:
                break
            for col in range(cols):
                if made >= count:
                    break
                cx = x0 + (col + rng.uniform(0.3, 0.7)) * cell_w
                cy = y0 + (row + rng.uniform(0.3, 0.7)) * cell_h
                # Street segments: thin, elongated along one axis.
                if (row + col) % 2 == 0:
                    w = cell_w * rng.uniform(0.5, 0.9)
                    h = cell_h * rng.uniform(0.02, 0.10)
                else:
                    w = cell_w * rng.uniform(0.02, 0.10)
                    h = cell_h * rng.uniform(0.5, 0.9)
                minx = min(max(cx - w / 2, 0.0), 1.0 - w)
                miny = min(max(cy - h / 2, 0.0), 1.0 - h)
                rects.append(Rect(minx, miny, minx + w, miny + h))
                made += 1
        regions.append(rects)

    rng.shuffle(regions)
    items: List[Tuple[Rect, int]] = []
    data_id = 0
    for rects in regions:
        for rect in rects:
            items.append((rect, data_id))
            data_id += 1
    return items


def generate_rea02_queries(
    n_queries: int,
    dataset_size: int = REA02_SIZE,
    seed: int = 1,
) -> List[Rect]:
    """Queries whose expected result count is uniform in [50, 150].

    The expected number of intersections of a ``s x s`` query with a
    uniform density ``d = dataset_size`` (objects per unit area) is about
    ``d * s^2`` for small objects, so ``s = sqrt(target / d)``.
    """
    if n_queries < 0:
        raise ValueError(f"negative query count {n_queries}")
    rng = random.Random(seed)
    queries = []
    for _ in range(n_queries):
        target = rng.uniform(QUERY_RESULTS_MIN, QUERY_RESULTS_MAX)
        s = math.sqrt(target / dataset_size)
        x = rng.uniform(0.0, 1.0 - s)
        y = rng.uniform(0.0, 1.0 - s)
        queries.append(Rect(x, y, x + s, y + s))
    return queries
