"""Dataset generators: the uniform base tree and skewed insert locations.

* The paper pre-builds its R-tree with 2 million rectangles whose edges
  scale randomly in ``(0, 0.0001]`` (§V-B).
* Insert requests in the hybrid workloads pick *locations* from a power law
  over ``(0.5, 1.0]`` reflected into the four corners — "skewed insertion
  that mimics geographical data updates happening more often in city
  areas".
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..rtree.geometry import Rect
from .scales import power_law_sample

#: The paper's base-tree edge bound.
DATASET_MAX_EDGE = 1e-4
#: The paper's base-tree cardinality.
PAPER_DATASET_SIZE = 2_000_000


def uniform_dataset(
    n: int,
    max_edge: float = DATASET_MAX_EDGE,
    seed: int = 0,
) -> List[Tuple[Rect, int]]:
    """``n`` rectangles with edges in ``(0, max_edge]``, uniform in [0,1]^2."""
    if n < 0:
        raise ValueError(f"negative dataset size {n}")
    rng = random.Random(seed)
    items = []
    for i in range(n):
        w = rng.uniform(0.0, max_edge)
        h = rng.uniform(0.0, max_edge)
        x = rng.uniform(0.0, 1.0 - w)
        y = rng.uniform(0.0, 1.0 - h)
        items.append((Rect(x, y, x + w, y + h), i))
    return items


def skewed_insert_center(rng: random.Random) -> Tuple[float, float]:
    """The paper's corner-skewed insert location (§V-B).

    x and y are drawn from ``f(t) ∝ t^-0.99`` on ``(0.5, 1.0]`` and the
    point ``(x, y)`` is then reflected uniformly into one of the four
    corners: (x,y), (1-x,y), (x,1-y), (1-x,1-y).
    """
    x = power_law_sample(rng, 0.5, 1.0)
    y = power_law_sample(rng, 0.5, 1.0)
    corner = rng.randrange(4)
    if corner in (1, 3):
        x = 1.0 - x
    if corner in (2, 3):
        y = 1.0 - y
    return x, y


def skewed_insert_rect(
    rng: random.Random, scale: float, max_edge_cap: float = 1.0
) -> Rect:
    """An insert rectangle: skewed centre, edges in ``(0, scale]``."""
    cx, cy = skewed_insert_center(rng)
    w = min(rng.uniform(0.0, scale), max_edge_cap)
    h = min(rng.uniform(0.0, scale), max_edge_cap)
    # Clamp into the unit square (centres can sit near the border).
    minx = min(max(cx - w / 2, 0.0), 1.0 - w)
    miny = min(max(cy - h / 2, 0.0), 1.0 - h)
    return Rect(minx, miny, minx + w, miny + h)
