"""Workload mixes: the request streams each simulated client executes.

The paper's evaluations use three mixes:

* 100% search at a given scale (Figs 10/11);
* 90% search + 10% insert, inserts at corner-skewed locations (Figs 12/13);
* rea02 queries (Fig 14).
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from ..client.base import (
    OP_COUNT,
    OP_DELETE,
    OP_INSERT,
    OP_NEAREST,
    OP_SEARCH,
    Request,
)
from ..rtree.geometry import Rect
from .datasets import skewed_insert_rect
from .scales import scale_generator

#: Inserted rectangles get ids far above any dataset id.
INSERT_ID_BASE = 1 << 40


def search_only(
    rng: random.Random, scale_gen, n_requests: int
) -> List[Request]:
    """The 100%-search workload."""
    return [
        Request(OP_SEARCH, scale_gen.next_rect(rng))
        for _ in range(n_requests)
    ]


def skewed_search_only(
    rng: random.Random, scale_gen, hotspots, n_requests: int
) -> List[Request]:
    """100% search with Zipf-hotspot query centres.

    The skew regime of the paper's intro ("further aggravated by skew
    access patterns in real workloads"): a few regions absorb most of the
    load, which on a sharded plane melts the shard owning them — the
    workload the rebalance controller exists for.
    """
    return [
        Request(OP_SEARCH, hotspots.next_rect(rng, scale_gen))
        for _ in range(n_requests)
    ]


def search_insert_mix(
    rng: random.Random,
    scale_gen,
    n_requests: int,
    client_id: int,
    insert_fraction: float = 0.1,
) -> List[Request]:
    """The hybrid workload: 90% search, 10% skewed-location insert.

    Per the paper, insert rectangles use the same scale distribution as
    the searches, but their locations follow the corner power law.
    """
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError(f"insert_fraction {insert_fraction} outside [0, 1]")
    requests: List[Request] = []
    next_insert_id = INSERT_ID_BASE + (client_id << 24)
    for _ in range(n_requests):
        if rng.random() < insert_fraction:
            template = scale_gen.next_rect(rng)
            scale = max(template.width, template.height, 1e-9)
            rect = skewed_insert_rect(rng, scale)
            requests.append(Request(OP_INSERT, rect, data_id=next_insert_id))
            next_insert_id += 1
        else:
            requests.append(Request(OP_SEARCH, scale_gen.next_rect(rng)))
    return requests


def churn_mix(
    rng: random.Random,
    scale_gen,
    n_requests: int,
    client_id: int,
    insert_fraction: float = 0.1,
    delete_fraction: float = 0.1,
) -> List[Request]:
    """Search/insert/delete churn: deletes target this client's own
    earlier inserts (so they are guaranteed to exist at execution time on
    a synchronous client), keeping the tree size roughly stable."""
    if insert_fraction < 0 or delete_fraction < 0 or (
        insert_fraction + delete_fraction > 1.0
    ):
        raise ValueError(
            f"bad fractions insert={insert_fraction} delete={delete_fraction}"
        )
    from .datasets import skewed_insert_rect

    requests: List[Request] = []
    next_insert_id = INSERT_ID_BASE + (client_id << 24)
    live: List[Request] = []  # this client's not-yet-deleted inserts
    for _ in range(n_requests):
        roll = rng.random()
        if roll < insert_fraction:
            template = scale_gen.next_rect(rng)
            scale = max(template.width, template.height, 1e-9)
            rect = skewed_insert_rect(rng, scale)
            request = Request(OP_INSERT, rect, data_id=next_insert_id)
            next_insert_id += 1
            live.append(request)
            requests.append(request)
        elif roll < insert_fraction + delete_fraction and live:
            victim = live.pop(rng.randrange(len(live)))
            requests.append(
                Request(OP_DELETE, victim.rect, data_id=victim.data_id)
            )
        else:
            requests.append(Request(OP_SEARCH, scale_gen.next_rect(rng)))
    return requests


def skewed_hybrid_mix(
    rng: random.Random,
    scale_gen,
    n_requests: int,
    client_id: int,
    hotspots,
    insert_fraction: float = 0.1,
) -> List[Request]:
    """Hybrid mix whose *searches* also cluster on Zipf hotspots.

    The paper's intro: bottlenecks are "further aggravated by skew access
    patterns in real workloads".  Searches here pile onto the same few
    regions, colliding with the corner-skewed insert stream — which shows
    up as lock contention on the server path and torn-read retries on the
    offload path.
    """
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError(f"insert_fraction {insert_fraction} outside [0, 1]")
    from .datasets import skewed_insert_rect

    requests: List[Request] = []
    next_insert_id = INSERT_ID_BASE + (client_id << 24)
    for _ in range(n_requests):
        if rng.random() < insert_fraction:
            template = scale_gen.next_rect(rng)
            scale = max(template.width, template.height, 1e-9)
            rect = skewed_insert_rect(rng, scale)
            requests.append(Request(OP_INSERT, rect, data_id=next_insert_id))
            next_insert_id += 1
        else:
            requests.append(
                Request(OP_SEARCH, hotspots.next_rect(rng, scale_gen))
            )
    return requests


def mixed_read_mix(
    rng: random.Random,
    scale_gen,
    n_requests: int,
    count_fraction: float = 0.15,
    nearest_fraction: float = 0.15,
    k: int = 5,
) -> List[Request]:
    """Read-only mix of range searches, window counts and kNN queries.

    Read-only by construction so a bulk-loaded single tree stays an exact
    oracle for the whole run — the verification workload of
    ``repro shard`` and the sharded router tests.
    """
    requests: List[Request] = []
    for _ in range(n_requests):
        roll = rng.random()
        rect = scale_gen.next_rect(rng)
        if roll < count_fraction:
            requests.append(Request(OP_COUNT, rect))
        elif roll < count_fraction + nearest_fraction:
            requests.append(Request(OP_NEAREST, rect, k=k))
        else:
            requests.append(Request(OP_SEARCH, rect))
    return requests


def query_stream(queries: Sequence[Rect], rng: random.Random,
                 n_requests: int) -> List[Request]:
    """Sample ``n_requests`` searches from a fixed query set (rea02)."""
    if not queries:
        raise ValueError("empty query set")
    return [
        Request(OP_SEARCH, queries[rng.randrange(len(queries))])
        for _ in range(n_requests)
    ]


def batch_runs(requests: Sequence[Request], batch_size: int):
    """Group consecutive searches into batches of up to ``batch_size``.

    Yields request groups preserving program order: runs of
    ``OP_SEARCH`` are chunked into batch-sized groups for the batched
    read path; every other op rides alone, so writes (and the reads
    after them) keep their ordering relative to the searches around
    them — a batch never spans a write.
    """
    if batch_size < 2:
        for request in requests:
            yield [request]
        return
    run: List[Request] = []
    for request in requests:
        if request.op == OP_SEARCH:
            run.append(request)
            if len(run) == batch_size:
                yield run
                run = []
        else:
            if run:
                yield run
                run = []
            yield [request]
    if run:
        yield run


WorkloadFn = Callable[[int, random.Random], List[Request]]


def make_workload(
    kind: str,
    scale_spec: str = "0.00001",
    n_requests: int = 1000,
    insert_fraction: float = 0.1,
    queries: Sequence[Rect] = (),
) -> WorkloadFn:
    """Build a per-client workload factory.

    ``kind`` is one of ``search`` (100% search), ``hybrid`` (90/10) or
    ``queries`` (fixed query set).  The returned callable takes
    ``(client_id, rng)`` and produces that client's request list.
    """
    if kind == "search":
        gen = scale_generator(scale_spec)
        return lambda client_id, rng: search_only(rng, gen, n_requests)
    if kind == "search-skewed":
        from .skew import HotspotQueries
        gen = scale_generator(scale_spec)
        hotspots = HotspotQueries(seed=0)  # shared across all clients
        return lambda client_id, rng: skewed_search_only(
            rng, gen, hotspots, n_requests
        )
    if kind == "hybrid":
        gen = scale_generator(scale_spec)
        return lambda client_id, rng: search_insert_mix(
            rng, gen, n_requests, client_id, insert_fraction
        )
    if kind == "churn":
        gen = scale_generator(scale_spec)
        return lambda client_id, rng: churn_mix(
            rng, gen, n_requests, client_id, insert_fraction,
            delete_fraction=insert_fraction,
        )
    if kind == "hybrid-skewed":
        from .skew import HotspotQueries
        gen = scale_generator(scale_spec)
        hotspots = HotspotQueries(seed=0)  # shared across all clients
        return lambda client_id, rng: skewed_hybrid_mix(
            rng, gen, n_requests, client_id, hotspots, insert_fraction
        )
    if kind == "mixed":
        gen = scale_generator(scale_spec)
        return lambda client_id, rng: mixed_read_mix(rng, gen, n_requests)
    if kind == "queries":
        frozen = list(queries)
        return lambda client_id, rng: query_stream(frozen, rng, n_requests)
    raise ValueError(f"unknown workload kind {kind!r}")
