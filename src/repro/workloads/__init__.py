"""Workload and dataset generators for the paper's experiments."""

from .datasets import (
    DATASET_MAX_EDGE,
    PAPER_DATASET_SIZE,
    skewed_insert_center,
    skewed_insert_rect,
    uniform_dataset,
)
from .mixes import (
    INSERT_ID_BASE,
    churn_mix,
    make_workload,
    query_stream,
    search_insert_mix,
    search_only,
    skewed_hybrid_mix,
)
from .skew import (
    HotspotQueries,
    ZipfSampler,
    zipf_sample,
    zipf_weights,
)
from .rea02 import (
    REA02_SIZE,
    SUBREGION_OBJECTS,
    generate_rea02,
    generate_rea02_queries,
)
from .scales import (
    POWER_LAW_ALPHA,
    SCALE_LARGE,
    SCALE_SMALL,
    FixedScale,
    PowerLawScale,
    power_law_sample,
    scale_generator,
    uniform_scale_rect,
)

__all__ = [
    "DATASET_MAX_EDGE",
    "PAPER_DATASET_SIZE",
    "skewed_insert_center",
    "skewed_insert_rect",
    "uniform_dataset",
    "INSERT_ID_BASE",
    "churn_mix",
    "make_workload",
    "query_stream",
    "search_insert_mix",
    "search_only",
    "skewed_hybrid_mix",
    "HotspotQueries",
    "ZipfSampler",
    "zipf_sample",
    "zipf_weights",
    "REA02_SIZE",
    "SUBREGION_OBJECTS",
    "generate_rea02",
    "generate_rea02_queries",
    "POWER_LAW_ALPHA",
    "SCALE_LARGE",
    "SCALE_SMALL",
    "FixedScale",
    "PowerLawScale",
    "power_law_sample",
    "scale_generator",
    "uniform_scale_rect",
]
