"""Skewed spatial access patterns.

The paper's introduction notes that its bottlenecks "will be further
aggravated by skew access patterns in real workloads [4]" (Iyer & Stoica's
IoT spatial index).  This module provides the two skew generators used by
the skew ablation:

* :func:`zipf_sample` — classic Zipf popularity over ``n`` ranks;
* :class:`HotspotQueries` — query centres clustered on Zipf-popular
  hotspots, so a few regions of the tree absorb most of the load (and
  collide with the corner-skewed insert stream of the hybrid workloads).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Tuple

from ..rtree.geometry import Rect


def zipf_weights(n: int, s: float = 1.0) -> List[float]:
    """Normalized Zipf weights for ranks 1..n."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if s < 0:
        raise ValueError(f"need s >= 0, got {s}")
    raw = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Inverse-CDF sampling from a Zipf distribution over n ranks."""

    def __init__(self, n: int, s: float = 1.0):
        self.n = n
        self.s = s
        weights = zipf_weights(n, s)
        self._cdf = list(itertools.accumulate(weights))
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        """A rank in [0, n), rank 0 most popular."""
        return bisect.bisect_left(self._cdf, rng.random())


def zipf_sample(rng: random.Random, n: int, s: float = 1.0) -> int:
    """One-shot convenience wrapper around :class:`ZipfSampler`."""
    return ZipfSampler(n, s).sample(rng)


class HotspotQueries:
    """Query rectangles clustered around Zipf-popular hotspots."""

    def __init__(
        self,
        n_hotspots: int = 16,
        zipf_s: float = 1.0,
        spread: float = 0.02,
        seed: int = 0,
    ):
        if n_hotspots < 1:
            raise ValueError(f"need >= 1 hotspot, got {n_hotspots}")
        if spread <= 0:
            raise ValueError(f"spread must be > 0, got {spread}")
        placement = random.Random(seed)
        self.hotspots: List[Tuple[float, float]] = [
            (placement.random(), placement.random())
            for _ in range(n_hotspots)
        ]
        self.sampler = ZipfSampler(n_hotspots, zipf_s)
        self.spread = spread

    def next_center(self, rng: random.Random) -> Tuple[float, float]:
        hx, hy = self.hotspots[self.sampler.sample(rng)]
        x = min(max(rng.gauss(hx, self.spread), 0.0), 1.0)
        y = min(max(rng.gauss(hy, self.spread), 0.0), 1.0)
        return x, y

    def next_rect(self, rng: random.Random, scale_gen) -> Rect:
        """A query rect sized by ``scale_gen`` centred on a hotspot."""
        template = scale_gen.next_rect(rng)
        w, h = template.width, template.height
        cx, cy = self.next_center(rng)
        minx = min(max(cx - w / 2, 0.0), 1.0 - w)
        miny = min(max(cy - h / 2, 0.0), 1.0 - h)
        return Rect(minx, miny, minx + w, miny + h)
