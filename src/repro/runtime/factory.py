"""The single session-assembly path shared by every deployment shape.

Pre-refactor, ``ExperimentRunner._build_session`` and
``ShardedExperimentRunner._build_shard_session`` duplicated the whole
client-side assembly (connection, retrying FM session, heartbeat
subscription, offload engine, scheme dispatch) — and drifted: the bandit
scheme never gained tracer/breaker support and raised "not supported
sharded".  :class:`SessionFactory` is now the only place a session is
built; the cluster builder, the sharded deployer and the scatter-gather
router all consume it.

Determinism contract: the factory draws from exactly the stream names the
old builders used — ``retry`` / ``backoff`` / ``bandit`` on the caller's
per-client registry (``rngs.fork(f"client-{i}")`` single-server,
``rngs.shard(k).fork(f"client-{i}")`` sharded) — and streams are
independently seeded by name, so existing schemes stay bit-identical.
"""

from __future__ import annotations

from ..client.adaptive import CatfishSession
from ..client.bandit import BanditSession
from ..client.base import ClientStats
from ..client.fm_client import FmSession
from ..client.node_cache import NodeCache
from ..client.offload_client import OffloadEngine
from ..client.predictors import make_predictor
from ..client.resilience import CircuitBreaker
from ..client.tcp_client import TcpSession
from ..hw.host import Host
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from ..transport.tcp import TcpConnection
from .policy import AlwaysFmPolicy, AlwaysOffloadPolicy
from .session import PolicySession
from .stack import ServerStack


class SessionFactory:
    """Build one client's session against one :class:`ServerStack`."""

    def __init__(self, sim: Simulator, spec, config, tracer):
        self.sim = sim
        self.spec = spec
        self.config = config
        self.tracer = tracer

    def _breaker(self):
        return (CircuitBreaker(self.sim, self.config.breaker)
                if self.config.breaker is not None else None)

    def build(
        self,
        client_id: int,
        stack: ServerStack,
        host: Host,
        stats: ClientStats,
        rngs: RngRegistry,
    ):
        """One session for ``client_id`` against ``stack``.

        ``rngs`` is the caller's per-client registry; the factory only
        names streams on it, it never re-derives seeds.
        """
        if stack.tcp_server is not None:
            conn = TcpConnection(
                self.sim, stack.network, host, stack.host,
                name=f"tcp-{client_id}",
            )
            stack.tcp_server.accept(conn)
            return TcpSession(self.sim, conn, client_id, stats)

        config = self.config
        conn = stack.fm_server.open_connection(host)
        fm = FmSession(
            self.sim, conn, client_id, stats,
            retry=config.retry,
            rng=rngs.stream("retry"),
        )
        if stack.heartbeats is not None:
            stack.heartbeats.subscribe(
                conn.response_ring,
                lambda hb, c=conn: c.server_post_response(hb),
            )
        policy = self.spec.policy
        if policy == AlwaysFmPolicy.name:
            return PolicySession(
                self.sim, fm, None, stats, AlwaysFmPolicy(),
                tracer=self.tracer,
            )
        engine = OffloadEngine(
            self.sim,
            conn.client_end,
            stack.server.offload_descriptor(),
            config.costs,
            stats,
            multi_issue=self.spec.multi_issue,
            tracer=self.tracer,
        )
        cache_cfg = getattr(config, "node_cache", None)
        if cache_cfg is not None and cache_cfg.enabled:
            cache = NodeCache(cache_cfg)
            engine.attach_cache(cache)
            # Heartbeat-piggybacked invalidation hints land in this
            # client's mailbox; flush stale views as they are delivered.
            conn.mailbox.attach_hint_sink(cache.apply_hint)
        if policy == AlwaysOffloadPolicy.name:
            return PolicySession(
                self.sim, fm, engine, stats, AlwaysOffloadPolicy(),
                tracer=self.tracer,
            )
        if policy == "algorithm1":
            return CatfishSession(
                self.sim,
                fm,
                engine,
                stats,
                params=config.adaptive,
                rng=rngs.stream("backoff"),
                pred_util=make_predictor(self.spec.predictor),
                tracer=self.tracer,
                breaker=self._breaker(),
                stale_after_missing=config.stale_after_missing,
            )
        if policy == "bandit":
            return BanditSession(
                self.sim,
                fm,
                engine,
                stats,
                rng=rngs.stream("bandit"),
                tracer=self.tracer,
                breaker=self._breaker(),
            )
        raise ValueError(f"unknown path policy {policy!r}")

    def build_shard_sessions(
        self,
        client_id: int,
        stacks,
        host: Host,
        stats: ClientStats,
        rng_for_shard,
    ) -> list:
        """One session per shard stack for a scatter-gather client.

        ``rng_for_shard(k)`` must return the client's registry against
        shard ``k`` (``rngs.shard(k).fork(f"client-{i}")`` in the
        deployers) — shard-derived, so adding shards never perturbs the
        retry/back-off draws against existing shards.  Sessions are
        per-*stack*, so they survive every shard-map revision: the map
        decides which of them a query visits, tile reassignments never
        rebuild a session.
        """
        return [
            self.build(client_id, stack, host, stats, rng_for_shard(k))
            for k, stack in enumerate(stacks)
        ]
