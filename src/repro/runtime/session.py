"""The generic client session driving any :class:`PathPolicy`.

One execution skeleton serves every scheme: writes always travel the
fast-messaging path (the server's lock manager must serialize them,
paper §III-B); reads ask the policy, honour the optional offload circuit
breaker (an open breaker demotes the decision to fast messaging; an
``OffloadError`` under a breaker fails over instead of propagating),
annotate a trace span, and report the executed path and its latency back
to the policy.

:class:`~repro.client.adaptive.CatfishSession` and
:class:`~repro.client.bandit.BanditSession` are thin subclasses binding
:class:`~repro.runtime.policy.Algorithm1Policy` /
:class:`~repro.runtime.policy.BanditPolicy`; the KV/cuckoo sessions
override :meth:`_is_offloadable` / :meth:`_offload` only — the selection
machinery is structure-agnostic.

Layering note: like :mod:`repro.runtime.policy`, this module must not
import :mod:`repro.client` at module level; the few client-side symbols
are resolved lazily inside the methods that need them.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..obs.registry import MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..sim.kernel import Simulator
from .policy import PATH_FM, PATH_OFFLOAD, PathPolicy


class PolicySession:
    """Execute requests, choosing the access path via a pluggable policy."""

    #: Component name under which this session's spans are traced.
    trace_component = "policy"

    def __init__(
        self,
        sim: Simulator,
        fm,
        engine,
        stats,
        policy: PathPolicy,
        tracer=None,
        breaker=None,
    ):
        self.policy = policy
        self.sim = sim
        self.fm = fm
        self.engine = engine
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional offload circuit breaker: when set, an OffloadError is
        #: recorded and the request falls over to fast messaging instead
        #: of propagating; a tripped breaker short-circuits offloading
        #: until a recovery probe succeeds.  When None, errors propagate
        #: (the seed behaviour).
        self.breaker = breaker

    # -- hooks (overridden by structure-specific subclasses) ----------------

    def _is_offloadable(self, request) -> bool:
        """Only reads may bypass the server (writes need its locks)."""
        from ..client.base import READ_OPS
        return request.op in READ_OPS

    def _offload(self, request) -> Generator:
        """Execute one offloadable request via one-sided reads.

        Subclasses for other link-based structures (B+tree, cuckoo —
        paper §VI) override this and ``_is_offloadable``; the selection
        policy itself is structure-agnostic.
        """
        from ..client.offload_client import dispatch_read
        result = yield from dispatch_read(self.engine, request, self.fm)
        return result

    def _decide(self) -> bool:
        """Ask the policy; kept as a method so tests/subclasses can force
        a path."""
        return self.policy.decide_offload()

    # -- metrics -----------------------------------------------------------

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: Optional[str] = None) -> None:
        """Adopt the policy's (and breaker's) counters into ``registry``."""
        prefix = prefix if prefix is not None else self.trace_component
        self.policy.register_metrics(registry, prefix)
        if self.breaker is not None:
            self.breaker.register_metrics(registry,
                                          prefix=f"{prefix}.breaker")

    # -- request execution -------------------------------------------------

    def execute(self, request) -> Generator:
        """Run one request, choosing the access path per the policy."""
        from ..client.offload_client import OffloadError
        policy = self.policy
        span = self.tracer.span(self.trace_component, request.op)
        if not self._is_offloadable(request):
            # Writes always go to the server through the ring buffer.
            span.annotate("decide", path=PATH_FM, reason="write")
            result = yield from self.fm.execute(request)
            span.end(path=PATH_FM)
            return result
        if self._decide():
            breaker = self.breaker
            if breaker is not None and not breaker.allow():
                # Offload path tripped: route through the server until a
                # recovery probe succeeds.
                policy.note_fm(forced=True)
                span.annotate("decide", path=PATH_FM,
                              reason="breaker-open")
                start = self.sim.now
                result = yield from self.fm.execute(request)
                policy.observe(request, PATH_FM, self.sim.now - start)
                span.end(path=PATH_FM)
                return result
            policy.note_offload()
            span.annotate("decide", path=PATH_OFFLOAD,
                          **policy.offload_annotations())
            start = self.sim.now
            if breaker is None:
                # Seed behaviour: offload failures propagate.
                result = yield from self._offload(request)
                policy.observe(request, PATH_OFFLOAD, self.sim.now - start)
                span.end(path=PATH_OFFLOAD)
                return result
            try:
                result = yield from self._offload(request)
            except OffloadError:
                # Torn-read/restart storm: record it and fail over — the
                # server-side path serves the same request under locks.
                breaker.record_failure()
                policy.note_failover()
                span.annotate("failover", reason="offload-error",
                              breaker=breaker.state)
                result = yield from self.fm.execute(request)
                policy.observe(request, PATH_OFFLOAD,
                               self.sim.now - start, failed_over=True)
                span.end(path="fm-failover")
                return result
            breaker.record_success()
            policy.observe(request, PATH_OFFLOAD, self.sim.now - start)
            span.end(path=PATH_OFFLOAD)
        else:
            policy.note_fm()
            span.annotate("decide", path=PATH_FM,
                          **policy.fm_annotations())
            start = self.sim.now
            result = yield from self.fm.execute(request)
            policy.observe(request, PATH_FM, self.sim.now - start)
            span.end(path=PATH_FM)
        return result

    def execute_search_batch(self, requests) -> Generator:
        """Run a group of search requests as one batched offload.

        One policy decision covers the whole group (a batched client
        commits the group to a path up front); the ``note_*`` /
        ``observe`` hooks still fire once per request so the policy's
        request-level accounting stays aligned with its counters — each
        request observes the batch wall time, which is exactly how long
        a synchronous batched client waited for it.  Falls back to
        per-request :meth:`execute` when the group is trivial or the
        engine has no ``search_batch`` (TCP / fast-messaging-only
        schemes, the sharded router).
        """
        from ..client.offload_client import OffloadError
        engine_batch = getattr(self.engine, "search_batch", None)
        if len(requests) <= 1 or engine_batch is None:
            results = []
            for request in requests:
                result = yield from self.execute(request)
                results.append(result)
            return results
        policy = self.policy
        span = self.tracer.span(self.trace_component, "search-batch")
        rects = [request.rect for request in requests]

        def fm_all() -> Generator:
            out = []
            for request in requests:
                start = self.sim.now
                result = yield from self.fm.execute(request)
                policy.observe(request, PATH_FM, self.sim.now - start)
                out.append(result)
            return out

        if not self._decide():
            for request in requests:
                policy.note_fm()
            span.annotate("decide", path=PATH_FM,
                          **policy.fm_annotations())
            results = yield from fm_all()
            span.end(path=PATH_FM, queries=len(requests))
            return results
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            for request in requests:
                policy.note_fm(forced=True)
            span.annotate("decide", path=PATH_FM, reason="breaker-open")
            results = yield from fm_all()
            span.end(path=PATH_FM, queries=len(requests))
            return results
        for request in requests:
            policy.note_offload()
        span.annotate("decide", path=PATH_OFFLOAD,
                      **policy.offload_annotations())
        start = self.sim.now
        if breaker is None:
            results = yield from engine_batch(rects)
            elapsed = self.sim.now - start
            for request in requests:
                policy.observe(request, PATH_OFFLOAD, elapsed)
            span.end(path=PATH_OFFLOAD, queries=len(requests))
            return results
        try:
            results = yield from engine_batch(rects)
        except OffloadError:
            breaker.record_failure()
            policy.note_failover()
            span.annotate("failover", reason="offload-error",
                          breaker=breaker.state)
            results = []
            for request in requests:
                result = yield from self.fm.execute(request)
                results.append(result)
            elapsed = self.sim.now - start
            for request in requests:
                policy.observe(request, PATH_OFFLOAD, elapsed,
                               failed_over=True)
            span.end(path="fm-failover", queries=len(requests))
            return results
        breaker.record_success()
        elapsed = self.sim.now - start
        for request in requests:
            policy.observe(request, PATH_OFFLOAD, elapsed)
        span.end(path=PATH_OFFLOAD, queries=len(requests))
        return results
