"""One server's full stack, shared by every deployment shape.

A :class:`ServerStack` assembles everything one Catfish server needs —
host + scheduler, star network, R*-tree over its data slice, the
transport front-end (TCP server or fast-messaging worker pool per the
scheme), the heartbeat service and the overload guard — exactly once.
:class:`~repro.cluster.builder.ExperimentRunner` builds one;
:class:`~repro.shard.deploy.ShardedExperimentRunner` builds K.  Before
this layer existed the two runners duplicated the whole construction
(and drifted); RDMAvisor's argument for a single service layer hiding
RDMA deployment detail is exactly this class.

Determinism contract: all stochastic construction (the scheduler noise)
draws from the *caller's* registry — the single-server runner passes its
root registry, the sharded runner passes ``rngs.shard(k)`` — so stream
names and draw order are unchanged from the pre-refactor builders.
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import SchedulerModel
from ..hw.host import Host
from ..net.fabric import FabricProfile, Network
from ..obs.registry import MetricsRegistry
from ..server.base import RTreeServer
from ..server.fast_messaging import FastMessagingServer
from ..server.heartbeat import HeartbeatService
from ..server.tcp_server import TcpRTreeServer
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry


class ServerStack:
    """Host + network + tree + transport + heartbeat for one server."""

    def __init__(
        self,
        sim: Simulator,
        profile: FabricProfile,
        spec,
        config,
        rngs: RngRegistry,
        items,
        name: str = "server",
    ):
        self.sim = sim
        self.profile = profile
        self.spec = spec
        self.name = name
        self.network = Network(sim, profile)
        self.host = Host(
            sim,
            name,
            profile,
            cores=config.server_cores,
            scheduler=SchedulerModel(
                config.server_cores, rng=rngs.stream("scheduler")
            ),
        )
        self.network.attach_server(self.host)
        self.server = RTreeServer(
            sim,
            self.host,
            items,
            max_entries=config.max_entries,
            costs=config.costs,
            byte_mode=config.byte_mode,
        )

        self.tcp_server: Optional[TcpRTreeServer] = None
        self.fm_server: Optional[FastMessagingServer] = None
        self.heartbeats: Optional[HeartbeatService] = None
        if spec.transport == "tcp":
            self.tcp_server = TcpRTreeServer(sim, self.server)
        else:
            self.fm_server = FastMessagingServer(
                sim,
                self.server,
                self.network,
                mode=spec.notification,
                max_queue_depth=config.max_queue_depth,
            )
            if spec.heartbeats:
                cache_cfg = getattr(config, "node_cache", None)
                # With client node caches enabled, every beat piggybacks
                # the tree's mutation high-water mark as an invalidation
                # hint; otherwise keep the legacy wire format (the golden
                # fingerprints are pinned on it).
                mut_seq_fn = (
                    (lambda: self.server.tree.mut_hwm)
                    if cache_cfg is not None and cache_cfg.enabled
                    else None
                )
                self.heartbeats = HeartbeatService(
                    sim,
                    self.host.cpu.window_utilization,
                    interval=config.heartbeat_interval,
                    mut_seq_fn=mut_seq_fn,
                )

    # -- lifecycle ---------------------------------------------------------

    def attach_injector(self, injector, heartbeat_hook=None) -> None:
        """Wire a fault injector into this stack's network/NIC/heartbeat.

        ``heartbeat_hook`` overrides the heartbeat suppression source
        (the sharded runner composes per-shard loss windows with the
        global blackout windows); by default the injector itself is
        installed.
        """
        injector.attach_network(self.network)
        injector.attach_host(self.host)
        if self.heartbeats is not None:
            if heartbeat_hook is not None:
                self.heartbeats.fault_injector = heartbeat_hook
            else:
                injector.attach_heartbeats(self.heartbeats)

    def start_heartbeats(self) -> None:
        """Start the heartbeat broadcaster (after clients subscribed)."""
        if self.heartbeats is not None:
            self.heartbeats.start()

    # -- occupancy ---------------------------------------------------------

    def items_held(self) -> int:
        """Exact data-item count in this stack's tree right now.

        Walks the leaf level, so it stays correct under routed writes and
        live migration (served-op counters can't distinguish a delete
        that found nothing).  The rebalance controller and the shard
        occupancy report both read this.
        """
        tree = self.server.tree
        return sum(
            len(node.entries) for node in tree.nodes.values()
            if node.level == 0
        )

    # -- metrics -----------------------------------------------------------

    def register_metrics(self, metrics: MetricsRegistry,
                         label: Optional[str] = None) -> None:
        """Adopt this stack's server-side metrics into ``metrics``.

        With ``label`` (e.g. ``"shard3"``) every name is prefixed so K
        stacks coexist in one registry; without it the single-server
        names (``server.*`` / ``heartbeat.*`` / ``net.*``) are used.
        """
        dot = f"{label}." if label else ""
        if self.fm_server is not None:
            self.fm_server.register_metrics(metrics, prefix=f"{dot}server")
        if self.heartbeats is not None:
            self.heartbeats.register_metrics(metrics,
                                             prefix=f"{dot}heartbeat")
        metrics.expose(f"{dot}server.searches_served",
                       lambda: int(self.server.searches_served))
        metrics.expose(f"{dot}server.inserts_served",
                       lambda: int(self.server.inserts_served))
        metrics.expose(f"{dot}server.items_held",
                       lambda: self.items_held())
        metrics.expose(f"{dot}server.cpu_utilization",
                       self.host.cpu.utilization)
        metrics.expose(f"{dot}net.server_bandwidth_gbps",
                       self.network.server_bandwidth_gbps)
