"""The unified client/server runtime layer.

One assembly path for every deployment shape (single-server, K-shard):

* :class:`~repro.runtime.stack.ServerStack` — one server's host, star
  network, R*-tree, transport front-end, heartbeat service;
* :class:`~repro.runtime.policy.PathPolicy` — the per-request fast
  messaging vs. offloading choice (Algorithm 1, the ε-greedy bandit and
  the two fixed baselines);
* :class:`~repro.runtime.session.PolicySession` — the generic session
  threading retry, circuit breaker, tracing and metrics around any
  policy;
* :class:`~repro.runtime.factory.SessionFactory` — the one place a
  client session is built.

``ServerStack`` and ``SessionFactory`` are exposed lazily (PEP 562):
``repro.client`` builds its sessions on top of this package, so the
eager surface here must not import it back.
"""

from .policy import (
    FAST_MESSAGING,
    OFFLOADING,
    PATH_FM,
    PATH_OFFLOAD,
    POLICY_NAMES,
    AdaptiveParams,
    Algorithm1Policy,
    AlwaysFmPolicy,
    AlwaysOffloadPolicy,
    BanditPolicy,
    LatencyEstimate,
    PathPolicy,
)
from .session import PolicySession

__all__ = [
    "AdaptiveParams",
    "Algorithm1Policy",
    "AlwaysFmPolicy",
    "AlwaysOffloadPolicy",
    "BanditPolicy",
    "FAST_MESSAGING",
    "LatencyEstimate",
    "OFFLOADING",
    "PATH_FM",
    "PATH_OFFLOAD",
    "POLICY_NAMES",
    "PathPolicy",
    "PolicySession",
    "ServerStack",
    "SessionFactory",
]


def __getattr__(name: str):
    if name == "ServerStack":
        from .stack import ServerStack
        return ServerStack
    if name == "SessionFactory":
        from .factory import SessionFactory
        return SessionFactory
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
