"""Pluggable path-selection policies for the unified runtime layer.

The paper's core idea is a per-request *choice* between two ways of
reaching the same data: fast messaging (the server answers) and RDMA
offloading (the client traverses the tree with one-sided reads).  RFP
frames exactly this server-reply vs. remote-fetch decision as a general
paradigm — so the decision logic is factored out of the session classes
into small policy objects implementing one protocol:

* :class:`AlwaysFmPolicy` — every read goes through the server (the
  "fast messaging" baseline);
* :class:`AlwaysOffloadPolicy` — every read is a one-sided traversal
  (the "RDMA offloading" baseline);
* :class:`Algorithm1Policy` — the paper's adaptive back-off rule
  (Algorithm 1), including the predictor hook and the stale-heartbeat
  guard;
* :class:`BanditPolicy` — the ε-greedy latency learner (paper §V-B
  future work).

A policy only *decides and observes*; executing the request — retry,
circuit breaking, tracing, counters — is threaded uniformly by
:class:`~repro.runtime.session.PolicySession`.

Layering note: this module must not import :mod:`repro.client` at module
level (client sessions are built *on top of* the runtime layer), so the
few client-side defaults are resolved lazily.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..obs.registry import Counter, MetricsRegistry
from ..sim.kernel import Simulator

#: The two access paths of the paper (values match the historical trace
#: annotations, so pre-refactor trace consumers keep working).
PATH_FM = "fast-messaging"
PATH_OFFLOAD = "offload"

#: Bandit arm labels (kept from ``repro.client.bandit`` for
#: compatibility with existing dashboards/tests).
FAST_MESSAGING = "fm"
OFFLOADING = "offload"


@dataclass(frozen=True)
class AdaptiveParams:
    """The tunables of Algorithm 1 (paper defaults: N=8, T=95%, Inv=10ms)."""

    N: int = 8
    T: float = 0.95
    Inv: float = 10e-3

    def __post_init__(self):
        if self.N < 1:
            raise ValueError(f"N must be >= 1, got {self.N}")
        if not 0.0 < self.T <= 1.0:
            raise ValueError(f"T must be in (0, 1], got {self.T}")
        if self.Inv <= 0:
            raise ValueError(f"Inv must be > 0, got {self.Inv}")


class PathPolicy:
    """Protocol + no-op base for per-request path selection.

    ``decide_offload`` is called once per offloadable request and may
    mutate policy state (drain a budget, draw from an RNG).  The session
    then reports what actually happened through the ``note_*`` hooks
    (the decision may be demoted to fast messaging by an open circuit
    breaker) and finally ``observe`` with the executed path and its
    latency.  The split keeps every policy usable standalone while the
    generic session owns retry/breaker/tracing uniformly.
    """

    name = "policy"

    def decide_offload(self) -> bool:
        """True to offload the next read; may mutate policy state."""
        raise NotImplementedError

    # -- outcome hooks (no-ops by default) ---------------------------------

    def note_offload(self) -> None:
        """The offload decision stood (breaker allowed it)."""

    def note_fm(self, forced: bool = False) -> None:
        """Fast messaging chosen (``forced`` = open breaker demoted an
        offload decision)."""

    def note_failover(self) -> None:
        """An offloaded request failed over to fast messaging."""

    def observe(self, request, path: str, elapsed: float,
                failed_over: bool = False) -> None:
        """The executed path and its end-to-end latency."""

    # -- introspection ------------------------------------------------------

    def offload_annotations(self) -> Dict[str, object]:
        """Trace attributes for an offload decision."""
        return {}

    def fm_annotations(self) -> Dict[str, object]:
        """Trace attributes for a fast-messaging decision."""
        return {}

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str) -> None:
        """Adopt the policy's counters into ``registry``."""


class AlwaysFmPolicy(PathPolicy):
    """Every request goes through the server (fast-messaging baseline)."""

    name = "always-fm"

    def decide_offload(self) -> bool:
        return False

    def fm_annotations(self) -> Dict[str, object]:
        return {"reason": "always-fm"}


class AlwaysOffloadPolicy(PathPolicy):
    """Every read is a one-sided traversal (RDMA-offloading baseline)."""

    name = "always-offload"

    def decide_offload(self) -> bool:
        return True

    def offload_annotations(self) -> Dict[str, object]:
        return {"reason": "always-offload"}


class Algorithm1Policy(PathPolicy):
    """The Catfish adaptive back-off rule — Algorithm 1 of the paper.

    Each client autonomously decides, per search, between fast messaging
    and RDMA offloading using a binary-exponential-back-off-style rule:

    * the server's heartbeat (CPU utilization) lands in the client's
      ``u_serv`` mailbox at most every ``Inv``;
    * when the predicted utilization exceeds threshold ``T`` (95%), the
      client offloads its next ``n`` searches, ``n`` drawn uniformly
      from the current back-off window ``[(r_busy-1)*N, r_busy*N)`` —
      randomization de-synchronizes the clients so they do not all
      stampede back to the server at once;
    * consecutive busy observations extend the window without upper
      bound;
    * **a missing heartbeat means "do not offload"**: the likely cause
      is a saturated server link, and offloading consumes *more*
      bandwidth.  The client tells "missing" apart from "fresh heartbeat
      reporting 0.0 utilization" by the mailbox sequence number, not by
      the value — a server that is genuinely idle still counts as a
      (non-busy) observation.

    ``mailbox_fn`` returns the ``u_serv`` heartbeat mailbox (a callable
    so a session can swap its fast-messaging endpoint without stranding
    the policy on a stale mailbox).
    """

    name = "algorithm1"

    def __init__(
        self,
        sim: Simulator,
        mailbox_fn: Callable[[], object],
        params: Optional[AdaptiveParams] = None,
        rng: Optional[random.Random] = None,
        pred_util: Optional[Callable[[float], float]] = None,
        stale_after_missing: Optional[int] = None,
    ):
        self.sim = sim
        self._mailbox_fn = mailbox_fn
        self.params = params if params is not None else AdaptiveParams()
        self.rng = rng or random.Random(0)
        if pred_util is None:
            # Lazy: repro.client sits above the runtime layer.
            from ..client.predictors import most_recent
            pred_util = most_recent
        self.pred_util = pred_util
        #: When set, this many consecutive missing-heartbeat observations
        #: mark the utilization picture "stale": any remaining offload
        #: budget (granted under now-unverifiable information) is
        #: cancelled until a fresh heartbeat arrives.
        self.stale_after_missing = stale_after_missing
        # Algorithm 1 state.
        self.r_busy = 0
        self.r_off = 0
        self._t0 = sim.now
        self._last_seq = -1
        self._missing_streak = 0
        # Introspection counters.
        self.busy_observations = Counter("adaptive.busy_observations")
        self.backoff_extensions = Counter("adaptive.backoff_extensions")
        self.heartbeats_consumed = Counter("adaptive.heartbeats_consumed")
        self.heartbeats_missing = Counter("adaptive.heartbeats_missing")
        self.decisions_offload = Counter("adaptive.decisions_offload")
        self.decisions_fm = Counter("adaptive.decisions_fm")
        self.stale_resets = Counter("adaptive.stale_resets")
        self.offload_failovers = Counter("adaptive.offload_failovers")

    def decide_offload(self) -> bool:
        """One pass of lines 5-23; True means offload this search."""
        params = self.params
        utilization = 0.0
        now = self.sim.now
        mailbox = self._mailbox_fn()
        # Lines 7-11: consume a heartbeat if at least Inv elapsed and one
        # actually arrived.  Freshness is the mailbox *sequence number*
        # advancing, never the value being nonzero: a fresh heartbeat
        # reporting exactly 0.0 utilization is a real (non-busy)
        # observation, while an unchanged seq means "missing heartbeat",
        # which deliberately reads as "do not offload".
        if now - self._t0 > params.Inv:
            fresh = mailbox.consume_fresh(self._last_seq)
            if fresh is not None:
                self._last_seq, raw = fresh
                utilization = self.pred_util(raw)
                self._t0 = now
                self.heartbeats_consumed += 1
                self._missing_streak = 0
            else:
                self.heartbeats_missing += 1
                self._missing_streak += 1
                stale = self.stale_after_missing
                if (stale is not None and self._missing_streak >= stale
                        and (self.r_off or self.r_busy)):
                    # The heartbeat has been silent for `stale` whole
                    # intervals (blackout / saturated link / dropped
                    # beats): the busy picture the current back-off
                    # window was granted under is no longer verifiable.
                    # Cancel the remaining offload budget — "missing
                    # means do not offload" now also applies to budget
                    # granted *before* the silence began.
                    self.r_off = 0
                    self.r_busy = 0
                    self.stale_resets += 1
        # Lines 12-17: extend or reset the back-off window.
        if utilization > params.T and self.r_off <= self.r_busy * params.N:
            self.r_busy += 1
            self.r_off = (
                self.rng.randrange(params.N)
                + (self.r_busy - 1) * params.N
            )
            self.busy_observations += 1
            if self.r_busy > 1:
                self.backoff_extensions += 1
        else:
            self.r_busy = 0
        # Lines 18-23: drain the offload budget.
        if self.r_off > 0:
            self.r_off -= 1
            return True
        return False

    def note_offload(self) -> None:
        self.decisions_offload += 1

    def note_fm(self, forced: bool = False) -> None:
        self.decisions_fm += 1

    def note_failover(self) -> None:
        self.offload_failovers += 1

    def offload_annotations(self) -> Dict[str, object]:
        return {"r_busy": self.r_busy, "r_off": self.r_off}

    def fm_annotations(self) -> Dict[str, object]:
        return {"r_busy": self.r_busy}

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "adaptive") -> None:
        registry.adopt(f"{prefix}.busy_observations",
                       self.busy_observations)
        registry.adopt(f"{prefix}.backoff_extensions",
                       self.backoff_extensions)
        registry.adopt(f"{prefix}.heartbeats_consumed",
                       self.heartbeats_consumed)
        registry.adopt(f"{prefix}.heartbeats_missing",
                       self.heartbeats_missing)
        registry.adopt(f"{prefix}.decisions_offload", self.decisions_offload)
        registry.adopt(f"{prefix}.decisions_fm", self.decisions_fm)
        registry.adopt(f"{prefix}.stale_resets", self.stale_resets)
        registry.adopt(f"{prefix}.offload_failovers", self.offload_failovers)
        registry.expose(f"{prefix}.r_busy", lambda: self.r_busy)
        registry.expose(f"{prefix}.r_off", lambda: self.r_off)


class LatencyEstimate:
    """EWMA of one arm's latency, optimistic until first observed."""

    def __init__(self, alpha: float):
        self.alpha = alpha
        self.value: Optional[float] = None
        self.observations = 0

    def update(self, sample: float) -> None:
        self.observations += 1
        if self.value is None:
            self.value = sample
        else:
            self.value = self.alpha * sample + (1 - self.alpha) * self.value


class BanditPolicy(PathPolicy):
    """ε-greedy latency bandit over the two access paths (paper §V-B).

    Needs no heartbeats at all — the reward signal is the client's own
    observed per-path latency with exponential forgetting — and under
    sustained server saturation it parks on offloading instead of
    probing back, exactly the behaviour the paper found Algorithm 1
    lacking.

    ``mode_counts`` counts *choices*; the latency estimates are updated
    for the path that actually *executed* (identical whenever no circuit
    breaker demotes a choice, which is the pre-breaker behaviour
    bit-for-bit).
    """

    name = "bandit"

    def __init__(
        self,
        epsilon: float = 0.1,
        alpha: float = 0.3,
        rng: Optional[random.Random] = None,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.epsilon = epsilon
        self.rng = rng or random.Random(0)
        self.estimates = {
            FAST_MESSAGING: LatencyEstimate(alpha),
            OFFLOADING: LatencyEstimate(alpha),
        }
        self.explorations = 0
        self.mode_counts = {FAST_MESSAGING: 0, OFFLOADING: 0}
        self.offload_failovers = Counter("bandit.offload_failovers")
        self.breaker_demotions = Counter("bandit.breaker_demotions")

    def _choose_mode(self) -> str:
        fm_est = self.estimates[FAST_MESSAGING]
        off_est = self.estimates[OFFLOADING]
        # Try each arm once before exploiting.
        if fm_est.value is None:
            return FAST_MESSAGING
        if off_est.value is None:
            return OFFLOADING
        if self.rng.random() < self.epsilon:
            self.explorations += 1
            return self.rng.choice((FAST_MESSAGING, OFFLOADING))
        return (FAST_MESSAGING if fm_est.value <= off_est.value
                else OFFLOADING)

    def decide_offload(self) -> bool:
        mode = self._choose_mode()
        self.mode_counts[mode] += 1
        return mode == OFFLOADING

    def note_fm(self, forced: bool = False) -> None:
        if forced:
            self.breaker_demotions += 1

    def note_failover(self) -> None:
        self.offload_failovers += 1

    def observe(self, request, path: str, elapsed: float,
                failed_over: bool = False) -> None:
        arm = OFFLOADING if path == PATH_OFFLOAD else FAST_MESSAGING
        self.estimates[arm].update(elapsed)

    def offload_annotations(self) -> Dict[str, object]:
        return {"mode": OFFLOADING}

    def fm_annotations(self) -> Dict[str, object]:
        return {"mode": FAST_MESSAGING}

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "bandit") -> None:
        registry.adopt(f"{prefix}.offload_failovers", self.offload_failovers)
        registry.adopt(f"{prefix}.breaker_demotions", self.breaker_demotions)
        registry.expose(f"{prefix}.explorations", lambda: self.explorations)
        registry.expose(f"{prefix}.mode_fm",
                        lambda: self.mode_counts[FAST_MESSAGING])
        registry.expose(f"{prefix}.mode_offload",
                        lambda: self.mode_counts[OFFLOADING])
        for arm in (FAST_MESSAGING, OFFLOADING):
            registry.expose(
                f"{prefix}.estimate_{arm}_us",
                lambda a=arm: (self.estimates[a].value or 0.0) * 1e6,
            )


#: Policy-name registry: the vocabulary `SchemeSpec.policy` maps onto.
POLICY_NAMES = (
    AlwaysFmPolicy.name,
    AlwaysOffloadPolicy.name,
    Algorithm1Policy.name,
    BanditPolicy.name,
)
