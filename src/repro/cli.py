"""Command-line interface: run experiments without writing a script.

Examples::

    python -m repro run --scheme catfish --fabric ib-100g --clients 32
    python -m repro compare --clients 16 --scale 0.01
    python -m repro schemes
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .client.adaptive import AdaptiveParams
from .cluster.builder import run_experiment
from .cluster.config import ExperimentConfig
from .cluster.results import RunResult
from .cluster.schemes import SCHEMES
from .net.fabric import PROFILES
from .perfbench import DEFAULT_OUT, DEFAULT_REPEATS, SCALE_PARAMS


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fabric", default="ib-100g",
                        choices=sorted(PROFILES),
                        help="interconnect profile")
    parser.add_argument("--clients", type=int, default=16,
                        help="number of simulated clients")
    parser.add_argument("--requests", type=int, default=100,
                        help="requests per client")
    parser.add_argument("--scale", default="0.0001",
                        help="query scale ('0.01', 'powerlaw', ...)")
    parser.add_argument("--workload", default="search",
                        choices=["search", "search-skewed", "hybrid",
                                 "mixed"],
                        help="request mix ('mixed' = read-only "
                             "search/count/nearest; 'search-skewed' = "
                             "Zipf-hotspot searches)")
    parser.add_argument("--dataset-size", type=int, default=20_000,
                        help="rectangles in the pre-built tree")
    parser.add_argument("--server-cores", type=int, default=28)
    parser.add_argument("--heartbeat-ms", type=float, default=0.5,
                        help="heartbeat interval in milliseconds")
    parser.add_argument("--adaptive-n", type=int, default=8,
                        help="Algorithm 1 back-off base N")
    parser.add_argument("--adaptive-t", type=float, default=0.95,
                        help="Algorithm 1 busy threshold T")
    parser.add_argument("--batch-queries", type=int, default=0,
                        help="group up to N consecutive searches into one "
                             "shared offload traversal (0 = off, the "
                             "fingerprint-pinned default)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the catfish-metrics/v1 JSON snapshot "
                             "(all runs of this command) to PATH")
    parser.add_argument("--trace", action="store_true",
                        help="record per-request spans in the metrics "
                             "snapshot (implies --metrics-out usefulness)")


def _rebalance_from(args):
    if not getattr(args, "rebalance", False):
        return None
    from .cluster.config import RebalanceConfig
    return RebalanceConfig()


def _config_from(args, scheme: str) -> ExperimentConfig:
    heartbeat = args.heartbeat_ms * 1e-3
    return ExperimentConfig(
        scheme=scheme,
        fabric=args.fabric,
        n_clients=args.clients,
        requests_per_client=args.requests,
        workload_kind=args.workload,
        scale=args.scale,
        dataset_size=args.dataset_size,
        server_cores=args.server_cores,
        heartbeat_interval=heartbeat,
        adaptive=AdaptiveParams(N=args.adaptive_n, T=args.adaptive_t,
                                Inv=heartbeat),
        seed=args.seed,
        batch_queries=getattr(args, "batch_queries", 0),
        collect_timeline=getattr(args, "timeline", False),
        trace=getattr(args, "trace", False),
        n_shards=getattr(args, "shards", None),
        rebalance=_rebalance_from(args),
    )


def _write_metrics(args, documents: List[dict]) -> None:
    """Write run snapshot(s) to ``--metrics-out`` (one doc, or a list)."""
    if not getattr(args, "metrics_out", None):
        return
    from .obs import write_metrics_json
    payload = documents[0] if len(documents) == 1 else documents
    try:
        path = write_metrics_json(args.metrics_out, payload)
    except OSError as exc:
        print(f"error: cannot write metrics to {args.metrics_out!r}: "
              f"{exc}", file=sys.stderr)
        raise SystemExit(2)
    print(f"metrics written to {path}", file=sys.stderr)


def _tcp_compatible(scheme: str, fabric: str) -> bool:
    needs_rdma = SCHEMES[scheme].transport != "tcp"
    return PROFILES[fabric].rdma or not needs_rdma


def cmd_run(args) -> int:
    if not _tcp_compatible(args.scheme, args.fabric):
        print(f"error: scheme {args.scheme!r} needs an RDMA fabric",
              file=sys.stderr)
        return 2
    result = run_experiment(_config_from(args, args.scheme))
    print(RunResult.header())
    print(result.row())
    _write_metrics(args, [result.metrics])
    if getattr(args, "timeline", False):
        from .viz import render_timeline
        print()
        for line in render_timeline(result.timeline):
            print(line)
    if args.verbose:
        print(f"\nelapsed (simulated): {result.elapsed_s * 1e3:.3f} ms")
        print(f"p50/p99 latency: {result.p50_latency_us:.1f} / "
              f"{result.p99_latency_us:.1f} us")
        print(f"torn-read retries: {result.torn_retries}, "
              f"search restarts: {result.search_restarts}")
        print(f"heartbeats sent/dropped: {result.heartbeats_sent}/"
              f"{result.heartbeats_dropped}")
        print(f"server-side searches/inserts: "
              f"{result.searches_served_by_server}/{result.inserts_served}")
        from .viz import render_metrics
        print()
        for line in render_metrics(result.metrics):
            print(line)
    return 0


def cmd_compare(args) -> int:
    schemes = args.schemes or [
        "tcp", "fast-messaging", "rdma-offloading", "catfish",
    ]
    print(RunResult.header())
    documents = []
    for scheme in schemes:
        if scheme not in SCHEMES:
            print(f"error: unknown scheme {scheme!r}", file=sys.stderr)
            return 2
        fabric = args.fabric
        if not _tcp_compatible(scheme, fabric):
            fabric = "ib-100g"
        if SCHEMES[scheme].transport == "tcp" and PROFILES[fabric].rdma:
            fabric = "eth-1g"
        result = run_experiment(_config_from(args, scheme)
                                if fabric == args.fabric else
                                _config_with_fabric(args, scheme, fabric))
        print(result.row())
        documents.append(result.metrics)
    _write_metrics(args, documents)
    return 0


def _config_with_fabric(args, scheme, fabric) -> ExperimentConfig:
    config = _config_from(args, scheme)
    config.fabric = fabric
    return config


def cmd_kv(args) -> int:
    from .cluster.kv_builder import KvExperimentConfig, run_kv_experiment
    heartbeat = args.heartbeat_ms * 1e-3
    config = KvExperimentConfig(
        index=args.index,
        scheme=args.scheme,
        n_clients=args.clients,
        requests_per_client=args.requests,
        n_keys=args.keys,
        get_fraction=args.get_fraction,
        scan_fraction=args.scan_fraction,
        zipf_s=args.zipf,
        server_cores=args.server_cores,
        heartbeat_interval=heartbeat,
        adaptive=AdaptiveParams(N=args.adaptive_n, T=args.adaptive_t,
                                Inv=heartbeat),
        seed=args.seed,
    )
    result = run_kv_experiment(config)
    print(RunResult.header())
    print(result.row())
    _write_metrics(args, [result.metrics])
    return 0


def cmd_perf(args) -> int:
    from .perfbench import bench_scale, run_perf, write_perf_json
    scale = args.scale or bench_scale()
    run = run_perf(scale, repeats=args.repeats)
    write_perf_json(args.out, run, scale, baseline=args.baseline)
    return 0


def cmd_chaos(args) -> int:
    from .faults import SCENARIOS, run_scenario
    if args.list:
        width = max(len(name) for name in SCENARIOS)
        for name, scenario in SCENARIOS.items():
            print(f"{name:<{width}}  {scenario.summary}")
        return 0
    names = args.scenario or list(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            print(f"error: unknown scenario {name!r} "
                  f"(try `repro chaos --list`)", file=sys.stderr)
            return 2
    overrides = {}
    if args.clients is not None:
        overrides["n_clients"] = args.clients
    if args.requests is not None:
        overrides["requests_per_client"] = args.requests
    if args.dataset_size is not None:
        overrides["dataset_size"] = args.dataset_size
    from .faults.scenarios import ScenarioReport
    print(ScenarioReport.header())
    failed = 0
    for name in names:
        report = run_scenario(name, seed=args.seed, **overrides)
        print(report.row())
        if args.verbose or not report.ok:
            for line in report.describe():
                print(line)
            print(f"  fingerprint: {report.fingerprint()}")
        if not report.ok:
            failed += 1
    if failed:
        print(f"\n{failed}/{len(names)} scenario(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"\n{len(names)} scenario(s) passed")
    return 0


#: Workload kinds whose requests are all reads — the single bulk-loaded
#: tree stays an exact oracle for every routed query, so `repro shard`
#: can verify the merged results rather than just report throughput.
_READ_ONLY_WORKLOADS = ("search", "search-skewed", "mixed")


def cmd_shard(args) -> int:
    from .shard.deploy import ShardedExperimentRunner
    from .shard.verify import verify_routed_results
    if not PROFILES[args.fabric].rdma:
        print(f"error: sharded Catfish needs an RDMA fabric, "
              f"not {args.fabric!r}", file=sys.stderr)
        return 2
    verify = args.workload in _READ_ONLY_WORKLOADS and not args.no_verify
    config = _config_from(args, args.scheme)
    runner = ShardedExperimentRunner(config, record_results=verify)
    result = runner.run()
    print(RunResult.header())
    print(result.row())
    _write_metrics(args, [result.metrics])
    print(f"\nshard map ({runner.n_shards} shards):")
    for line in runner.partition.shard_map.describe():
        print(f"  {line}")
    routed = sum(int(s.queries_routed) for s in runner.router_stats)
    issued = sum(int(s.subqueries_issued) for s in runner.router_stats)
    pruned = sum(int(s.shards_pruned) for s in runner.router_stats)
    partial = sum(int(s.partial_results) for s in runner.router_stats)
    print(f"\nrouter: {routed} queries -> {issued} sub-queries "
          f"({pruned} shard visits pruned, {partial} partial results)")
    before = runner.initial_occupancy()
    after = runner.shard_occupancy()
    print(f"\nshard occupancy (items before -> after):")
    for shard_id, (b, a) in enumerate(zip(before, after)):
        delta = a - b
        print(f"  shard {shard_id}: {b:>7} -> {a:>7} ({delta:+d})")
    if runner.rebalancer is not None:
        s = runner.rebalance_stats
        rescattered = sum(int(r.epoch_rescatters)
                          for r in runner.router_stats)
        print(f"rebalance: {int(s.splits)} splits, {int(s.merges)} merges, "
              f"{int(s.migrations_completed)} migrations "
              f"({int(s.items_migrated)} items moved), "
              f"map epoch {runner.live_map.epoch}, "
              f"{len(runner.live_map.tiles)} tiles, "
              f"{rescattered} epoch re-scatters")
    if not verify:
        print("oracle verification skipped "
              f"(workload {args.workload!r} is not read-only)"
              if args.workload not in _READ_ONLY_WORKLOADS
              else "oracle verification skipped (--no-verify)")
        return 0
    summary = verify_routed_results(runner)
    print()
    for line in summary.describe():
        print(line)
    if not summary.ok:
        print("error: merged results diverge from the single-server "
              "oracle", file=sys.stderr)
        return 1
    print("merged results identical to the single-server oracle")
    return 0


def _parse_tenants(specs: Optional[List[str]]):
    if not specs:
        return (("default", 1.0),)
    tenants = []
    for spec in specs:
        name, sep, weight = spec.partition(":")
        if not name:
            raise SystemExit(f"error: bad tenant spec {spec!r} "
                             f"(want NAME or NAME:WEIGHT)")
        tenants.append((name, float(weight) if sep else 1.0))
    return tuple(tenants)


def cmd_traffic(args) -> int:
    from .cluster.schemes import TRANSPORT_TCP
    from .traffic import TrafficConfig
    from .traffic.harness import TrafficResult, rate_sweep, run_traffic

    if SCHEMES[args.scheme].transport == TRANSPORT_TCP:
        print(f"error: the traffic mux shares RDMA sessions; scheme "
              f"{args.scheme!r} is TCP-based", file=sys.stderr)
        return 2
    if not PROFILES[args.fabric].rdma:
        print(f"error: scheme {args.scheme!r} needs an RDMA fabric",
              file=sys.stderr)
        return 2
    try:
        traffic = TrafficConfig(
            kind=args.kind,
            rate=args.rate,
            duration_s=args.duration_ms * 1e-3,
            n_aggregates=args.aggregates,
            users_per_aggregate=args.users_per_aggregate,
            tenants=_parse_tenants(args.tenant),
            window=args.window,
            sessions=args.sessions,
            queue_watermark=args.watermark,
            admit_rate=args.admit_rate,
            period_s=args.period_ms * 1e-3,
            amplitude=args.amplitude,
            spike_start=args.spike_start_ms * 1e-3,
            spike_end=args.spike_end_ms * 1e-3,
            spike_multiplier=args.spike_multiplier,
            hotspot_skew=getattr(args, "hotspot_skew", False),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = ExperimentConfig(
        scheme=args.scheme,
        fabric=args.fabric,
        scale=args.scale,
        dataset_size=args.dataset_size,
        server_cores=args.server_cores,
        seed=args.seed,
        n_shards=args.shards,
        traffic=traffic,
        rebalance=_rebalance_from(args),
    )
    users = traffic.total_users
    print(f"open-loop {traffic.kind} traffic: {users:,} virtual users "
          f"over {traffic.n_aggregates} aggregates, "
          f"{traffic.sessions} shared sessions"
          + (f", {args.shards} shards" if args.shards else ""))
    print(TrafficResult.header())
    if args.rate_sweep:
        results = rate_sweep(config, [float(r) for r in args.rate_sweep])
    else:
        results = [run_traffic(config)]
    documents = []
    for result in results:
        print(result.row())
        documents.append(result.metrics)
    _write_metrics(args, documents)
    if args.verbose:
        last = results[-1]
        print(f"\nusers touched: {last.users_touched:,}/{last.users_total:,}")
        print(f"sheds: window={last.shed_window} "
              f"watermark={last.shed_watermark} "
              f"admission={last.shed_admission} server={last.server_shed}")
        for name, stats in sorted(last.per_tenant.items()):
            print(f"tenant {name}: n={stats['count']:.0f} "
                  f"p50={stats['p50_us']:.1f}us p99={stats['p99_us']:.1f}us")
    return 0


def cmd_schemes(_args) -> int:
    print(f"{'scheme':>22} {'transport':>10} {'notify':>8} "
          f"{'offload':>9} {'multi':>6}")
    for name in sorted(SCHEMES):
        spec = SCHEMES[name]
        print(f"{name:>22} {spec.transport:>10} {spec.notification:>8} "
              f"{spec.offload:>9} {str(spec.multi_issue):>6}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Catfish (ICDCS'19) reproduction — simulated "
                    "RDMA R-tree experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("--scheme", default="catfish",
                       choices=sorted(SCHEMES))
    p_run.add_argument("--verbose", "-v", action="store_true")
    p_run.add_argument("--timeline", action="store_true",
                       help="collect and render a cpu/offload timeline")
    p_run.add_argument("--shards", type=int, default=None,
                       help="shard the server across N machines "
                            "(RDMA schemes only; default: the scheme's "
                            "own shard count)")
    _add_common_options(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run several schemes")
    p_cmp.add_argument("--schemes", nargs="*",
                       help="schemes to compare (default: the paper's four)")
    _add_common_options(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_kv = sub.add_parser(
        "kv", help="run a B+tree / cuckoo experiment (paper §VI)"
    )
    p_kv.add_argument("--index", default="btree",
                      choices=["btree", "cuckoo"])
    p_kv.add_argument("--scheme", default="catfish",
                      choices=["fast-messaging", "rdma-offloading",
                               "catfish", "catfish-bandit"])
    p_kv.add_argument("--keys", type=int, default=20_000)
    p_kv.add_argument("--get-fraction", type=float, default=0.9)
    p_kv.add_argument("--scan-fraction", type=float, default=0.0)
    p_kv.add_argument("--zipf", type=float, default=0.99,
                      help="Zipf skew of key popularity")
    _add_common_options(p_kv)
    p_kv.set_defaults(func=cmd_kv)

    p_perf = sub.add_parser(
        "perf",
        help="substrate perf benchmark (kernel / search / end-to-end); "
             "writes BENCH_perf.json",
    )
    p_perf.add_argument("--out", default=DEFAULT_OUT,
                        help=f"artifact path (default {DEFAULT_OUT})")
    p_perf.add_argument("--baseline", action="store_true",
                        help="record this run as the pre-PR baseline")
    p_perf.add_argument("--scale", default=None,
                        choices=sorted(SCALE_PARAMS),
                        help="work size (default: $CATFISH_BENCH_SCALE)")
    p_perf.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="runs per stage; best (min wall) is recorded")
    p_perf.set_defaults(func=cmd_perf)

    p_chaos = sub.add_parser(
        "chaos",
        help="run named fault-injection scenarios and check "
             "end-to-end resilience invariants",
    )
    p_chaos.add_argument("--list", action="store_true",
                         help="list scenarios and exit")
    p_chaos.add_argument("--scenario", action="append", metavar="NAME",
                         help="scenario to run (repeatable; default: all)")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--clients", type=int, default=None,
                         help="override ChaosConfig.n_clients")
    p_chaos.add_argument("--requests", type=int, default=None,
                         help="override ChaosConfig.requests_per_client")
    p_chaos.add_argument("--dataset-size", type=int, default=None,
                         help="override ChaosConfig.dataset_size")
    p_chaos.add_argument("--verbose", "-v", action="store_true",
                         help="print every invariant, not just failures")
    p_chaos.set_defaults(func=cmd_chaos)

    p_shard = sub.add_parser(
        "shard",
        help="run the sharded catfish cluster and verify the router's "
             "merged results against a single-server oracle",
    )
    p_shard.add_argument("--scheme", default="catfish-sharded",
                         choices=("catfish-sharded", "catfish-bandit"),
                         help="client scheme to run per shard: the "
                              "adaptive Algorithm 1 default or the "
                              "ε-greedy latency bandit")
    p_shard.add_argument("--shards", type=int, default=4,
                         help="number of shard servers (default 4)")
    p_shard.add_argument("--no-verify", action="store_true",
                         help="skip the oracle check (just report "
                              "throughput)")
    p_shard.add_argument("--rebalance", action="store_true",
                         help="enable the elastic shard plane: live "
                              "tile split/merge + item migration under "
                              "an epoch-versioned shard map")
    _add_common_options(p_shard)
    p_shard.set_defaults(func=cmd_shard, workload="mixed")

    p_tr = sub.add_parser(
        "traffic",
        help="open-loop traffic: aggregated clients over a connection "
             "mux, measuring sojourn tails and shed accounting",
    )
    p_tr.add_argument("--scheme", default="fast-messaging-event",
                      choices=sorted(n for n in SCHEMES
                                     if SCHEMES[n].transport != "tcp"))
    p_tr.add_argument("--fabric", default="ib-100g",
                      choices=sorted(PROFILES))
    p_tr.add_argument("--kind", default="poisson",
                      choices=["poisson", "diurnal", "flash-crowd"],
                      help="arrival process")
    p_tr.add_argument("--rate", type=float, default=100_000.0,
                      help="offered arrivals/second (all aggregates)")
    p_tr.add_argument("--rate-sweep", nargs="+", metavar="RATE",
                      default=None,
                      help="run one deployment per offered rate")
    p_tr.add_argument("--duration-ms", type=float, default=4.0,
                      help="offered-load window (simulated ms)")
    p_tr.add_argument("--aggregates", type=int, default=4,
                      help="aggregated client endpoints")
    p_tr.add_argument("--users-per-aggregate", type=int, default=1000,
                      help="virtual users per aggregate")
    p_tr.add_argument("--tenant", action="append", metavar="NAME[:WEIGHT]",
                      help="tenant mix entry (repeatable)")
    p_tr.add_argument("--window", type=int, default=256,
                      help="per-aggregate in-flight bound")
    p_tr.add_argument("--sessions", type=int, default=4,
                      help="shared sessions behind the mux")
    p_tr.add_argument("--watermark", type=int, default=512,
                      help="mux queue-depth shed watermark")
    p_tr.add_argument("--admit-rate", type=float, default=None,
                      help="token-bucket admission rate (default: off)")
    p_tr.add_argument("--period-ms", type=float, default=2.0,
                      help="diurnal period (simulated ms)")
    p_tr.add_argument("--amplitude", type=float, default=0.5,
                      help="diurnal modulation depth [0,1)")
    p_tr.add_argument("--spike-start-ms", type=float, default=1.0)
    p_tr.add_argument("--spike-end-ms", type=float, default=2.0)
    p_tr.add_argument("--spike-multiplier", type=float, default=8.0)
    p_tr.add_argument("--shards", type=int, default=None,
                      help="shard the server across N machines")
    p_tr.add_argument("--rebalance", action="store_true",
                      help="enable the elastic shard plane (needs "
                           "--shards > 1)")
    p_tr.add_argument("--hotspot-skew", action="store_true",
                      help="draw query locations from Zipf hotspots "
                           "instead of uniformly")
    p_tr.add_argument("--scale", default="0.0001",
                      help="query scale ('0.01', 'powerlaw', ...)")
    p_tr.add_argument("--dataset-size", type=int, default=20_000)
    p_tr.add_argument("--server-cores", type=int, default=28)
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="write the catfish-metrics/v1 JSON snapshot "
                           "to PATH")
    p_tr.add_argument("--verbose", "-v", action="store_true",
                      help="print shed/tenant breakdown of the last point")
    p_tr.set_defaults(func=cmd_traffic)

    p_sch = sub.add_parser("schemes", help="list available schemes")
    p_sch.set_defaults(func=cmd_schemes)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
