"""RDMA verbs model: queue pairs, one-sided Read/Write, completion queues.

This is the substrate the whole paper stands on.  The crucial property is
enforced structurally: **one-sided operations never touch the remote CPU**.
An RDMA Read costs the remote host only NIC processing and link bandwidth;
an RDMA Write deposits data (and optionally an immediate-data completion)
without any remote core executing a single instruction.

Modelled verbs (all on a reliable connection, as in the paper §II-B):

* ``post_write(...)``            — RDMA Write
* ``post_write(imm=...)``        — RDMA Write with Immediate Data: also
  generates a work completion in the *remote* CQ, which is what wakes the
  event-based server threads (paper §IV-B, Fig 6b)
* ``post_read(...)``             — RDMA Read; returns the remote data

Remote memory is addressed by ``(rkey, address)`` validated against the
remote host's :class:`~repro.hw.memory.MemoryRegistry`.  The *content* of a
region is a Python object bound to the rkey that implements
``rdma_write(address, length, payload, now)`` / ``rdma_read(address,
length, now)`` — ring buffers and the R-tree chunk area implement this
protocol.  The ``now`` timestamp is how the version-validation machinery
detects reads that overlap concurrent server writes (torn reads).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, List, Optional, Sequence, Tuple

from ..hw.host import Host
from ..net.fabric import Network
from ..net.wire import IB_ACK_SIZE, IB_READ_REQUEST_SIZE, ib_wire_size
from ..sim.kernel import Event, Simulator
from ..sim.resources import Store

WRITE = "write"
WRITE_IMM = "write_imm"
READ = "read"
RECV_IMM = "recv_imm"

#: Sentinel deposited into a CompletionChannel's store per notification
#: (the woken thread never inspects it).
_NOTIFICATION = object()


class RdmaError(Exception):
    """Raised for verb misuse (posting on a torn-down QP, etc.)."""


class Completion:
    """A work completion (WC) delivered to a completion queue."""

    __slots__ = ("wr_id", "opcode", "ok", "imm", "value", "length", "error")

    def __init__(
        self,
        wr_id: int,
        opcode: str,
        ok: bool = True,
        imm: Optional[int] = None,
        value: Any = None,
        length: int = 0,
        error: Optional[BaseException] = None,
    ):
        self.wr_id = wr_id
        self.opcode = opcode
        self.ok = ok
        self.imm = imm
        self.value = value
        self.length = length
        self.error = error

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"err({self.error!r})"
        return f"<WC {self.opcode} wr_id={self.wr_id} {status}>"


class CompletionQueue:
    """Queue of work completions; optionally notifies an event channel."""

    def __init__(self, sim: Simulator, name: str = "cq"):
        self.sim = sim
        self.name = name
        self._store: Store = Store(sim)
        self._channel: Optional["CompletionChannel"] = None
        self.total_completions = 0

    def attach_channel(self, channel: "CompletionChannel") -> None:
        """Register an event channel notified on every new completion."""
        self._channel = channel

    def push(self, completion: Completion) -> None:
        # put_discard: the put's ack event would never be waited on, so
        # pushing a WC costs no event-queue traffic at all.
        self.total_completions += 1
        self._store.put_discard(completion)
        if self._channel is not None:
            self._channel.notify()

    def poll(self) -> Optional[Completion]:
        """Non-blocking: the oldest completion, or None."""
        items = self._store.items
        if items:
            # Direct dequeue; a Store.get here would trigger synchronously
            # and leave a no-op event on the queue.
            return items.popleft()
        return None

    def wait(self):
        """Event yielding the next completion (blocking consume)."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store.items)


class CompletionChannel:
    """The blocking notification path used by event-based fast messaging.

    A server thread yields :meth:`wait` and is descheduled; the NIC
    ``notify()``-s it when a completion lands (Fig 6b step 2).
    """

    def __init__(self, sim: Simulator, name: str = "channel"):
        self.sim = sim
        self.name = name
        self._store: Store = Store(sim)
        self.wakeups = 0

    def notify(self) -> None:
        self.wakeups += 1
        self._store.put_discard(_NOTIFICATION)

    def wait(self):
        """Event yielding when the next notification arrives."""
        return self._store.get()


class QpEndpoint:
    """One side of a reliable-connection queue pair."""

    _wr_ids = itertools.count(1)

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        local: Host,
        remote: Host,
        cq: Optional[CompletionQueue] = None,
        name: str = "qp",
    ):
        self.sim = sim
        self.network = network
        self.local = local
        self.remote = remote
        self.cq = cq or CompletionQueue(sim, name=f"{name}.cq")
        self.name = name
        # Pre-rendered process names (post_write/post_read are hot enough
        # that a per-post f-string shows up in profiles).
        self._write_name = f"{name}.write"
        self._read_name = f"{name}.read"
        self.peer: Optional["QpEndpoint"] = None
        self.destroyed = False
        # Counters for experiment reporting.
        self.writes_posted = 0
        self.reads_posted = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.read_batches = 0

    # -- verbs -------------------------------------------------------------

    def post_write(
        self,
        rkey: int,
        remote_addr: int,
        payload: Any,
        length: int,
        imm: Optional[int] = None,
        wr_id: Optional[int] = None,
        signaled: bool = True,
    ) -> Event:
        """Post an RDMA Write (w/ IMM if ``imm`` given).

        Returns an event that succeeds (with the local completion) once the
        write is acknowledged.  The remote CPU is never involved; if ``imm``
        is set, the remote *NIC* places a RECV_IMM completion in the peer
        CQ when the data lands.
        """
        self._check_alive()
        if length < 0:
            raise ValueError(f"negative length {length}")
        wr_id = wr_id if wr_id is not None else next(self._wr_ids)
        self.writes_posted += 1
        self.bytes_written += length
        done = self.sim.event()
        self.sim.process(
            self._do_write(rkey, remote_addr, payload, length, imm,
                           wr_id, signaled, done),
            name=self._write_name,
        )
        return done

    def post_read(
        self,
        rkey: int,
        remote_addr: int,
        length: int,
        wr_id: Optional[int] = None,
    ) -> Event:
        """Post an RDMA Read; the returned event's value is the data read.

        Costs the remote host NIC processing + tx bandwidth only — by
        construction no remote CPU cycles are consumed.
        """
        self._check_alive()
        if length <= 0:
            raise ValueError(f"read length must be > 0, got {length}")
        wr_id = wr_id if wr_id is not None else next(self._wr_ids)
        self.reads_posted += 1
        self.bytes_read += length
        done = self.sim.event()
        self.sim.process(
            self._do_read(rkey, remote_addr, length, wr_id, done),
            name=self._read_name,
        )
        return done

    def post_read_batch(
        self, reads: Sequence[Tuple[int, int, int]]
    ) -> List[Event]:
        """Post several RDMA Reads with one doorbell (RDMAbox-style).

        ``reads`` is a sequence of ``(rkey, remote_addr, length)`` work
        requests.  The WQEs are chained so the per-post software
        overhead (``rdma_post_overhead_s``) is paid once for the whole
        batch instead of once per read — the NIC processing, wire time
        and read-slot arbitration of each read are unchanged.  Returns
        one completion event per read, in request order.
        """
        self._check_alive()
        events: List[Event] = []
        for i, (rkey, remote_addr, length) in enumerate(reads):
            if length <= 0:
                raise ValueError(f"read length must be > 0, got {length}")
            wr_id = next(self._wr_ids)
            self.reads_posted += 1
            self.bytes_read += length
            done = self.sim.event()
            self.sim.process(
                self._do_read(rkey, remote_addr, length, wr_id, done,
                              charge_post_overhead=(i == 0)),
                name=self._read_name,
            )
            events.append(done)
        if events:
            self.read_batches += 1
        return events

    # -- internals ----------------------------------------------------------

    def _check_alive(self) -> None:
        if self.destroyed:
            raise RdmaError(f"QP {self.name} has been destroyed")
        if self.peer is None:
            raise RdmaError(f"QP {self.name} is not connected")

    def _do_write(
        self,
        rkey: int,
        remote_addr: int,
        payload: Any,
        length: int,
        imm: Optional[int],
        wr_id: int,
        signaled: bool,
        done: Event,
    ) -> Generator:
        # NIC WQE processing is inlined (one timeout each) — process_wqe()
        # is a generator wrapper, and this path underlies every message.
        sim = self.sim
        profile = self.network.profile
        wqe_s = profile.rdma_nic_processing_s
        yield sim.timeout(profile.rdma_post_overhead_s)
        local_nic = self.local.nic
        local_nic.ops_processed += 1
        yield sim.timeout(wqe_s)
        yield from self.network.transfer(
            self.local, self.remote, ib_wire_size(length)
        )
        remote_nic = self.remote.nic
        remote_nic.ops_processed += 1
        yield sim.timeout(wqe_s)
        completion: Optional[Completion] = None
        try:
            target = self._validated_target(rkey, remote_addr, max(length, 1))
            target.rdma_write(remote_addr, length, payload, sim.now)
        except Exception as exc:  # protection fault -> failed completion
            completion = Completion(wr_id, WRITE, ok=False, error=exc)
        if completion is None and imm is not None:
            self.peer.cq.push(
                Completion(wr_id, RECV_IMM, imm=imm, length=length)
            )
        # ACK back to the requester (hardware-level, no payload).
        yield from self.network.transfer(
            self.remote, self.local, IB_ACK_SIZE
        )
        if completion is None:
            opcode = WRITE_IMM if imm is not None else WRITE
            completion = Completion(wr_id, opcode, length=length)
        if signaled:
            self.cq.push(completion)
        if completion.ok:
            done.succeed(completion)
        else:
            done.fail(completion.error)

    def _do_read(
        self,
        rkey: int,
        remote_addr: int,
        length: int,
        wr_id: int,
        done: Event,
        charge_post_overhead: bool = True,
    ) -> Generator:
        sim = self.sim
        profile = self.network.profile
        wqe_s = profile.rdma_nic_processing_s
        if charge_post_overhead:
            yield sim.timeout(profile.rdma_post_overhead_s)
        local_nic = self.local.nic
        slot = local_nic.acquire_read_slot()
        yield slot
        try:
            local_nic.ops_processed += 1
            yield sim.timeout(wqe_s)
            yield from self.network.transfer(
                self.local, self.remote, IB_READ_REQUEST_SIZE
            )
            # Remote side: NIC-only processing; DMA snapshot taken here.
            remote_nic = self.remote.nic
            remote_nic.ops_processed += 1
            yield sim.timeout(wqe_s)
            if remote_nic.fault_injector is not None:
                # Injected responder-side stall (PCIe/DMA contention);
                # delays the snapshot, so concurrent server writes get a
                # larger window to tear it.
                stall = remote_nic.read_stall_s(self.remote.name)
                if stall > 0.0:
                    yield sim.timeout(stall)
            try:
                target = self._validated_target(rkey, remote_addr, length)
                data = target.rdma_read(remote_addr, length, sim.now)
            except Exception as exc:
                yield from self.network.transfer(
                    self.remote, self.local, IB_ACK_SIZE
                )
                done.fail(exc)
                return
            yield from self.network.transfer(
                self.remote, self.local, ib_wire_size(length)
            )
            local_nic.ops_processed += 1
            yield sim.timeout(wqe_s)
            completion = Completion(wr_id, READ, value=data, length=length)
            self.cq.push(completion)
            done.succeed(data)
        finally:
            slot.release()

    def _validated_target(self, rkey: int, address: int, length: int):
        self.remote.memory.validate(rkey, address, length)
        target = self.remote.memory.target_of(rkey)
        if target is None:
            raise RdmaError(
                f"rkey {rkey} on {self.remote.name} has no bound target"
            )
        return target

    def destroy(self) -> None:
        self.destroyed = True


def connect(
    sim: Simulator,
    network: Network,
    host_a: Host,
    host_b: Host,
    name: str = "qp",
) -> tuple:
    """Create a connected RC queue pair; returns (endpoint_a, endpoint_b).

    Stands in for the TCP bootstrap the paper uses to exchange QP numbers
    and registered addresses before RDMA traffic starts.
    """
    end_a = QpEndpoint(sim, network, host_a, host_b, name=f"{name}.a")
    end_b = QpEndpoint(sim, network, host_b, host_a, name=f"{name}.b")
    end_a.peer = end_b
    end_b.peer = end_a
    return end_a, end_b
