"""Transports: TCP/IP (kernel path) and RDMA verbs (one-sided path)."""

from .rdma import (
    READ,
    RECV_IMM,
    WRITE,
    WRITE_IMM,
    Completion,
    CompletionChannel,
    CompletionQueue,
    QpEndpoint,
    RdmaError,
    connect,
)
from .tcp import TcpConnection, TcpMessage, request_response

__all__ = [
    "READ",
    "RECV_IMM",
    "WRITE",
    "WRITE_IMM",
    "Completion",
    "CompletionChannel",
    "CompletionQueue",
    "QpEndpoint",
    "RdmaError",
    "connect",
    "TcpConnection",
    "TcpMessage",
    "request_response",
]
