"""TCP/IP transport model — the paper's baseline communication path.

Figure 4 of the paper contrasts TCP/IP with RDMA: TCP crosses the OS kernel
on *both* hosts (socket copies, protocol processing, interrupts) and always
involves the remote CPU.  This model charges those costs explicitly:

* the sender burns ``tcp_kernel_per_msg_s + bytes * tcp_kernel_per_byte_s``
  of its own CPU (contended, via the host's :class:`CorePool`);
* the message serializes over the shared server access link;
* the receiver burns the same kernel cost on *its* CPU before the payload
  reaches the application's receive queue.

This is why the TCP baselines in Figs 10-14 stay an order of magnitude
behind Catfish: the remote-CPU charge makes the server saturate early, and
the kernel latency inflates small-message RTTs.
"""

from __future__ import annotations

from typing import Any, Generator

from ..hw.host import Host
from ..net.fabric import Network
from ..sim.kernel import Simulator
from ..sim.resources import Store


class TcpMessage:
    """An application message with its payload size accounted."""

    __slots__ = ("payload", "size")

    def __init__(self, payload: Any, size: int):
        if size < 0:
            raise ValueError(f"negative message size {size}")
        self.payload = payload
        self.size = size


class TcpConnection:
    """A bidirectional stream between one client and the server."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        client: Host,
        server: Host,
        name: str = "tcp",
    ):
        self.sim = sim
        self.network = network
        self.client = client
        self.server = server
        self.name = name
        #: Messages awaiting the server application's recv().
        self.server_inbox: Store = Store(sim)
        #: Messages awaiting the client application's recv().
        self.client_inbox: Store = Store(sim)
        self.closed = False

    # -- internals --------------------------------------------------------

    def _kernel_cost(self, size: int) -> float:
        p = self.network.profile
        return p.tcp_kernel_per_msg_s + size * p.tcp_kernel_per_byte_s

    def _deliver(
        self, src: Host, dst: Host, inbox: Store, message: TcpMessage
    ) -> Generator:
        wire = self.network.profile.wire_size(message.size)
        yield from self.network.transfer(src, dst, wire)
        # Receive-side kernel processing on the destination CPU.
        yield from dst.cpu.execute(self._kernel_cost(message.size))
        yield inbox.put(message)

    def _send(
        self, src: Host, dst: Host, inbox: Store, payload: Any, size: int
    ) -> Generator:
        if self.closed:
            raise ConnectionError(f"connection {self.name} is closed")
        message = TcpMessage(payload, size)
        # Send-side kernel processing blocks the sending thread.
        yield from src.cpu.execute(self._kernel_cost(size))
        # Transit + remote kernel processing continue asynchronously so the
        # sender can pipeline (matches non-blocking socket + kernel buffer).
        self.sim.process(
            self._deliver(src, dst, inbox, message),
            name=f"{self.name}.deliver",
        )

    # -- client side ------------------------------------------------------

    def client_send(self, payload: Any, size: int) -> Generator:
        """Send to the server; completes after local kernel processing."""
        yield from self._send(self.client, self.server, self.server_inbox,
                              payload, size)

    def client_recv(self):
        """Event yielding the next server->client message."""
        return self.client_inbox.get()

    # -- server side ------------------------------------------------------

    def server_send(self, payload: Any, size: int) -> Generator:
        """Send to the client; completes after local kernel processing."""
        yield from self._send(self.server, self.client, self.client_inbox,
                              payload, size)

    def server_recv(self):
        """Event yielding the next client->server message."""
        return self.server_inbox.get()

    def close(self) -> None:
        self.closed = True


def request_response(
    sim: Simulator,
    conn: TcpConnection,
    payload: Any,
    request_size: int,
    expect_responses: int = 1,
) -> Generator:
    """Client helper: send one request, collect ``expect_responses`` replies.

    Returns the list of reply payloads (process generator).
    """
    yield from conn.client_send(payload, request_size)
    replies = []
    for _ in range(expect_responses):
        message: TcpMessage = yield conn.client_recv()
        replies.append(message.payload)
    return replies
