"""Oracle verification of routed results.

The sharded cluster's correctness contract is checkable exactly because
the partition is a *function* of (dataset, K): the union of the shard
slices is the dataset, shard contents are disjoint, and the per-shard
R*-trees and a single bulk-loaded tree over the whole dataset are all
pure ground truth for read queries.  Two checks follow:

* a **complete** :class:`~repro.shard.router.PartialResult` must equal
  the single-tree oracle's answer — sharding invisible when healthy;
* a **degraded** one must equal the union of its *answering* shards'
  oracle answers — missing exactly the lost shards' contribution,
  nothing more, nothing less.

Used by ``repro shard`` (CLI verification run), the shard-loss chaos
scenario, and the test suite.

Under an elastic plane (``rebalance`` mode) the per-shard trees move
*during* the run — migration copies an item to its destination before
deleting it from its source — so the contract changes shape:

* a **complete** result must still equal the single-tree oracle
  *exactly*: every item lives in >= 1 shard tree at every instant and
  the router's merge is dedup-exact, so migration must be invisible to
  healthy reads (this is the property the rebalance chaos scenarios
  pin);
* a **degraded** result can no longer be replayed against "the answering
  shards' trees" (those trees were mid-flight when the query ran), so it
  is checked for *soundness* instead: nothing outside the global oracle,
  counts within bounds, nearest pairs geometrically valid;
* transient duplicates absorbed by the merge are expected (the copy
  window), so ``duplicates_dropped`` stops being a failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..client.base import OP_COUNT, OP_NEAREST, OP_SEARCH, READ_OPS, Request
from ..rtree.bulk import bulk_load
from .router import OK, PartialResult


def _ok_shards(result: PartialResult) -> List[int]:
    return [s for s, status in result.statuses.items() if status == OK]


def expected_search_ids(runner, tree, request: Request,
                        result: PartialResult) -> Tuple[int, ...]:
    """Oracle data ids: global tree when complete, union of the answering
    shards' trees when degraded (shard contents are disjoint)."""
    if result.complete:
        return tuple(sorted(tree.search(request.rect).data_ids))
    ids: List[int] = []
    for shard_id in _ok_shards(result):
        shard_tree = runner.shards[shard_id].server.tree
        ids.extend(shard_tree.search(request.rect).data_ids)
    return tuple(sorted(ids))


def expected_nearest(runner, request: Request,
                     scope_shards) -> List[Tuple[float, int]]:
    """k nearest over ``scope_shards``, merged exactly as the router
    merges: by (distance², data id)."""
    cx, cy = request.rect.center()
    candidates: List[Tuple[float, int]] = []
    for shard_id in scope_shards:
        shard_tree = runner.shards[shard_id].server.tree
        for rect, data_id in shard_tree.nearest(cx, cy, request.k).matches:
            candidates.append((rect.min_dist2_point(cx, cy), data_id))
    candidates.sort()
    return candidates[:request.k]


def result_consistent(runner, tree, request: Request,
                      result: PartialResult) -> bool:
    """True iff one routed read's result matches its oracle."""
    if request.op == OP_SEARCH:
        got = tuple(sorted(d for _r, d in result.results))
        return got == expected_search_ids(runner, tree, request, result)
    if request.op == OP_COUNT:
        expected = expected_search_ids(runner, tree, request, result)
        return result.results == len(expected)
    if request.op == OP_NEAREST:
        scope = (runner.partition.shard_map.nonempty_shards()
                 if result.complete else _ok_shards(result))
        cx, cy = request.rect.center()
        got = [(r.min_dist2_point(cx, cy), d) for r, d in result.results]
        return got == expected_nearest(runner, request, scope)
    raise ValueError(f"cannot oracle-check op {request.op!r}")


def result_consistent_rebalance(runner, tree, request: Request,
                                result: PartialResult) -> bool:
    """Oracle check for one routed read of a *rebalancing* run.

    Complete results are held to the exact single-tree oracle (migration
    must be invisible); degraded results are checked for soundness — the
    shard trees the answering shards held at query time no longer exist,
    so exact degraded replay is undefined.
    """
    if request.op == OP_SEARCH:
        got = tuple(sorted(d for _r, d in result.results))
        oracle = tuple(sorted(tree.search(request.rect).data_ids))
        if result.complete:
            return got == oracle
        # Sound: no invented ids, no id reported twice.
        return len(got) == len(set(got)) and set(got) <= set(oracle)
    if request.op == OP_COUNT:
        oracle_n = len(tree.search(request.rect).data_ids)
        if result.complete:
            return result.results == oracle_n
        return 0 <= result.results <= oracle_n
    if request.op == OP_NEAREST:
        cx, cy = request.rect.center()
        got = [(r.min_dist2_point(cx, cy), d) for r, d in result.results]
        if result.complete:
            # Final trees partition the (read-only) dataset exactly, so
            # the all-shards union replays the global top-k with the
            # router's own (distance^2, id) tie-breaking.
            return got == expected_nearest(
                runner, request, range(runner.n_shards)
            )
        # Sound: real dataset ids, unique, router-ordered, <= k.
        dataset_ids = {data_id for _rect, data_id in runner.dataset}
        ids = [d for _d2, d in got]
        if len(ids) != len(set(ids)) or len(got) > request.k:
            return False
        return set(ids) <= dataset_ids and got == sorted(got)
    raise ValueError(f"cannot oracle-check op {request.op!r}")


@dataclass
class VerificationSummary:
    """Outcome of checking every recorded routed read against the oracle."""

    checked: int = 0
    complete_results: int = 0
    degraded_results: int = 0
    complete_mismatches: int = 0
    degraded_mismatches: int = 0
    duplicates_dropped: int = 0
    skipped_writes: int = 0
    #: Set for rebalancing runs: the migration copy window legitimately
    #: produces merge-absorbed duplicates, so they stop failing ``ok``.
    allow_duplicates: bool = False

    @property
    def ok(self) -> bool:
        return (self.checked > 0
                and self.complete_mismatches == 0
                and self.degraded_mismatches == 0
                and (self.allow_duplicates
                     or self.duplicates_dropped == 0))

    def describe(self) -> List[str]:
        return [
            f"checked {self.checked} read results against the "
            f"single-tree oracle",
            f"  complete: {self.complete_results} "
            f"({self.complete_mismatches} mismatches)",
            f"  degraded: {self.degraded_results} "
            f"({self.degraded_mismatches} mismatches vs surviving shards)",
            f"  duplicates dropped by merge: {self.duplicates_dropped}",
        ]


def verify_routed_results(runner, tree=None) -> VerificationSummary:
    """Check every logged result of a ``record_results=True`` run.

    Requires a read-only (or at least read-checkable) run: writes in the
    log are skipped, but reads issued *after* a write would be checked
    against a stale oracle — verify only read-only workloads.
    """
    if tree is None:
        tree = bulk_load(runner.dataset,
                         max_entries=runner.config.max_entries)
    rebalancing = getattr(runner, "rebalancer", None) is not None
    summary = VerificationSummary(allow_duplicates=rebalancing)
    for router in runner.routers:
        for _index, request, result, _t in router.log:
            if request.op not in READ_OPS:
                summary.skipped_writes += 1
                continue
            summary.checked += 1
            summary.duplicates_dropped += result.duplicates_dropped
            consistent = (
                result_consistent_rebalance(runner, tree, request, result)
                if rebalancing
                else result_consistent(runner, tree, request, result)
            )
            if result.complete:
                summary.complete_results += 1
                summary.complete_mismatches += 0 if consistent else 1
            else:
                summary.degraded_results += 1
                summary.degraded_mismatches += 0 if consistent else 1
    return summary
