"""Sharded multi-server Catfish: STR partitioning + scatter-gather router.

Beyond the paper: K independent Catfish servers (each a full single-server
stack — R*-tree, fast-messaging rings, heartbeat, worker pool, adaptive
offload) front a spatially partitioned dataset, and a client-side
scatter-gather router fans queries out to intersecting shards, keeping
per-shard adaptive back-off state and degrading to partial results when a
shard is lost.  See docs/architecture.md ("Sharding").
"""

from .partition import (
    Partition,
    ShardInfo,
    ShardMap,
    TileEntry,
    partition_str,
    tile_contains,
)
from .rebalance import RebalanceConfig, RebalanceController, RebalanceStats
from .router import (
    OFFLOAD_ERROR,
    OK,
    SKIPPED,
    TIMEOUT,
    PartialResult,
    RouterStats,
    ScatterGatherRouter,
    merge_search_replies,
)
from .deploy import ShardedExperimentRunner, run_sharded_experiment

__all__ = [
    "OFFLOAD_ERROR",
    "OK",
    "SKIPPED",
    "TIMEOUT",
    "Partition",
    "PartialResult",
    "RebalanceConfig",
    "RebalanceController",
    "RebalanceStats",
    "RouterStats",
    "ScatterGatherRouter",
    "ShardInfo",
    "ShardMap",
    "ShardedExperimentRunner",
    "TileEntry",
    "merge_search_replies",
    "partition_str",
    "run_sharded_experiment",
    "tile_contains",
]
