"""Sharded chaos scenarios: shard loss, rebalance under fault, racing writes.

Runs a mixed read-only workload through a 4-shard cluster while one
shard fail-stops for the fault window, then checks the sharded system's
two-sided correctness contract:

* every *complete* :class:`~repro.shard.router.PartialResult` is exactly
  the single-tree oracle's answer (sharding is invisible when healthy);
* every *degraded* result is exactly the union of the surviving shards'
  oracle answers — a strict subset of the truth with per-shard blame,
  never a wrong or duplicated answer.

The harness mirrors :func:`repro.faults.scenarios.run_scenario`'s report
shape, so ``repro chaos`` and the smoke/test tooling treat shard-loss
like any other scenario (invariants, fired-counters, replayable
fingerprint).

Two further scenarios stress the *elastic* plane (PR 10):

* **rebalance-under-fault** — a skewed read-only workload drives tile
  splits and live migrations while the link drops 30% of packets; every
  complete result must still match the single-tree oracle exactly and
  every degraded result must stay sound (epoch-cut exactly-once under
  fault pressure);
* **migration-racing-writes** — a hybrid write workload races the
  migration copy/cut-over/drain windows; after settling, every dataset
  id and every acked insert must live in exactly one shard tree
  (conservation: migration neither loses nor duplicates racing writes).
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, List, Tuple

from ..client.base import OP_INSERT, READ_OPS
from ..cluster.config import ExperimentConfig, RebalanceConfig
from ..faults.plan import BOTH, FaultPlan, LinkFault, ShardLoss
from ..faults.scenarios import ChaosConfig, ScenarioReport
from ..rtree.bulk import bulk_load
from ..sim.kernel import SimulationError, all_of
from .deploy import ShardedExperimentRunner
from .rebalance import RebalanceStats
from .router import RouterStats
from .verify import result_consistent, result_consistent_rebalance

#: The scenario's fixed topology: 4 shards, shard 1 lost for the window.
N_SHARDS = 4
LOST_SHARDS = (1,)


def shard_loss_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((
        ShardLoss(cfg.fault_start, cfg.fault_end, shard_ids=LOST_SHARDS),
    ))


def _experiment_config(cfg: ChaosConfig) -> ExperimentConfig:
    return ExperimentConfig(
        scheme="catfish-sharded",
        fabric="ib-100g",
        n_clients=cfg.n_clients,
        requests_per_client=cfg.requests_per_client,
        workload_kind="mixed",
        scale=str(cfg.query_scale),
        dataset_size=cfg.dataset_size,
        max_entries=cfg.max_entries,
        server_cores=cfg.server_cores,
        adaptive=cfg.adaptive,
        heartbeat_interval=cfg.heartbeat_interval,
        seed=cfg.seed,
        fault_plan=shard_loss_plan(cfg),
        retry=cfg.retry,
        breaker=cfg.breaker,
        stale_after_missing=cfg.stale_after_missing,
        max_queue_depth=cfg.max_queue_depth,
        n_shards=N_SHARDS,
    )


def run_shard_loss(cfg: ChaosConfig) -> ScenarioReport:
    """Run the scenario under ``cfg``; returns its report (failures are
    data, like every other chaos scenario)."""
    runner = ShardedExperimentRunner(_experiment_config(cfg),
                                     record_results=True)
    sim = runner.sim
    finished = True
    try:
        sim.run_until_triggered(all_of(sim, runner._drivers),
                                limit=cfg.time_limit)
    except SimulationError:
        finished = False
    sim.run(until=sim.now + cfg.grace_s)

    # Read-only workload: both the single bulk-loaded tree and the
    # per-shard trees are pure ground truth for every query.
    global_tree = bulk_load(runner.dataset, max_entries=cfg.max_entries)

    records: List[Tuple[int, int, float, str, bool]] = []
    complete_mismatches = 0
    degraded_mismatches = 0
    degraded_total = 0
    degraded_in_window = 0
    duplicates_dropped = 0
    for client_id, router in enumerate(runner.routers):
        for index, request, result, t in router.log:
            duplicates_dropped += result.duplicates_dropped
            if not result.complete:
                degraded_total += 1
                if cfg.fault_start <= t < cfg.fault_end + cfg.grace_s:
                    degraded_in_window += 1
            if not result_consistent(runner, global_tree, request, result):
                if result.complete:
                    complete_mismatches += 1
                else:
                    degraded_mismatches += 1
            records.append((client_id, index, t,
                            request.op, result.complete))

    issued = cfg.total_requests
    completed = len(records)
    times = sorted(t for _c, _i, t, _op, _ok in records)
    pre = [t for t in times if t < cfg.fault_start]
    post = [t for t in times if t >= cfg.fault_end]
    pre_rate = len(pre) / cfg.fault_start if pre else 0.0
    post_span = (times[-1] - cfg.fault_end) if post else 0.0
    post_rate = len(post) / post_span if post_span > 0.0 else 0.0

    def _router_sum(field: str) -> int:
        return sum(int(getattr(r, field)) for r in runner.router_stats)

    counters: Dict[str, int] = {
        "shards-lost": int(runner.injector.shards_lost),
        "shards-restored": int(runner.injector.shards_restored),
        "workers-crashed": int(runner.injector.workers_crashed),
        "workers-restarted": int(runner.injector.workers_restarted),
        "beats-blacked-out": int(runner.injector.beats_blacked_out),
    }
    for field in RouterStats.FIELDS:
        counters[field.replace("_", "-")] = _router_sum(field)

    report = ScenarioReport(
        name="shard-loss",
        seed=cfg.seed,
        issued=issued,
        completed=completed,
        timeouts=_router_sum("shard_timeouts"),
        offload_errors=_router_sum("shard_offload_errors"),
        mismatches=complete_mismatches + degraded_mismatches,
        retries=sum(int(s.request_retries) for s in runner.client_stats),
        duplicates_suppressed=sum(
            int(s.duplicates_suppressed) for s in runner.client_stats
        ),
        unexpected_messages=sum(
            int(s.unexpected_messages) for s in runner.client_stats
        ),
        pre_rate=pre_rate,
        post_rate=post_rate,
        end_time=sim.now,
        counters=counters,
    )

    checks: List[Tuple[str, bool, str]] = []
    checks.append((
        "finished-in-time", finished,
        f"drivers {'finished' if finished else 'still running'} at "
        f"t={sim.now * 1e3:.3f}ms (limit {cfg.time_limit * 1e3:.0f}ms)",
    ))
    checks.append((
        "completed", completed == issued,
        f"{completed}/{issued} requests returned a PartialResult "
        f"({degraded_total} degraded)",
    ))
    checks.append((
        "complete-results-exact", complete_mismatches == 0,
        f"{complete_mismatches} complete results disagreed with the "
        f"single-tree oracle",
    ))
    checks.append((
        "degraded-results-correct", degraded_mismatches == 0,
        f"{degraded_mismatches} of {degraded_total} degraded results "
        f"disagreed with their surviving shards' oracle",
    ))
    checks.append((
        "exactly-once",
        duplicates_dropped == 0 and report.unexpected_messages == 0,
        f"{duplicates_dropped} duplicate ids reached the merge, "
        f"{report.unexpected_messages} unattributable messages "
        f"({report.duplicates_suppressed} late answers suppressed)",
    ))
    checks.append((
        "partials-observed", degraded_in_window > 0,
        f"{degraded_in_window} degraded results during the outage "
        f"(loss must be client-visible, not silently absorbed)",
    ))
    if pre_rate > 0.0 and post_rate > 0.0:
        recovered = post_rate >= cfg.recovery_floor * pre_rate
        detail = (f"post {post_rate / 1e3:.0f} kops vs pre "
                  f"{pre_rate / 1e3:.0f} kops "
                  f"(floor {cfg.recovery_floor:.0%})")
    else:
        recovered, detail = True, "vacuous (no pre- or post-fault sample)"
    checks.append(("throughput-recovered", recovered, detail))
    for key in ("shards-lost", "shards-restored", "workers-crashed"):
        checks.append((
            f"fault-fired:{key}", counters[key] > 0,
            f"counter = {counters[key]}",
        ))
    report.invariants = checks

    digest = hashlib.sha256()
    digest.update(f"shard-loss:{cfg.seed}:{N_SHARDS}\n".encode())
    for client_id, index, t, op, complete in sorted(records):
        digest.update(
            f"{client_id},{index},{t:.15e},{op},{int(complete)}\n".encode()
        )
    for key in sorted(counters):
        digest.update(f"{key}={counters[key]}\n".encode())
    report._fingerprint = digest.hexdigest()[:16]
    return report


# -- the elastic-plane scenarios ---------------------------------------------

#: Aggressive controller tuning shared by both rebalance scenarios: the
#: chaos runs are short (a few ms simulated), so the controller must
#: observe, split and migrate inside that horizon at every test sizing.
REBALANCE_TUNING = RebalanceConfig(
    interval=0.02e-3,
    split_ratio=1.2,
    min_split_items=16,
    max_tiles=32,
    drain_s=0.05e-3,
)


def rebalance_fault_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((
        LinkFault(cfg.fault_start, cfg.fault_end, direction=BOTH,
                  loss_prob=0.3, retransmit_delay_s=30e-6),
    ))


def _rebalance_experiment_config(cfg: ChaosConfig, workload: str,
                                 fault_plan) -> ExperimentConfig:
    return ExperimentConfig(
        scheme="catfish-sharded",
        fabric="ib-100g",
        n_clients=cfg.n_clients,
        requests_per_client=cfg.requests_per_client,
        workload_kind=workload,
        scale=str(cfg.query_scale),
        dataset_size=cfg.dataset_size,
        max_entries=cfg.max_entries,
        server_cores=cfg.server_cores,
        adaptive=cfg.adaptive,
        heartbeat_interval=cfg.heartbeat_interval,
        seed=cfg.seed,
        fault_plan=fault_plan,
        retry=cfg.retry,
        breaker=cfg.breaker,
        stale_after_missing=cfg.stale_after_missing,
        max_queue_depth=cfg.max_queue_depth,
        n_shards=N_SHARDS,
        rebalance=REBALANCE_TUNING,
    )


def _run_rebalance_cluster(name: str, cfg: ChaosConfig, workload: str,
                           fault_plan):
    """Shared run harness: build, drive to completion, settle migrations.

    Returns ``(runner, finished, records)`` where ``records`` is the
    fingerprintable per-request log shared by both scenarios.
    """
    runner = ShardedExperimentRunner(
        _rebalance_experiment_config(cfg, workload, fault_plan),
        record_results=True,
    )
    sim = runner.sim
    finished = True
    try:
        sim.run_until_triggered(all_of(sim, runner._drivers),
                                limit=cfg.time_limit)
    except SimulationError:
        finished = False
    sim.run(until=sim.now + cfg.grace_s)
    runner._elapsed_at_done = sim.now
    if runner.rebalancer is not None:
        runner._settle_rebalancer()
    records: List[Tuple[int, int, float, str, bool]] = []
    for client_id, router in enumerate(runner.routers):
        for index, request, result, t in router.log:
            records.append((client_id, index, t,
                            request.op, result.complete))
    return runner, finished, records


def _rebalance_counters(runner) -> Dict[str, int]:
    counters: Dict[str, int] = {}
    if runner.injector is not None:
        counters["packets-dropped"] = int(runner.injector.packets_dropped)
    for field in RouterStats.FIELDS + RouterStats.REBALANCE_FIELDS:
        counters[field.replace("_", "-")] = sum(
            int(getattr(r, field)) for r in runner.router_stats
        )
    for field in RebalanceStats.FIELDS:
        counters["rebalance-" + field.replace("_", "-")] = int(
            getattr(runner.rebalance_stats, field)
        )
    counters["map-epoch"] = runner.live_map.epoch
    counters["tiles"] = len(runner.live_map.tiles)
    return counters


def _fingerprint(report: ScenarioReport, name: str, cfg: ChaosConfig,
                 records, counters: Dict[str, int]) -> None:
    digest = hashlib.sha256()
    digest.update(f"{name}:{cfg.seed}:{N_SHARDS}\n".encode())
    for client_id, index, t, op, complete in sorted(records):
        digest.update(
            f"{client_id},{index},{t:.15e},{op},{int(complete)}\n".encode()
        )
    for key in sorted(counters):
        digest.update(f"{key}={counters[key]}\n".encode())
    report._fingerprint = digest.hexdigest()[:16]


def run_rebalance_under_fault(cfg: ChaosConfig) -> ScenarioReport:
    """Skewed reads drive splits + migrations while the link drops 30%."""
    runner, finished, records = _run_rebalance_cluster(
        "rebalance-under-fault", cfg, "search-skewed",
        rebalance_fault_plan(cfg),
    )
    sim = runner.sim
    global_tree = bulk_load(runner.dataset, max_entries=cfg.max_entries)

    complete_mismatches = 0
    degraded_mismatches = 0
    degraded_total = 0
    duplicates_dropped = 0
    for router in runner.routers:
        for _index, request, result, _t in router.log:
            duplicates_dropped += result.duplicates_dropped
            if not result.complete:
                degraded_total += 1
            if not result_consistent_rebalance(runner, global_tree,
                                               request, result):
                if result.complete:
                    complete_mismatches += 1
                else:
                    degraded_mismatches += 1

    counters = _rebalance_counters(runner)
    stats = runner.rebalance_stats
    issued = cfg.total_requests
    completed = len(records)
    report = ScenarioReport(
        name="rebalance-under-fault",
        seed=cfg.seed,
        issued=issued,
        completed=completed,
        timeouts=counters["shard-timeouts"],
        offload_errors=counters["shard-offload-errors"],
        mismatches=complete_mismatches + degraded_mismatches,
        retries=sum(int(s.request_retries) for s in runner.client_stats),
        duplicates_suppressed=sum(
            int(s.duplicates_suppressed) for s in runner.client_stats
        ),
        unexpected_messages=sum(
            int(s.unexpected_messages) for s in runner.client_stats
        ),
        pre_rate=0.0,
        post_rate=0.0,
        end_time=sim.now,
        counters=counters,
    )

    try:
        runner.live_map.check_invariants()
        invariants_hold, invariant_detail = True, "tiles disjoint + covering"
    except ValueError as exc:
        invariants_hold, invariant_detail = False, str(exc)
    occupancy = runner.shard_occupancy()
    checks: List[Tuple[str, bool, str]] = [
        ("finished-in-time", finished,
         f"drivers {'finished' if finished else 'still running'} at "
         f"t={sim.now * 1e3:.3f}ms (limit {cfg.time_limit * 1e3:.0f}ms)"),
        ("completed", completed == issued,
         f"{completed}/{issued} requests returned a result "
         f"({degraded_total} degraded)"),
        ("complete-results-exact", complete_mismatches == 0,
         f"{complete_mismatches} complete results disagreed with the "
         f"single-tree oracle (migration must be invisible)"),
        ("degraded-results-sound", degraded_mismatches == 0,
         f"{degraded_mismatches} of {degraded_total} degraded results "
         f"were unsound (invented ids / bad ordering)"),
        ("splits-fired", int(stats.splits) > 0,
         f"{int(stats.splits)} tile splits"),
        ("migrations-completed",
         int(stats.migrations_completed) > 0
         and not runner.rebalancer.active_migrations,
         f"{int(stats.migrations_completed)} migrations completed, "
         f"{int(stats.items_migrated)} items moved"),
        ("items-conserved", sum(occupancy) == cfg.dataset_size,
         f"final occupancy {occupancy} sums to {sum(occupancy)} "
         f"(dataset {cfg.dataset_size})"),
        ("map-invariants", invariants_hold, invariant_detail),
        ("fault-fired:packets-dropped",
         counters.get("packets-dropped", 0) > 0,
         f"counter = {counters.get('packets-dropped', 0)}"),
    ]
    report.invariants = checks
    _fingerprint(report, "rebalance-under-fault", cfg, records, counters)
    return report


def run_migration_racing_writes(cfg: ChaosConfig) -> ScenarioReport:
    """Hybrid writes race the migration copy/cut-over/drain windows."""
    runner, finished, records = _run_rebalance_cluster(
        "migration-racing-writes", cfg, "hybrid", None,
    )
    sim = runner.sim
    stats = runner.rebalance_stats
    windows = runner.rebalancer.migration_windows

    acked_inserts: List[int] = []
    unacked_inserts: List[int] = []
    inserts_in_window = 0
    duplicate_read_ids = 0
    for router in runner.routers:
        for _index, request, result, t in router.log:
            if request.op == OP_INSERT:
                # A complete insert was acked by its owner shard (the
                # FM reply payload itself is an empty segment list).
                if result.complete:
                    acked_inserts.append(request.data_id)
                    if any(start <= t <= (end if end is not None else t)
                           for start, end in windows):
                        inserts_in_window += 1
                else:
                    # A timed-out insert may still have been applied
                    # server-side before the ack was lost: ambiguous.
                    unacked_inserts.append(request.data_id)
            elif request.op in READ_OPS and isinstance(result.results,
                                                       list):
                ids = [d for _r, d in result.results]
                duplicate_read_ids += len(ids) - len(set(ids))

    # Conservation: after settling, the union of the shard trees must
    # hold the dataset plus every acked insert exactly once each.
    # Unacked (timed-out) insert attempts are ambiguous — the server
    # may have applied them before the reply was lost — so their ids
    # are allowed to appear at most once, but nothing else may.
    held: List[int] = []
    for stack in runner.shards:
        held.extend(
            entry.data_id
            for node in stack.server.tree.nodes.values()
            if node.level == 0
            for entry in node.entries
        )
    held_counts = Counter(held)
    expected_ids = sorted(
        [data_id for _rect, data_id in runner.dataset] + acked_inserts
    )
    expected_set = set(expected_ids)
    ambiguous = set(unacked_inserts) - expected_set
    missing = [d for d in expected_ids if held_counts.get(d, 0) != 1]
    extras = [
        d for d, n in held_counts.items()
        if d not in expected_set and (d not in ambiguous or n != 1)
    ]
    conserved = not missing and not extras

    counters = _rebalance_counters(runner)
    counters["acked-inserts"] = len(acked_inserts)
    counters["inserts-in-migration-window"] = inserts_in_window
    issued = cfg.total_requests
    completed = len(records)
    report = ScenarioReport(
        name="migration-racing-writes",
        seed=cfg.seed,
        issued=issued,
        completed=completed,
        timeouts=counters["shard-timeouts"],
        offload_errors=counters["shard-offload-errors"],
        mismatches=0 if conserved else 1,
        retries=sum(int(s.request_retries) for s in runner.client_stats),
        duplicates_suppressed=sum(
            int(s.duplicates_suppressed) for s in runner.client_stats
        ),
        unexpected_messages=sum(
            int(s.unexpected_messages) for s in runner.client_stats
        ),
        pre_rate=0.0,
        post_rate=0.0,
        end_time=sim.now,
        counters=counters,
    )

    try:
        runner.live_map.check_invariants()
        invariants_hold, invariant_detail = True, "tiles disjoint + covering"
    except ValueError as exc:
        invariants_hold, invariant_detail = False, str(exc)
    checks: List[Tuple[str, bool, str]] = [
        ("finished-in-time", finished,
         f"drivers {'finished' if finished else 'still running'} at "
         f"t={sim.now * 1e3:.3f}ms (limit {cfg.time_limit * 1e3:.0f}ms)"),
        ("completed", completed == issued,
         f"{completed}/{issued} requests returned a result"),
        ("migrations-completed",
         int(stats.migrations_completed) > 0
         and not runner.rebalancer.active_migrations,
         f"{int(stats.migrations_completed)} migrations completed, "
         f"{int(stats.items_migrated)} items moved"),
        ("writes-raced-migration", inserts_in_window > 0,
         f"{inserts_in_window} of {len(acked_inserts)} acked inserts "
         f"landed inside a migration window"),
        ("conservation-exact", conserved,
         f"{len(held)} items across final trees vs "
         f"{len(expected_ids)} expected (dataset + acked inserts, "
         f"{len(ambiguous)} unacked attempts ambiguous), "
         f"{'exact' if conserved else 'MISMATCH'}"),
        ("reads-exactly-once", duplicate_read_ids == 0,
         f"{duplicate_read_ids} duplicate ids delivered to clients"),
        ("map-invariants", invariants_hold, invariant_detail),
    ]
    report.invariants = checks
    _fingerprint(report, "migration-racing-writes", cfg, records, counters)
    return report
