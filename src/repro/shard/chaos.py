"""The shard-loss chaos scenario: lose a shard, degrade correctly.

Runs a mixed read-only workload through a 4-shard cluster while one
shard fail-stops for the fault window, then checks the sharded system's
two-sided correctness contract:

* every *complete* :class:`~repro.shard.router.PartialResult` is exactly
  the single-tree oracle's answer (sharding is invisible when healthy);
* every *degraded* result is exactly the union of the surviving shards'
  oracle answers — a strict subset of the truth with per-shard blame,
  never a wrong or duplicated answer.

The harness mirrors :func:`repro.faults.scenarios.run_scenario`'s report
shape, so ``repro chaos`` and the smoke/test tooling treat shard-loss
like any other scenario (invariants, fired-counters, replayable
fingerprint).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from ..cluster.config import ExperimentConfig
from ..faults.plan import FaultPlan, ShardLoss
from ..faults.scenarios import ChaosConfig, ScenarioReport
from ..rtree.bulk import bulk_load
from ..sim.kernel import SimulationError, all_of
from .deploy import ShardedExperimentRunner
from .router import RouterStats
from .verify import result_consistent

#: The scenario's fixed topology: 4 shards, shard 1 lost for the window.
N_SHARDS = 4
LOST_SHARDS = (1,)


def shard_loss_plan(cfg: ChaosConfig) -> FaultPlan:
    return FaultPlan((
        ShardLoss(cfg.fault_start, cfg.fault_end, shard_ids=LOST_SHARDS),
    ))


def _experiment_config(cfg: ChaosConfig) -> ExperimentConfig:
    return ExperimentConfig(
        scheme="catfish-sharded",
        fabric="ib-100g",
        n_clients=cfg.n_clients,
        requests_per_client=cfg.requests_per_client,
        workload_kind="mixed",
        scale=str(cfg.query_scale),
        dataset_size=cfg.dataset_size,
        max_entries=cfg.max_entries,
        server_cores=cfg.server_cores,
        adaptive=cfg.adaptive,
        heartbeat_interval=cfg.heartbeat_interval,
        seed=cfg.seed,
        fault_plan=shard_loss_plan(cfg),
        retry=cfg.retry,
        breaker=cfg.breaker,
        stale_after_missing=cfg.stale_after_missing,
        max_queue_depth=cfg.max_queue_depth,
        n_shards=N_SHARDS,
    )


def run_shard_loss(cfg: ChaosConfig) -> ScenarioReport:
    """Run the scenario under ``cfg``; returns its report (failures are
    data, like every other chaos scenario)."""
    runner = ShardedExperimentRunner(_experiment_config(cfg),
                                     record_results=True)
    sim = runner.sim
    finished = True
    try:
        sim.run_until_triggered(all_of(sim, runner._drivers),
                                limit=cfg.time_limit)
    except SimulationError:
        finished = False
    sim.run(until=sim.now + cfg.grace_s)

    # Read-only workload: both the single bulk-loaded tree and the
    # per-shard trees are pure ground truth for every query.
    global_tree = bulk_load(runner.dataset, max_entries=cfg.max_entries)

    records: List[Tuple[int, int, float, str, bool]] = []
    complete_mismatches = 0
    degraded_mismatches = 0
    degraded_total = 0
    degraded_in_window = 0
    duplicates_dropped = 0
    for client_id, router in enumerate(runner.routers):
        for index, request, result, t in router.log:
            duplicates_dropped += result.duplicates_dropped
            if not result.complete:
                degraded_total += 1
                if cfg.fault_start <= t < cfg.fault_end + cfg.grace_s:
                    degraded_in_window += 1
            if not result_consistent(runner, global_tree, request, result):
                if result.complete:
                    complete_mismatches += 1
                else:
                    degraded_mismatches += 1
            records.append((client_id, index, t,
                            request.op, result.complete))

    issued = cfg.total_requests
    completed = len(records)
    times = sorted(t for _c, _i, t, _op, _ok in records)
    pre = [t for t in times if t < cfg.fault_start]
    post = [t for t in times if t >= cfg.fault_end]
    pre_rate = len(pre) / cfg.fault_start if pre else 0.0
    post_span = (times[-1] - cfg.fault_end) if post else 0.0
    post_rate = len(post) / post_span if post_span > 0.0 else 0.0

    def _router_sum(field: str) -> int:
        return sum(int(getattr(r, field)) for r in runner.router_stats)

    counters: Dict[str, int] = {
        "shards-lost": int(runner.injector.shards_lost),
        "shards-restored": int(runner.injector.shards_restored),
        "workers-crashed": int(runner.injector.workers_crashed),
        "workers-restarted": int(runner.injector.workers_restarted),
        "beats-blacked-out": int(runner.injector.beats_blacked_out),
    }
    for field in RouterStats.FIELDS:
        counters[field.replace("_", "-")] = _router_sum(field)

    report = ScenarioReport(
        name="shard-loss",
        seed=cfg.seed,
        issued=issued,
        completed=completed,
        timeouts=_router_sum("shard_timeouts"),
        offload_errors=_router_sum("shard_offload_errors"),
        mismatches=complete_mismatches + degraded_mismatches,
        retries=sum(int(s.request_retries) for s in runner.client_stats),
        duplicates_suppressed=sum(
            int(s.duplicates_suppressed) for s in runner.client_stats
        ),
        unexpected_messages=sum(
            int(s.unexpected_messages) for s in runner.client_stats
        ),
        pre_rate=pre_rate,
        post_rate=post_rate,
        end_time=sim.now,
        counters=counters,
    )

    checks: List[Tuple[str, bool, str]] = []
    checks.append((
        "finished-in-time", finished,
        f"drivers {'finished' if finished else 'still running'} at "
        f"t={sim.now * 1e3:.3f}ms (limit {cfg.time_limit * 1e3:.0f}ms)",
    ))
    checks.append((
        "completed", completed == issued,
        f"{completed}/{issued} requests returned a PartialResult "
        f"({degraded_total} degraded)",
    ))
    checks.append((
        "complete-results-exact", complete_mismatches == 0,
        f"{complete_mismatches} complete results disagreed with the "
        f"single-tree oracle",
    ))
    checks.append((
        "degraded-results-correct", degraded_mismatches == 0,
        f"{degraded_mismatches} of {degraded_total} degraded results "
        f"disagreed with their surviving shards' oracle",
    ))
    checks.append((
        "exactly-once",
        duplicates_dropped == 0 and report.unexpected_messages == 0,
        f"{duplicates_dropped} duplicate ids reached the merge, "
        f"{report.unexpected_messages} unattributable messages "
        f"({report.duplicates_suppressed} late answers suppressed)",
    ))
    checks.append((
        "partials-observed", degraded_in_window > 0,
        f"{degraded_in_window} degraded results during the outage "
        f"(loss must be client-visible, not silently absorbed)",
    ))
    if pre_rate > 0.0 and post_rate > 0.0:
        recovered = post_rate >= cfg.recovery_floor * pre_rate
        detail = (f"post {post_rate / 1e3:.0f} kops vs pre "
                  f"{pre_rate / 1e3:.0f} kops "
                  f"(floor {cfg.recovery_floor:.0%})")
    else:
        recovered, detail = True, "vacuous (no pre- or post-fault sample)"
    checks.append(("throughput-recovered", recovered, detail))
    for key in ("shards-lost", "shards-restored", "workers-crashed"):
        checks.append((
            f"fault-fired:{key}", counters[key] > 0,
            f"counter = {counters[key]}",
        ))
    report.invariants = checks

    digest = hashlib.sha256()
    digest.update(f"shard-loss:{cfg.seed}:{N_SHARDS}\n".encode())
    for client_id, index, t, op, complete in sorted(records):
        digest.update(
            f"{client_id},{index},{t:.15e},{op},{int(complete)}\n".encode()
        )
    for key in sorted(counters):
        digest.update(f"{key}={counters[key]}\n".encode())
    report._fingerprint = digest.hexdigest()[:16]
    return report
