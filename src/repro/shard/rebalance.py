"""The rebalance controller: online split, merge, and live migration.

PR 4's STR plane is computed once at build time, so a hot region (the
skew workloads, ``hurricane_monitor``) melts one shard while the rest
idle.  This controller closes the loop: it periodically reads each
shard's served-request delta (the same per-stack accounting the
heartbeat/obs plumbing exposes), and when one shard runs hot it splits
that shard's hottest tile at the recent-query-centre median (item-centre
median when no load sample exists) and migrates one half to the coldest
shard — as *simulated background work* that competes with foreground
traffic for the very server CPUs it is trying to relieve.

Migration follows a three-phase epoch-cut protocol (diagrammed in
docs/architecture.md):

1. **copy** — every moving item is inserted into the destination tree
   while the source keeps serving it.  An item is in >= 1 tree at every
   instant; transiently in two, which the router's exactly-once dedup
   merge absorbs.
2. **cut-over** — one atomic map revision: the tile's owner flips, the
   destination's MBR/count grow, the epoch bumps.  Queries scattered
   *after* this instant target the destination; queries straddling it
   detect the bump at gather time and re-scatter
   (:meth:`~repro.shard.router.ScatterGatherRouter` with
   ``epoch_aware=True``).
3. **drain + cleanup** — after ``drain_s`` of simulated time (covering
   in-flight queries that scattered against the old plane), the moved
   items are deleted from the source and its MBR/count recomputed from
   the tree (second epoch bump), so the former hot shard stops
   attracting queries over the region it gave away.  Cleanup runs as a
   detached background process: its deletes queue behind the hot
   shard's foreground traffic and must not freeze the control loop.

Writes racing a migration stay exactly-once: an insert routed to the old
owner after the copy snapshot simply stays there (readable through the
source MBR the router widened); an insert routed after the cut-over
lands on the new owner.  Deletes are broadcast by the epoch-aware router
to every shard whose MBR covers the rect, so a copy can never resurrect
a deleted item.

Determinism contract: the controller draws no randomness — every
decision is a pure function of (map state, served-request counters, sim
time) — so a rebalancing run replays bit-identically at a fixed seed and
the two rebalance chaos scenarios can pin fingerprints.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..cluster.config import RebalanceConfig
from ..obs.registry import Counter, MetricsRegistry
from ..rtree.geometry import Rect
from ..sim.kernel import Simulator
from .partition import ShardMap, tile_contains

__all__ = ["RebalanceConfig", "RebalanceStats", "RebalanceController"]


class RebalanceStats:
    """Controller accounting, registered as ``rebalance.*`` metrics."""

    FIELDS = (
        "cycles", "splits", "merges", "tiles_reassigned",
        "migrations_started", "migrations_completed", "items_migrated",
        "epoch_bumps",
    )

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, Counter())

    def register_into(self, registry: MetricsRegistry,
                      prefix: str = "rebalance") -> None:
        for name in self.FIELDS:
            registry.adopt(f"{prefix}.{name}", getattr(self, name))

    def snapshot(self) -> dict:
        return {name: int(getattr(self, name)) for name in self.FIELDS}


class RebalanceController:
    """Watches per-shard load and drives split/merge/migration.

    ``stacks[k]`` is shard ``k``'s :class:`~repro.runtime.stack.ServerStack`
    and ``shard_map`` is the *live* map every router shares (the sharded
    deployers hand out one authoritative map when rebalancing is on).
    """

    def __init__(self, sim: Simulator, shard_map: ShardMap, stacks: List,
                 config: RebalanceConfig,
                 stats: Optional[RebalanceStats] = None):
        self.sim = sim
        self.shard_map = shard_map
        self.stacks = stacks
        self.config = config
        self.stats = stats or RebalanceStats()
        k = shard_map.n_shards
        self._last_served = [0] * k
        #: EWMA of per-cycle served deltas; the control signal.
        self._ewma = [0.0] * k
        #: True while a migration's copy phase is in flight (between
        #: split and cut-over); gates further splits.
        self._pre_cutover = False
        #: Migration-induced server ops since the last load read; the
        #: controller subtracts its own traffic so a migration cannot
        #: masquerade as foreground heat and trigger a follow-up split.
        self._migration_ops = [0] * k
        #: (start, end) sim-time windows of completed/active migrations
        #: (end None while active) — the racing-writes scenario checks
        #: foreground writes landed inside one.
        self.migration_windows: List[List[Optional[float]]] = []
        self.process = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.process = self.sim.process(self._run(), name="rebalancer")

    def stop(self) -> None:
        """Start no further cycles.  A migration already in flight keeps
        running to completion (the deployers settle on it after the
        foreground drivers finish, so no run ends mid-copy)."""
        self._stopped = True

    @property
    def active_migrations(self) -> bool:
        return any(end is None for _start, end in self.migration_windows)

    def _run(self):
        if self.config.warmup > 0:
            yield self.sim.timeout(self.config.warmup)
        while not self._stopped:
            yield self.sim.timeout(self.config.interval)
            if self._stopped:
                return
            yield from self._cycle()

    # -- observation -------------------------------------------------------

    def _loads(self) -> List[int]:
        """Per-shard served-request deltas since the previous cycle,
        with the controller's own migration traffic subtracted."""
        served = [int(s.server.requests_served) for s in self.stacks]
        loads = [
            max(0, served[k] - self._last_served[k]
                - self._migration_ops[k])
            for k in range(len(self.stacks))
        ]
        self._last_served = served
        self._migration_ops = [0] * len(self.stacks)
        return loads

    def _shard_items(self, shard_id: int) -> List[Tuple[Rect, int]]:
        """The shard tree's current contents (searched over its MBR —
        live on the routed write path, so a conservative cover)."""
        info = self.shard_map[shard_id]
        if info.mbr is None:
            return []
        tree = self.stacks[shard_id].server.tree
        return list(tree.search(info.mbr).matches)

    # -- the control loop --------------------------------------------------

    def _cycle(self):
        cfg = self.config
        stats = self.stats
        stats.cycles += 1
        shard_map = self.shard_map
        k = shard_map.n_shards
        raw = self._loads()
        # EWMA-smoothed loads: one interval's served delta is a handful
        # of requests, and deciding on raw deltas makes the controller
        # chase noise (observed: split storms re-cutting a region before
        # the previous cut-over's load shift even lands).
        self._ewma = [
            0.5 * e + 0.5 * l for e, l in zip(self._ewma, raw)
        ]
        loads = self._ewma
        if k < 2:
            return
        if self._pre_cutover:
            # One *copy* at a time: load only shifts at cut-over, so a
            # second split before the current one's cut-over would chase
            # heat the plane is already about to move.  (Cleanups may
            # still be draining — they run detached and the EWMA damps
            # their residual heat.)
            return
        total = sum(loads)
        if total == 0:
            return
        mean = total / k
        hot = max(range(k), key=lambda s: (loads[s], -s))
        cold = min(range(k), key=lambda s: (loads[s], s))
        if (hot == cold or loads[hot] < cfg.split_ratio * mean
                or len(shard_map.tiles) >= cfg.max_tiles
                or shard_map[hot].count < cfg.min_split_items):
            self._maybe_merge()
            return

        plan = self._plan_split(hot)
        if plan is None:
            self._maybe_merge()
            return
        tile_index, axis, cut, low_mbr, high_mbr = plan
        _low, high = shard_map.split_tile(tile_index, axis, cut,
                                          low_mbr=low_mbr,
                                          high_mbr=high_mbr)
        stats.splits += 1
        stats.epoch_bumps += 1
        yield from self._migrate(high, hot, cold)
        self._maybe_merge()

    def _plan_split(self, hot: int):
        """Pick ``(tile_index, axis, cut, low_mbr, high_mbr)`` for the
        hot shard.

        The goal is to halve *load*, not item count: the planner prefers
        the owned tile drawing the most recent query traffic (the
        server's :data:`recent_queries` ring) and cuts at the
        query-centre median, so each side inherits half the observed
        load.  When no load sample exists — offload schemes serve reads
        client-side, or the shard is write-only — it falls back to the
        densest tile cut at the item-centre median.  The trailing MBRs
        are the halves' exact content covers (computed from the same
        scan), so the split tightens routing instead of inheriting the
        parent's box.  None when no valid cut exists."""
        items = self._shard_items(hot)
        if len(items) < self.config.min_split_items:
            return None
        q_centers = [
            q.center()
            for q in getattr(self.stacks[hot].server, "recent_queries", ())
        ]
        owned = self.shard_map.owned_tiles(hot)
        best = None
        for index, entry in owned:
            contained_items = [
                (rect.center(), rect) for rect, _id in items
                if tile_contains(entry.rect, *rect.center())
            ]
            contained_qs = [
                c for c in q_centers if tile_contains(entry.rect, *c)
            ]
            score = (len(contained_qs), len(contained_items))
            if best is None or score > best[0]:
                best = (score, index, contained_items, contained_qs)
        if best is None:
            return None
        _score, index, tile_items, query_centers = best
        # Load median first (splits traffic in half); item median keeps
        # the old density-balancing behaviour as the fallback.
        candidates = []
        if len(query_centers) >= 2:
            candidates.append(query_centers)
        if len(tile_items) >= self.config.min_split_items:
            candidates.append([center for center, _rect in tile_items])
        for centers in candidates:
            plan = self._median_cut(index, centers)
            if plan is not None:
                _index, axis, cut = plan
                low_mbr, high_mbr = self._half_mbrs(tile_items, axis, cut)
                return index, axis, cut, low_mbr, high_mbr
        return None

    @staticmethod
    def _half_mbrs(tile_items, axis: str, cut: float):
        """The exact content MBRs of a tile's two halves under a cut."""
        low_mbr: Optional[Rect] = None
        high_mbr: Optional[Rect] = None
        coord = 0 if axis == "x" else 1
        for center, rect in tile_items:
            if center[coord] < cut:
                low_mbr = rect if low_mbr is None else low_mbr.union(rect)
            else:
                high_mbr = rect if high_mbr is None else high_mbr.union(rect)
        return low_mbr, high_mbr

    @staticmethod
    def _median_cut(index: int, centers):
        """The median cut of ``centers`` along the wider-extent axis;
        None when every candidate cut is degenerate."""
        xs = sorted(c[0] for c in centers)
        ys = sorted(c[1] for c in centers)
        axes = [("x", xs), ("y", ys)]
        # Wider centre extent first; fall back to the other axis when
        # every centre shares the preferred coordinate.
        axes.sort(key=lambda a: a[1][-1] - a[1][0], reverse=True)
        for axis, coords in axes:
            mid = len(coords) // 2
            cut = (coords[mid - 1] + coords[mid]) / 2.0
            if coords[mid - 1] < cut < coords[mid]:
                return index, axis, cut
            # Degenerate median (ties); any strict gap still works.
            lo, hi = coords[0], coords[-1]
            if lo < hi:
                cut = (lo + hi) / 2.0
                if lo < cut < hi:
                    return index, axis, cut
        return None

    # -- migration (the epoch-cut protocol) --------------------------------

    def _migrate(self, tile_index: int, source: int, dest: int):
        shard_map = self.shard_map
        stats = self.stats
        entry = shard_map.tiles[tile_index]
        moved = [
            (rect, data_id)
            for rect, data_id in self._shard_items(source)
            if tile_contains(entry.rect, *rect.center())
        ]
        if not moved:
            # Nothing to carry: flip the (empty) tile so future writes
            # land on the cold shard.
            shard_map.reassign_tile(tile_index, dest)
            stats.tiles_reassigned += 1
            stats.epoch_bumps += 1
            return

        stats.migrations_started += 1
        window = [self.sim.now, None]
        self.migration_windows.append(window)
        dest_server = self.stacks[dest].server

        # Phase 1 — copy.  The source keeps serving every moved item;
        # the transient two-tree overlap is absorbed by the routers'
        # exactly-once dedup merge.  Each insert is a real CPU-charged,
        # lock-guarded server op: migration *competes* with foreground
        # traffic on the destination.
        moved_mbr: Optional[Rect] = None
        self._pre_cutover = True
        try:
            for rect, data_id in moved:
                yield from dest_server.execute_insert(rect, data_id)
                self._migration_ops[dest] += 1
                moved_mbr = (rect if moved_mbr is None
                             else moved_mbr.union(rect))

            # Phase 2 — cut-over: one atomic map revision (tile owner,
            # dest MBR/count, epoch).  In-flight queries that scattered
            # against the old plane observe the bump at gather time and
            # re-scatter.
            shard_map.reassign_tile(tile_index, dest,
                                    moved_count=len(moved),
                                    moved_mbr=moved_mbr)
            stats.tiles_reassigned += 1
            stats.epoch_bumps += 1
        finally:
            self._pre_cutover = False

        # Phase 3 — drain, then delete from the source — detached as its
        # own process.  The source is by construction the *hot* shard, so
        # its cleanup deletes queue behind saturated foreground traffic;
        # serializing the control loop on them would freeze further
        # splits for the whole cleanup (observed: tens of milliseconds
        # at one core).  The migration window stays open until the
        # cleanup finishes, so the deployers' settle loop still
        # guarantees no run ends with an item on two shards.  Cleanups
        # from successive migrations cannot collide: each deletes only
        # items whose centres lie in its own (disjoint) migrated tile.
        self.sim.process(
            self._cleanup(source, entry.rect, moved, window),
            name=f"rebalance-cleanup-{source}",
        )

    def _cleanup(self, source: int, tile_rect: Rect, moved, window):
        """Drain, delete the moved items from the source tree, sweep any
        write that raced the cut-over to its current owner, and rebuild
        the source's routing summary exactly.

        The drain keeps the source exact for queries that scattered
        pre-cut-over; the epoch-aware re-scatter is the net under any
        straggler.  The final rebuild is safe against racing client
        inserts: the tree mutation is applied at the head of
        ``execute_insert`` (before any CPU is charged), so an insert
        acked before the scan is *in* the scan, and one applied after
        it re-grows the shared live map via the client's
        ``note_insert`` at ack time.  Without the rebuild the former
        hot shard's stale covers keep attracting every query over the
        region it migrated away — scatter fan-out never recovers."""
        shard_map = self.shard_map
        stats = self.stats
        source_server = self.stacks[source].server
        if self.config.drain_s > 0:
            yield self.sim.timeout(self.config.drain_s)
        for rect, data_id in moved:
            yield from source_server.execute_delete(rect, data_id)
            self._migration_ops[source] += 1
            stats.items_migrated += 1
        # Sweep stragglers: an insert that scattered against the old
        # plane landed on the source *inside* the migrated tile after
        # the copy snapshot.  Carry each to the region's current owner
        # (copy first, delete after — the item is on >= 1 shard at
        # every instant), so no permanent stray keeps the source in
        # the region's scatter set.
        moved_ids = {data_id for _rect, data_id in moved}
        for rect, data_id in self._shard_items(source):
            if data_id in moved_ids:
                continue
            if not tile_contains(tile_rect, *rect.center()):
                continue
            owner = shard_map.owner_of(rect)
            if owner == source:
                continue
            # Re-check the item still exists right before copying (no
            # yield in between, and the insert mutates the destination
            # tree before its first yield): a foreground delete that
            # completed since the snapshot scan must not be resurrected.
            if not any(d == data_id
                       for _r, d in self._shard_items(source)):
                continue
            yield from self.stacks[owner].server.execute_insert(
                rect, data_id)
            self._migration_ops[owner] += 1
            shard_map.note_insert(owner, rect)
            yield from source_server.execute_delete(rect, data_id)
            self._migration_ops[source] += 1
            stats.items_migrated += 1
        shard_map.rebuild_shard_summary(source, self._shard_items(source))
        stats.epoch_bumps += 1
        stats.migrations_completed += 1
        window[1] = self.sim.now

    # -- merging -----------------------------------------------------------

    def _maybe_merge(self) -> bool:
        """Merge one pair of adjacent same-owner tiles, if any (keeps the
        routing table from growing monotonically as load moves around)."""
        if not self.config.merge_enabled:
            return False
        tiles = self.shard_map.tiles
        for i in range(len(tiles)):
            for j in range(i + 1, len(tiles)):
                if tiles[i].owner != tiles[j].owner:
                    continue
                try:
                    self.shard_map.merge_tiles(i, j)
                except ValueError:
                    continue
                self.stats.merges += 1
                self.stats.epoch_bumps += 1
                return True
        return False
