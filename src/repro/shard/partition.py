"""Spatial partitioning: STR tiling of a dataset into K shards.

The sharded cluster splits one dataset across K independent Catfish
servers.  The partitioner reuses the STR idea the bulk loader is built on
(sort by center x, slice into columns, sort each column by center y, cut
into tiles), but at the *cluster* level: one tile = one shard.

Two rectangles describe each shard:

* its **tile** — the disjoint routing cell.  Tiles partition the whole
  plane (outer tiles extend to infinity), so every point belongs to
  exactly one tile and write routing (by rectangle center) is total and
  unambiguous;
* its **MBR** — the minimum bounding rectangle of the shard's *contents*.
  Items are assigned by center, so an item may overhang its tile; the MBR
  covers the overhang.  Read queries scatter to every shard whose MBR
  intersects the query, which is exact: each item lives in exactly one
  shard, and that shard's MBR covers it entirely.

The map is compact — K tiles + K MBRs + K counts — which is what the
router consults per query (RDMAvisor's thin-routing-layer argument: keep
the per-query routing state small enough to live client-side).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..rtree.geometry import Rect

#: Routing tiles extend to infinity at the partition borders so routing
#: is total over the plane (queries/inserts outside [0,1]^2 still route).
_INF = float("inf")


@dataclass(frozen=True)
class ShardInfo:
    """One shard's routing entry in the shard map."""

    shard_id: int
    #: Disjoint routing cell (plane-covering; used for write routing).
    tile: Rect
    #: MBR of the shard's current contents; None while the shard is empty.
    mbr: Optional[Rect]
    #: Items assigned at partition time (grows with routed inserts).
    count: int


class ShardMap:
    """The compact client-side routing table of a sharded cluster."""

    def __init__(self, shards: Sequence[ShardInfo]):
        if not shards:
            raise ValueError("a shard map needs at least one shard")
        self._shards: List[ShardInfo] = list(shards)
        for index, info in enumerate(self._shards):
            if info.shard_id != index:
                raise ValueError(
                    f"shard ids must be dense: slot {index} holds "
                    f"{info.shard_id}"
                )

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self):
        return iter(self._shards)

    def __getitem__(self, shard_id: int) -> ShardInfo:
        return self._shards[shard_id]

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    # -- read routing ------------------------------------------------------

    def shards_for(self, rect: Rect) -> List[int]:
        """Shards whose contents may intersect ``rect`` (exact superset)."""
        return [
            info.shard_id
            for info in self._shards
            if info.mbr is not None and info.mbr.intersects(rect)
        ]

    def nonempty_shards(self) -> List[int]:
        """Shards holding at least one item (kNN scatters to all of them)."""
        return [info.shard_id for info in self._shards
                if info.mbr is not None]

    # -- write routing -----------------------------------------------------

    def owner_of(self, rect: Rect) -> int:
        """The single shard owning ``rect`` (tile containing its center)."""
        cx, cy = rect.center()
        for info in self._shards:
            tile = info.tile
            # Half-open on the max edges so tile borders are unambiguous
            # (the outermost tiles are unbounded, so every point matches).
            if (tile.minx <= cx and (cx < tile.maxx or tile.maxx == _INF)
                    and tile.miny <= cy
                    and (cy < tile.maxy or tile.maxy == _INF)):
                return info.shard_id
        # Unreachable: the tiles cover the plane.
        raise AssertionError(f"no tile covers center ({cx}, {cy})")

    def note_insert(self, shard_id: int, rect: Rect) -> None:
        """Grow a shard's MBR after routing an insert to it.

        The map is client-side state: keeping it in sync with the writes
        this client routed is what keeps later reads exact (an insert
        overhanging the shard MBR must widen the scatter set).
        """
        info = self._shards[shard_id]
        mbr = rect if info.mbr is None else info.mbr.union(rect)
        self._shards[shard_id] = ShardInfo(
            shard_id=shard_id, tile=info.tile, mbr=mbr,
            count=info.count + 1,
        )

    def describe(self) -> List[str]:
        """One human-readable line per shard."""
        lines = []
        for info in self._shards:
            mbr = (f"[{info.mbr.minx:.3f},{info.mbr.miny:.3f} .. "
                   f"{info.mbr.maxx:.3f},{info.mbr.maxy:.3f}]"
                   if info.mbr is not None else "(empty)")
            lines.append(
                f"shard {info.shard_id}: {info.count:>7} items, mbr {mbr}"
            )
        return lines


@dataclass(frozen=True)
class Partition:
    """The partitioner's output: per-shard item lists plus the map."""

    shard_map: ShardMap
    assignments: Tuple[Tuple[Tuple[Rect, int], ...], ...]

    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards


def partition_str(
    items: Sequence[Tuple[Rect, int]], n_shards: int
) -> Partition:
    """Split ``(rect, data_id)`` items into ``n_shards`` STR tiles.

    Items are assigned by rectangle center: sort by center x, cut into
    ``ceil(sqrt(K))`` columns of near-equal cardinality, sort each column
    by center y and cut into rows, for K tiles total.  Tile borders are
    midpoints between adjacent item centers, so the tiles are disjoint
    and plane-covering; shard sizes differ by at most one item per cut.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        tile = Rect(-_INF, -_INF, _INF, _INF)
        mbr = (Rect.union_of(r for r, _ in items) if items else None)
        shard_map = ShardMap([ShardInfo(0, tile, mbr, len(items))])
        return Partition(shard_map, (tuple(items),))

    centers = [(rect.center(), rect, data_id) for rect, data_id in items]
    by_x = sorted(centers, key=lambda c: (c[0][0], c[0][1], c[2]))

    n_cols = max(1, math.ceil(math.sqrt(n_shards)))
    n_cols = min(n_cols, n_shards)
    # Rows per column: distribute K over the columns as evenly as possible.
    base, extra = divmod(n_shards, n_cols)
    rows_per_col = [base + (1 if c < extra else 0) for c in range(n_cols)]

    # Column cuts: split the x-sorted items into n_cols near-equal runs.
    col_sizes = _even_split(len(by_x), n_cols)
    columns: List[List] = []
    start = 0
    for size in col_sizes:
        columns.append(by_x[start:start + size])
        start += size

    x_cuts = _cut_positions(
        columns, lambda entry: entry[0][0]
    )

    tiles: List[Rect] = []
    for col_index, column in enumerate(columns):
        minx = -_INF if col_index == 0 else x_cuts[col_index - 1]
        maxx = _INF if col_index == n_cols - 1 else x_cuts[col_index]
        n_rows = rows_per_col[col_index]
        by_y = sorted(column, key=lambda c: (c[0][1], c[0][0], c[2]))
        row_sizes = _even_split(len(by_y), n_rows)
        rows: List[List] = []
        start = 0
        for size in row_sizes:
            rows.append(by_y[start:start + size])
            start += size
        y_cuts = _cut_positions(rows, lambda entry: entry[0][1])
        for row_index in range(n_rows):
            miny = -_INF if row_index == 0 else y_cuts[row_index - 1]
            maxy = _INF if row_index == n_rows - 1 else y_cuts[row_index]
            tiles.append(Rect(minx, miny, maxx, maxy))

    # Assignment is *by tile ownership*, not by the sorted runs the cuts
    # came from: ties exactly on a cut line would otherwise let the run
    # and the (half-open) tile disagree about an item, and delete routing
    # — which can only consult the tile — would then miss it.
    probe = ShardMap([ShardInfo(i, tile, None, 0)
                      for i, tile in enumerate(tiles)])
    buckets: List[List[Tuple[Rect, int]]] = [[] for _ in tiles]
    for _center, rect, data_id in centers:
        buckets[probe.owner_of(rect)].append((rect, data_id))

    shards: List[ShardInfo] = []
    assignments: List[Tuple[Tuple[Rect, int], ...]] = []
    for shard_id, (tile, bucket) in enumerate(zip(tiles, buckets)):
        contents = tuple(bucket)
        mbr = Rect.union_of(r for r, _ in contents) if contents else None
        shards.append(ShardInfo(shard_id, tile, mbr, len(contents)))
        assignments.append(contents)

    return Partition(ShardMap(shards), tuple(assignments))


def _even_split(total: int, parts: int) -> List[int]:
    """Sizes of ``parts`` near-equal consecutive runs summing to ``total``."""
    base, extra = divmod(total, parts)
    return [base + (1 if p < extra else 0) for p in range(parts)]


def _cut_positions(runs: List[List], key) -> List[float]:
    """Border coordinates between consecutive runs (midpoint of the gap).

    Empty runs (more shards than items) reuse the previous cut, which
    yields zero-width tiles that never own anything — harmless, since
    ownership is half-open and their MBR stays None.
    """
    cuts: List[float] = []
    previous = 0.0
    for left, right in zip(runs, runs[1:]):
        if left and right:
            cut = (key(left[-1]) + key(right[0])) / 2.0
        elif left:
            cut = key(left[-1])
        else:
            cut = previous
        cuts.append(cut)
        previous = cut
    return cuts
