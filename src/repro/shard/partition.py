"""Spatial partitioning: STR tiling of a dataset into K shards.

The sharded cluster splits one dataset across K independent Catfish
servers.  The partitioner reuses the STR idea the bulk loader is built on
(sort by center x, slice into columns, sort each column by center y, cut
into tiles), but at the *cluster* level: one tile = one shard.

Two rectangles describe each shard:

* its **tile** — the disjoint routing cell.  Tiles partition the whole
  plane (outer tiles extend to infinity), so every point belongs to
  exactly one tile and write routing (by rectangle center) is total and
  unambiguous;
* its **MBR** — the minimum bounding rectangle of the shard's *contents*.
  Items are assigned by center, so an item may overhang its tile; the MBR
  covers the overhang.  Read queries scatter to every shard whose MBR
  intersects the query, which is exact: each item lives in exactly one
  shard, and that shard's MBR covers it entirely.

The map is compact — tiles + K MBRs + K counts — which is what the
router consults per query (RDMAvisor's thin-routing-layer argument: keep
the per-query routing state small enough to live client-side).

Under rebalancing the routing granularity tightens: each tile carries
the MBR of the items whose centers it contains, and each shard a
*stray* cover for items it holds outside its owned tiles (writes that
raced a cut-over, source leftovers mid-cleanup).  The epoch-aware read
scatter (:meth:`ShardMap.read_targets`) unions tile-MBR hits with
stray hits — a shard-level box over disjoint migrated regions would
grow uselessly fat and drag the old owner into every query forever.

The map is also *versioned*: every revision (tile split, tile merge,
tile reassignment, shard-content update) bumps ``epoch``.  The static
case never revises, so ``epoch`` stays 0 and routing is exactly the
PR 4 behaviour; under rebalancing (see :mod:`repro.shard.rebalance`)
the epoch is the router's cheap "did the plane move under me?" probe —
a query that scatters at epoch E and gathers at epoch E' > E re-reads
the map and re-scatters to any shard that newly covers its region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..rtree.geometry import Rect

#: Routing tiles extend to infinity at the partition borders so routing
#: is total over the plane (queries/inserts outside [0,1]^2 still route).
_INF = float("inf")


def tile_contains(tile: Rect, cx: float, cy: float) -> bool:
    """Half-open tile containment (max edges exclusive, inf edges total).

    The rule every owner lookup uses: borders between tiles are
    unambiguous because only the lower tile's max edge is exclusive,
    and the outermost (infinite) edges accept everything beyond them.
    """
    return (tile.minx <= cx and (cx < tile.maxx or tile.maxx == _INF)
            and tile.miny <= cy
            and (cy < tile.maxy or tile.maxy == _INF))


@dataclass(frozen=True)
class ShardInfo:
    """One shard's routing entry in the shard map."""

    shard_id: int
    #: The shard's *home* routing cell at construction time.  Ownership
    #: lookups go through the map's tile table (which starts as one tile
    #: per shard and diverges under split/merge/reassign); this rect is
    #: kept for construction and introspection.
    tile: Rect
    #: MBR of the shard's current contents; None while the shard is empty.
    mbr: Optional[Rect]
    #: Items assigned at partition time (grows with routed inserts).
    count: int


@dataclass(frozen=True)
class TileEntry:
    """One routing cell of the (possibly revised) plane tiling."""

    rect: Rect
    owner: int
    #: MBR of the owner's items whose *centers* lie in this tile (items
    #: are assigned by center, so rects overhang the tile; the MBR covers
    #: the overhang).  None while no item is known to live here.  Kept
    #: conservative: grown by routed writes and tile handoffs, recomputed
    #: exactly only by the migration cleanup's rebuild.
    mbr: Optional[Rect] = None


class ShardMap:
    """The compact, epoch-versioned routing table of a sharded cluster."""

    def __init__(self, shards: Sequence[ShardInfo],
                 tiles: Optional[Sequence[TileEntry]] = None,
                 epoch: int = 0,
                 stray_mbrs: Optional[Sequence[Optional[Rect]]] = None):
        if not shards:
            raise ValueError("a shard map needs at least one shard")
        self._shards: List[ShardInfo] = list(shards)
        for index, info in enumerate(self._shards):
            if info.shard_id != index:
                raise ValueError(
                    f"shard ids must be dense: slot {index} holds "
                    f"{info.shard_id}"
                )
        #: The routing tiles.  Defaults to one home tile per shard (the
        #: static plane); revisions split/merge/reassign entries.
        self._tiles: List[TileEntry] = (
            list(tiles) if tiles is not None
            else [TileEntry(info.tile, info.shard_id, info.mbr)
                  for info in self._shards]
        )
        for entry in self._tiles:
            if not 0 <= entry.owner < len(self._shards):
                raise ValueError(
                    f"tile owner {entry.owner} outside shard range"
                )
        #: Per-shard cover of *stray* items — items the shard holds whose
        #: center lies outside its owned tiles (writes that raced a
        #: cut-over, source leftovers mid-cleanup).  None when no stray
        #: can exist; the epoch-aware read scatter unions it in.
        self._stray_mbrs: List[Optional[Rect]] = (
            list(stray_mbrs) if stray_mbrs is not None
            else [None] * len(self._shards)
        )
        if len(self._stray_mbrs) != len(self._shards):
            raise ValueError("stray_mbrs must have one entry per shard")
        #: Revision counter: bumped by every split/merge/reassign/content
        #: update.  0 means the plane never moved (the static case).
        self.epoch = epoch

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self):
        return iter(self._shards)

    def __getitem__(self, shard_id: int) -> ShardInfo:
        return self._shards[shard_id]

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def tiles(self) -> Tuple[TileEntry, ...]:
        return tuple(self._tiles)

    def copy(self) -> "ShardMap":
        """Epoch-preserving deep-enough copy (entries are frozen)."""
        return ShardMap(list(self._shards), tiles=list(self._tiles),
                        epoch=self.epoch,
                        stray_mbrs=list(self._stray_mbrs))

    def stray_mbr(self, shard_id: int) -> Optional[Rect]:
        """The shard's stray-item cover (None when no stray can exist)."""
        return self._stray_mbrs[shard_id]

    def owned_tiles(self, shard_id: int) -> List[Tuple[int, TileEntry]]:
        """The ``(index, entry)`` tiles currently owned by a shard."""
        return [(index, entry) for index, entry in enumerate(self._tiles)
                if entry.owner == shard_id]

    def counts(self) -> List[int]:
        """Per-shard item counts (occupancy snapshot)."""
        return [info.count for info in self._shards]

    # -- read routing ------------------------------------------------------

    def shards_for(self, rect: Rect) -> List[int]:
        """Shards whose contents may intersect ``rect`` (exact superset)."""
        return [
            info.shard_id
            for info in self._shards
            if info.mbr is not None and info.mbr.intersects(rect)
        ]

    def read_targets(self, rect: Rect) -> List[int]:
        """Tile-granular read scatter set (the epoch-aware router's).

        A shard-level MBR turns into a uselessly fat bounding box once
        migrations hand a shard disjoint regions of the plane; routing
        by per-tile content MBRs keeps the scatter set tight.  Exact:
        every item either has its center in some tile owned by its
        shard (that tile's MBR covers the whole rect, overhang
        included) or is a stray covered by its shard's stray cover.
        """
        out = set()
        for entry in self._tiles:
            if entry.mbr is not None and entry.mbr.intersects(rect):
                out.add(entry.owner)
        for shard_id, stray in enumerate(self._stray_mbrs):
            if stray is not None and stray.intersects(rect):
                out.add(shard_id)
        return sorted(out)

    def nonempty_shards(self) -> List[int]:
        """Shards holding at least one item (kNN scatters to all of them)."""
        return [info.shard_id for info in self._shards
                if info.mbr is not None]

    # -- write routing -----------------------------------------------------

    def owner_of(self, rect: Rect) -> int:
        """The single shard owning ``rect`` (tile containing its center)."""
        cx, cy = rect.center()
        for entry in self._tiles:
            # Half-open on the max edges so tile borders are unambiguous
            # (the outermost tiles are unbounded, so every point matches).
            if tile_contains(entry.rect, cx, cy):
                return entry.owner
        # Unreachable: the tiles cover the plane.
        raise AssertionError(f"no tile covers center ({cx}, {cy})")

    def _grow_cover(self, shard_id: int, rect: Rect) -> None:
        """Grow the tile (or stray) cover for an item landing on a shard:
        the tile the shard owns containing the rect's center, else the
        shard's stray cover (the write raced a cut-over)."""
        cx, cy = rect.center()
        for index, entry in enumerate(self._tiles):
            if entry.owner == shard_id and tile_contains(entry.rect, cx, cy):
                mbr = rect if entry.mbr is None else entry.mbr.union(rect)
                self._tiles[index] = TileEntry(entry.rect, entry.owner, mbr)
                return
        stray = self._stray_mbrs[shard_id]
        self._stray_mbrs[shard_id] = (
            rect if stray is None else stray.union(rect)
        )

    def note_insert(self, shard_id: int, rect: Rect) -> None:
        """Grow a shard's MBR after routing an insert to it.

        Keeping the map in sync with the writes routed through it is what
        keeps later reads exact (an insert overhanging the shard MBR must
        widen the scatter set).
        """
        info = self._shards[shard_id]
        mbr = rect if info.mbr is None else info.mbr.union(rect)
        self._shards[shard_id] = ShardInfo(
            shard_id=shard_id, tile=info.tile, mbr=mbr,
            count=info.count + 1,
        )
        self._grow_cover(shard_id, rect)

    def note_delete(self, shard_id: int) -> None:
        """Account a routed delete.  The MBR cannot shrink exactly without
        the shard's contents, so it only collapses when the count hits 0;
        otherwise it stays a (conservative, still exact) superset."""
        info = self._shards[shard_id]
        count = max(0, info.count - 1)
        self._shards[shard_id] = ShardInfo(
            shard_id=shard_id, tile=info.tile,
            mbr=info.mbr if count else None, count=count,
        )

    def note_update(self, shard_id: int, new_rect: Rect) -> None:
        """Widen a shard's MBR after a routed in-place update."""
        info = self._shards[shard_id]
        mbr = new_rect if info.mbr is None else info.mbr.union(new_rect)
        self._shards[shard_id] = ShardInfo(
            shard_id=shard_id, tile=info.tile, mbr=mbr, count=info.count,
        )
        self._grow_cover(shard_id, new_rect)

    # -- revisions (each bumps the epoch) ----------------------------------

    def split_tile(self, index: int, axis: str, cut: float,
                   low_mbr: Optional[Rect] = None,
                   high_mbr: Optional[Rect] = None) -> Tuple[int, int]:
        """Split tile ``index`` at ``cut`` along ``axis`` ("x"/"y").

        Both halves keep the owner.  ``low_mbr``/``high_mbr`` are the
        halves' content MBRs when the caller knows the contents (the
        rebalance controller scanned them to plan the cut); when omitted
        both halves inherit the parent's MBR — conservative, still
        exact.  Returns ``(low_index, high_index)``.
        """
        entry = self._tiles[index]
        r = entry.rect
        if axis == "x":
            if not r.minx < cut < r.maxx:
                raise ValueError(
                    f"cut {cut} outside tile x-range ({r.minx}, {r.maxx})"
                )
            low = Rect(r.minx, r.miny, cut, r.maxy)
            high = Rect(cut, r.miny, r.maxx, r.maxy)
        elif axis == "y":
            if not r.miny < cut < r.maxy:
                raise ValueError(
                    f"cut {cut} outside tile y-range ({r.miny}, {r.maxy})"
                )
            low = Rect(r.minx, r.miny, r.maxx, cut)
            high = Rect(r.minx, cut, r.maxx, r.maxy)
        else:
            raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
        if low_mbr is None and high_mbr is None:
            low_mbr = high_mbr = entry.mbr
        self._tiles[index] = TileEntry(low, entry.owner, low_mbr)
        self._tiles.append(TileEntry(high, entry.owner, high_mbr))
        self.epoch += 1
        return index, len(self._tiles) - 1

    def merge_tiles(self, index_a: int, index_b: int) -> int:
        """Merge two same-owner tiles whose union is an exact rectangle.

        Returns the surviving tile index (the lower of the two; the
        higher slot is removed, shifting later indices down by one).
        """
        a, b = self._tiles[index_a], self._tiles[index_b]
        if index_a == index_b:
            raise ValueError("cannot merge a tile with itself")
        if a.owner != b.owner:
            raise ValueError(
                f"tiles owned by different shards ({a.owner} vs {b.owner})"
            )
        merged = _exact_union(a.rect, b.rect)
        if merged is None:
            raise ValueError(
                f"tiles {a.rect} and {b.rect} do not form a rectangle"
            )
        keep, drop = sorted((index_a, index_b))
        if a.mbr is None:
            mbr = b.mbr
        elif b.mbr is None:
            mbr = a.mbr
        else:
            mbr = a.mbr.union(b.mbr)
        self._tiles[keep] = TileEntry(merged, a.owner, mbr)
        del self._tiles[drop]
        self.epoch += 1
        return keep

    def reassign_tile(self, index: int, new_owner: int,
                      moved_count: int = 0,
                      moved_mbr: Optional[Rect] = None) -> int:
        """Hand tile ``index`` to ``new_owner`` (the migration cut-over).

        ``moved_count``/``moved_mbr`` describe the items crossing with
        the tile: the source's count drops, the destination's count and
        MBR grow, so reads target the destination from this epoch on.
        Returns the previous owner.
        """
        entry = self._tiles[index]
        old_owner = entry.owner
        if not 0 <= new_owner < len(self._shards):
            raise ValueError(f"no shard {new_owner} in this map")
        if new_owner == old_owner:
            raise ValueError(f"tile {index} already owned by {new_owner}")
        # The tile's content MBR travels with it (the destination holds
        # copies of everything it covered).  The source may still hold
        # items under this tile — copies pending cleanup, plus writes
        # that raced the cut-over — so the tile MBR also joins the
        # source's stray cover until a rebuild recomputes it exactly.
        self._tiles[index] = TileEntry(entry.rect, new_owner, entry.mbr)
        if entry.mbr is not None:
            stray = self._stray_mbrs[old_owner]
            self._stray_mbrs[old_owner] = (
                entry.mbr if stray is None else stray.union(entry.mbr)
            )
        if moved_count or moved_mbr is not None:
            src = self._shards[old_owner]
            self._shards[old_owner] = ShardInfo(
                old_owner, src.tile, src.mbr,
                max(0, src.count - moved_count),
            )
            dst = self._shards[new_owner]
            mbr = dst.mbr
            if moved_mbr is not None:
                mbr = moved_mbr if mbr is None else mbr.union(moved_mbr)
            self._shards[new_owner] = ShardInfo(
                new_owner, dst.tile, mbr, dst.count + moved_count,
            )
        self.epoch += 1
        return old_owner

    def set_shard_contents(self, shard_id: int, mbr: Optional[Rect],
                           count: int) -> None:
        """Replace a shard's content summary (post-migration recompute)."""
        info = self._shards[shard_id]
        self._shards[shard_id] = ShardInfo(shard_id, info.tile, mbr, count)
        self.epoch += 1

    def rebuild_shard_summary(
        self, shard_id: int, items: Sequence[Tuple[Rect, int]]
    ) -> None:
        """Exact recompute of one shard's routing state from a scan of
        its contents: per-owned-tile MBRs, the stray cover, the shard
        MBR and count — the migration cleanup's final step.  One epoch
        bump.  Safe against racing inserts because the caller scans the
        tree (mutations apply before any CPU is charged, so the scan
        sees at least everything acked; later writes re-grow the covers
        through ``note_insert``/``note_update`` at ack time)."""
        owned = self.owned_tiles(shard_id)
        tile_mbrs: dict = {index: None for index, _entry in owned}
        stray: Optional[Rect] = None
        shard_mbr: Optional[Rect] = None
        for rect, _data_id in items:
            shard_mbr = rect if shard_mbr is None else shard_mbr.union(rect)
            cx, cy = rect.center()
            for index, entry in owned:
                if tile_contains(entry.rect, cx, cy):
                    held = tile_mbrs[index]
                    tile_mbrs[index] = (
                        rect if held is None else held.union(rect)
                    )
                    break
            else:
                stray = rect if stray is None else stray.union(rect)
        for index, entry in owned:
            self._tiles[index] = TileEntry(
                entry.rect, entry.owner, tile_mbrs[index]
            )
        self._stray_mbrs[shard_id] = stray
        info = self._shards[shard_id]
        self._shards[shard_id] = ShardInfo(
            shard_id, info.tile, shard_mbr, len(items)
        )
        self.epoch += 1

    def check_invariants(self) -> None:
        """Raise ``ValueError`` unless the tiles are pairwise disjoint and
        cover the plane.

        Probes a grid built from every finite tile edge: midpoints
        between adjacent cuts, points exactly *on* each cut (exercising
        the half-open rule), and points beyond the outermost finite cuts
        (exercising the infinite borders).  Each probe must land in
        exactly one tile.  Exact — no floating-point area sums against
        infinite tiles.
        """
        def _axis_cuts(lo_key, hi_key) -> List[float]:
            return sorted({
                c for entry in self._tiles
                for c in (lo_key(entry.rect), hi_key(entry.rect))
                if math.isfinite(c)
            })

        def _probes(cuts: List[float]) -> List[float]:
            if not cuts:
                return [0.0]
            points = [cuts[0] - 1.0]
            points.extend(cuts)
            points.extend((a + b) / 2.0
                          for a, b in zip(cuts, cuts[1:]) if b > a)
            points.append(cuts[-1] + 1.0)
            return points

        xs = _probes(_axis_cuts(lambda r: r.minx, lambda r: r.maxx))
        ys = _probes(_axis_cuts(lambda r: r.miny, lambda r: r.maxy))
        for cx in xs:
            for cy in ys:
                owners = [
                    index for index, entry in enumerate(self._tiles)
                    if tile_contains(entry.rect, cx, cy)
                ]
                if len(owners) != 1:
                    raise ValueError(
                        f"point ({cx}, {cy}) covered by tiles {owners} "
                        f"(epoch {self.epoch}): tiles must stay disjoint "
                        f"and plane-covering"
                    )

    def describe(self) -> List[str]:
        """One human-readable line per shard."""
        lines = []
        for info in self._shards:
            mbr = (f"[{info.mbr.minx:.3f},{info.mbr.miny:.3f} .. "
                   f"{info.mbr.maxx:.3f},{info.mbr.maxy:.3f}]"
                   if info.mbr is not None else "(empty)")
            lines.append(
                f"shard {info.shard_id}: {info.count:>7} items, mbr {mbr}"
            )
        return lines


@dataclass(frozen=True)
class Partition:
    """The partitioner's output: per-shard item lists plus the map."""

    shard_map: ShardMap
    assignments: Tuple[Tuple[Tuple[Rect, int], ...], ...]

    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards


def partition_str(
    items: Sequence[Tuple[Rect, int]], n_shards: int
) -> Partition:
    """Split ``(rect, data_id)`` items into ``n_shards`` STR tiles.

    Items are assigned by rectangle center: sort by center x, cut into
    ``ceil(sqrt(K))`` columns of near-equal cardinality, sort each column
    by center y and cut into rows, for K tiles total.  Tile borders are
    midpoints between adjacent item centers, so the tiles are disjoint
    and plane-covering; shard sizes differ by at most one item per cut.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        tile = Rect(-_INF, -_INF, _INF, _INF)
        mbr = (Rect.union_of(r for r, _ in items) if items else None)
        shard_map = ShardMap([ShardInfo(0, tile, mbr, len(items))])
        return Partition(shard_map, (tuple(items),))

    centers = [(rect.center(), rect, data_id) for rect, data_id in items]
    by_x = sorted(centers, key=lambda c: (c[0][0], c[0][1], c[2]))

    n_cols = max(1, math.ceil(math.sqrt(n_shards)))
    n_cols = min(n_cols, n_shards)
    # Rows per column: distribute K over the columns as evenly as possible.
    base, extra = divmod(n_shards, n_cols)
    rows_per_col = [base + (1 if c < extra else 0) for c in range(n_cols)]

    # Column cuts: split the x-sorted items into n_cols near-equal runs.
    col_sizes = _even_split(len(by_x), n_cols)
    columns: List[List] = []
    start = 0
    for size in col_sizes:
        columns.append(by_x[start:start + size])
        start += size

    x_cuts = _cut_positions(
        columns, lambda entry: entry[0][0]
    )

    tiles: List[Rect] = []
    for col_index, column in enumerate(columns):
        minx = -_INF if col_index == 0 else x_cuts[col_index - 1]
        maxx = _INF if col_index == n_cols - 1 else x_cuts[col_index]
        n_rows = rows_per_col[col_index]
        by_y = sorted(column, key=lambda c: (c[0][1], c[0][0], c[2]))
        row_sizes = _even_split(len(by_y), n_rows)
        rows: List[List] = []
        start = 0
        for size in row_sizes:
            rows.append(by_y[start:start + size])
            start += size
        y_cuts = _cut_positions(rows, lambda entry: entry[0][1])
        for row_index in range(n_rows):
            miny = -_INF if row_index == 0 else y_cuts[row_index - 1]
            maxy = _INF if row_index == n_rows - 1 else y_cuts[row_index]
            tiles.append(Rect(minx, miny, maxx, maxy))

    # Assignment is *by tile ownership*, not by the sorted runs the cuts
    # came from: ties exactly on a cut line would otherwise let the run
    # and the (half-open) tile disagree about an item, and delete routing
    # — which can only consult the tile — would then miss it.
    probe = ShardMap([ShardInfo(i, tile, None, 0)
                      for i, tile in enumerate(tiles)])
    buckets: List[List[Tuple[Rect, int]]] = [[] for _ in tiles]
    for _center, rect, data_id in centers:
        buckets[probe.owner_of(rect)].append((rect, data_id))

    shards: List[ShardInfo] = []
    assignments: List[Tuple[Tuple[Rect, int], ...]] = []
    for shard_id, (tile, bucket) in enumerate(zip(tiles, buckets)):
        contents = tuple(bucket)
        mbr = Rect.union_of(r for r, _ in contents) if contents else None
        shards.append(ShardInfo(shard_id, tile, mbr, len(contents)))
        assignments.append(contents)

    return Partition(ShardMap(shards), tuple(assignments))


def _exact_union(a: Rect, b: Rect) -> Optional[Rect]:
    """The union of two rects iff it is exactly a rectangle (they share a
    full edge); None otherwise.  Works with infinite edges: equality of
    the shared coordinates is all that is needed."""
    if a.miny == b.miny and a.maxy == b.maxy:
        if a.maxx == b.minx:
            return Rect(a.minx, a.miny, b.maxx, a.maxy)
        if b.maxx == a.minx:
            return Rect(b.minx, a.miny, a.maxx, a.maxy)
    if a.minx == b.minx and a.maxx == b.maxx:
        if a.maxy == b.miny:
            return Rect(a.minx, a.miny, a.maxx, b.maxy)
        if b.maxy == a.miny:
            return Rect(a.minx, b.miny, a.maxx, a.maxy)
    return None


def _even_split(total: int, parts: int) -> List[int]:
    """Sizes of ``parts`` near-equal consecutive runs summing to ``total``."""
    base, extra = divmod(total, parts)
    return [base + (1 if p < extra else 0) for p in range(parts)]


def _cut_positions(runs: List[List], key) -> List[float]:
    """Border coordinates between consecutive runs (midpoint of the gap).

    Empty runs (more shards than items) reuse the previous cut, which
    yields zero-width tiles that never own anything — harmless, since
    ownership is half-open and their MBR stays None.
    """
    cuts: List[float] = []
    previous = 0.0
    for left, right in zip(runs, runs[1:]):
        if left and right:
            cut = (key(left[-1]) + key(right[0])) / 2.0
        elif left:
            cut = key(left[-1])
        else:
            cut = previous
        cuts.append(cut)
        previous = cut
    return cuts
