"""The scatter-gather spatial router: one client's view of K shards.

The router is the client-active half of the sharded design (RFP's
paradigm extended to a fleet): it consults the shard map, fans a read out
*only* to the shards whose MBR intersects the query, runs the per-shard
sub-queries concurrently (each through that shard's own adaptive Catfish
session, so every shard's heartbeat independently drives its own
Algorithm 1 back-off state), and merges the replies.

Partial failure is a result, not an exception: a shard that exhausts its
retry deadline, leaks an :class:`~repro.client.offload_client.OffloadError`,
or sits behind an open per-shard circuit breaker contributes a non-``ok``
status to the returned :class:`PartialResult` instead of failing the
whole query.  The merge is exactly-once: every (shard, reply) pair is
consumed at most once and duplicate data ids across replies are dropped
and counted, never double-reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..client.base import (
    OP_COUNT,
    OP_DELETE,
    OP_INSERT,
    OP_NEAREST,
    OP_SEARCH,
    OP_UPDATE,
    ClientStats,
    Request,
)
from ..client.offload_client import OffloadError
from ..client.resilience import (
    BreakerParams,
    CircuitBreaker,
    RequestTimeoutError,
)
from ..obs.registry import Counter, MetricsRegistry
from ..sim.kernel import Simulator, all_of
from .partition import ShardMap

# Per-shard sub-query statuses.
OK = "ok"
TIMEOUT = "timeout"
OFFLOAD_ERROR = "offload-error"
SKIPPED = "skipped"          # per-shard breaker open: not even attempted


@dataclass
class PartialResult:
    """Outcome of one routed request, with per-shard attribution.

    ``results`` is the merged payload (matches for search/nearest, a
    total for count, an ok flag for writes).  ``statuses`` maps every
    *participating* shard to its outcome; shards the map pruned away do
    not appear.  ``complete`` is True iff every participating shard
    answered — a degraded-but-correct answer has ``complete=False`` plus
    the exact shards whose contribution is missing.
    """

    op: str
    results: object
    statuses: Dict[int, str] = field(default_factory=dict)
    #: Duplicate data ids dropped by the exactly-once merge.
    duplicates_dropped: int = 0

    @property
    def complete(self) -> bool:
        return all(status == OK for status in self.statuses.values())

    @property
    def failed_shards(self) -> List[int]:
        return sorted(shard_id for shard_id, status in self.statuses.items()
                      if status != OK)

    def __repr__(self) -> str:
        state = "complete" if self.complete else (
            f"degraded(failed={self.failed_shards})"
        )
        return f"<PartialResult {self.op} {state}>"


def merge_search_replies(
    replies: List[Tuple[int, List[Tuple[object, int]]]],
) -> Tuple[List[Tuple[object, int]], int]:
    """Exactly-once merge of per-shard search replies.

    ``replies`` is ``[(shard_id, matches), ...]``.  Partitioning assigns
    each item to exactly one shard, so data ids should never repeat
    across replies — but a duplicated reply (a shard enqueued twice, a
    retransmitted gather) must not double-report items.  Duplicates are
    dropped on data id, first occurrence wins, and the drop count is
    surfaced so the invariant is checkable.
    """
    merged: List[Tuple[object, int]] = []
    seen: set = set()
    duplicates = 0
    for _shard_id, matches in replies:
        for rect, data_id in matches:
            if data_id in seen:
                duplicates += 1
                continue
            seen.add(data_id)
            merged.append((rect, data_id))
    return merged, duplicates


@dataclass
class RouterStats:
    """Per-client router accounting (aggregated into cluster metrics)."""

    queries_routed: Counter = field(default_factory=Counter)
    subqueries_issued: Counter = field(default_factory=Counter)
    shards_pruned: Counter = field(default_factory=Counter)
    partial_results: Counter = field(default_factory=Counter)
    shard_timeouts: Counter = field(default_factory=Counter)
    shard_offload_errors: Counter = field(default_factory=Counter)
    shard_skips: Counter = field(default_factory=Counter)
    duplicates_merged: Counter = field(default_factory=Counter)
    #: Reads that detected an epoch bump between scatter and gather and
    #: went back to the map for newly-covering shards.
    epoch_rescatters: Counter = field(default_factory=Counter)
    #: Extra sub-queries those re-scatters issued.
    rescattered_subqueries: Counter = field(default_factory=Counter)

    #: The PR 4 counter set.  The shard-loss chaos fingerprint digests
    #: exactly these, so rebalance-era counters live in
    #: ``REBALANCE_FIELDS`` — extend that tuple, never this one.
    FIELDS = (
        "queries_routed", "subqueries_issued", "shards_pruned",
        "partial_results", "shard_timeouts", "shard_offload_errors",
        "shard_skips", "duplicates_merged",
    )
    REBALANCE_FIELDS = ("epoch_rescatters", "rescattered_subqueries")

    def register_into(self, registry: MetricsRegistry,
                      prefix: str = "router") -> None:
        for name in self.FIELDS + self.REBALANCE_FIELDS:
            registry.adopt(f"{prefix}.{name}", getattr(self, name))


class ScatterGatherRouter:
    """Routes one client's requests across the shard sessions.

    ``sessions[k]`` must expose ``execute(request)`` (any of the client
    session types works; the sharded builder wires a full CatfishSession
    per shard so each shard keeps the paper's adaptive machinery).  The
    router presents the same ``execute`` generator protocol, so the
    standard cluster driver runs unchanged on top of it.
    """

    def __init__(
        self,
        sim: Simulator,
        shard_map: ShardMap,
        sessions: List,
        stats: ClientStats,
        router_stats: Optional[RouterStats] = None,
        breaker_params: Optional[BreakerParams] = None,
        record: bool = False,
        epoch_aware: bool = False,
        max_rescatter_rounds: int = 4,
    ):
        if len(sessions) != shard_map.n_shards:
            raise ValueError(
                f"{len(sessions)} sessions for {shard_map.n_shards} shards"
            )
        self.sim = sim
        self.shard_map = shard_map
        self.sessions = sessions
        self.stats = stats
        self.router_stats = router_stats or RouterStats()
        #: Per-shard breakers at the *router* level: a shard that keeps
        #: timing out is skipped (status ``skipped``) until its cooldown
        #: elapses, so one dead shard cannot tax every query with a full
        #: retry deadline.  None disables skipping — every query waits
        #: out the deadline of every failed shard.
        self.breakers: Optional[List[CircuitBreaker]] = (
            [CircuitBreaker(sim, breaker_params)
             for _ in range(shard_map.n_shards)]
            if breaker_params is not None else None
        )
        #: When set, every routed request's outcome is appended to
        #: ``self.log`` as ``(index, request, PartialResult, finish_time)``
        #: — the oracle-verification hook of ``repro shard`` and the
        #: shard-loss chaos scenario.
        self.record = record
        self.log: List[Tuple[int, Request, PartialResult, float]] = []
        self._index = 0
        #: Routing across an epoch cut: when the shared live map's epoch
        #: bumps between a read's scatter and its gather, re-consult the
        #: map and query any shard that newly covers the region (the
        #: dedup merge keeps the union exactly-once).  Off by default —
        #: the static plane never bumps, and the fingerprint-pinned
        #: non-rebalance paths stay byte-identical.
        self.epoch_aware = epoch_aware
        #: Bound on re-scatter rounds per read (a runaway revision storm
        #: degrades to a best-effort answer instead of livelocking).
        self.max_rescatter_rounds = max_rescatter_rounds

    @classmethod
    def from_factory(
        cls,
        factory,
        client_id: int,
        stacks,
        host,
        stats: ClientStats,
        rng_for_shard,
        shard_map: ShardMap,
        router_stats: Optional[RouterStats] = None,
        breaker_params: Optional[BreakerParams] = None,
        record: bool = False,
        epoch_aware: bool = False,
    ) -> "ScatterGatherRouter":
        """Build one client's router with per-shard sessions from the
        shared :class:`~repro.runtime.factory.SessionFactory`.

        ``rng_for_shard(k)`` returns the client's RNG registry against
        shard ``k`` (``rngs.shard(k).fork(f"client-{i}")`` in the
        deployer) — shard-derived so adding shards never perturbs the
        retry/back-off draws against existing shards.
        """
        sessions = factory.build_shard_sessions(
            client_id, stacks, host, stats, rng_for_shard,
        )
        return cls(
            factory.sim, shard_map, sessions, stats,
            router_stats=router_stats, breaker_params=breaker_params,
            record=record, epoch_aware=epoch_aware,
        )

    # -- scatter target selection ------------------------------------------

    def _read_targets(self, request: Request) -> List[int]:
        if request.op == OP_NEAREST:
            # kNN has no a-priori radius; every populated shard may hold
            # one of the k nearest.  (A two-phase radius refinement is a
            # possible optimization; correctness first.)
            return self.shard_map.nonempty_shards()
        if self.epoch_aware:
            # Tile-granular scatter: once migrations hand a shard
            # disjoint regions, its shard-level MBR is a uselessly fat
            # box; per-tile content MBRs plus the stray covers keep the
            # fan-out tight (see ShardMap.read_targets).
            return self.shard_map.read_targets(request.rect)
        return self.shard_map.shards_for(request.rect)

    # -- execution ---------------------------------------------------------

    def execute(self, request: Request) -> Generator:
        """Route one request; returns a :class:`PartialResult`."""
        self.router_stats.queries_routed += 1
        if request.op in (OP_INSERT, OP_DELETE, OP_UPDATE):
            result = yield from self._execute_write(request)
        else:
            result = yield from self._execute_read(request)
        if self.record:
            self.log.append((self._index, request, result, self.sim.now))
        self._index += 1
        if result.duplicates_dropped:
            self.router_stats.duplicates_merged += result.duplicates_dropped
        if not result.complete:
            self.router_stats.partial_results += 1
        return result

    def _execute_write(self, request: Request) -> Generator:
        """Writes go to exactly one shard: the tile owning the rect center.

        Epoch-aware deletes are the exception — they broadcast to every
        shard whose MBR covers the rect, because during a migration's
        copy window the item transiently lives in two trees (and a write
        that raced an earlier cut-over may have left it overhanging its
        owner tile); deleting it everywhere is what keeps a copy from
        resurrecting it.
        """
        if self.epoch_aware and request.op == OP_DELETE:
            return (yield from self._execute_delete_broadcast(request))
        owner = self.shard_map.owner_of(request.rect)
        status, reply = yield from self._sub_query(owner, request)
        if status == OK:
            if request.op == OP_INSERT:
                self.shard_map.note_insert(owner, request.rect)
            elif request.op == OP_DELETE:
                self.shard_map.note_delete(owner)
            elif request.op == OP_UPDATE and request.new_rect is not None:
                self.shard_map.note_update(owner, request.new_rect)
        return PartialResult(
            op=request.op,
            results=(reply if status == OK else None),
            statuses={owner: status},
        )

    def _execute_delete_broadcast(self, request: Request) -> Generator:
        """Delete from every shard that may hold the item (see above)."""
        owner = self.shard_map.owner_of(request.rect)
        targets = self.shard_map.shards_for(request.rect)
        if owner not in targets:
            targets.append(owner)
        statuses: Dict[int, str] = {}
        found_on = []
        for shard_id in targets:
            status, reply = yield from self._sub_query(shard_id, request)
            statuses[shard_id] = status
            if status == OK and reply:
                found_on.append(shard_id)
        for shard_id in found_on:
            self.shard_map.note_delete(shard_id)
        ok = any(statuses[s] == OK for s in targets)
        return PartialResult(
            op=request.op,
            results=(bool(found_on) if ok else None),
            statuses=statuses,
        )

    def _sub_query(self, shard_id: int, request: Request) -> Generator:
        """One direct sub-query (the write path); returns (status, reply)."""
        self.router_stats.subqueries_issued += 1
        try:
            reply = yield from self.sessions[shard_id].execute(request)
        except RequestTimeoutError:
            self.router_stats.shard_timeouts += 1
            return TIMEOUT, None
        except OffloadError:
            self.router_stats.shard_offload_errors += 1
            return OFFLOAD_ERROR, None
        return OK, reply

    def _execute_read(self, request: Request) -> Generator:
        if self.epoch_aware:
            return (yield from self._execute_read_epoch(request))
        targets = self._read_targets(request)
        pruned = self.shard_map.n_shards - len(targets)
        if pruned:
            self.router_stats.shards_pruned += pruned
        if not targets:
            # Nothing can match (all shard MBRs miss the query).
            empty = 0 if request.op == OP_COUNT else []
            return PartialResult(op=request.op, results=empty, statuses={})

        statuses: Dict[int, str] = {}
        replies: List[Tuple[int, object]] = []
        skipped: List[int] = []
        procs = []
        for shard_id in targets:
            breaker = (self.breakers[shard_id]
                       if self.breakers is not None else None)
            if breaker is not None and not breaker.allow():
                skipped.append(shard_id)
                continue
            procs.append(self.sim.process(
                self._gather(shard_id, request, statuses, replies),
                name=f"scatter-s{shard_id}",
            ))
        for shard_id in skipped:
            statuses[shard_id] = SKIPPED
            self.router_stats.shard_skips += 1
        if procs:
            # Each sub-query is bounded by its session's retry deadline,
            # so the barrier always resolves; failures land in statuses,
            # never as exceptions (the gather wrapper catches them).
            yield all_of(self.sim, procs)
        return self._merge(request, statuses, replies)

    def _execute_read_epoch(self, request: Request) -> Generator:
        """Scatter-gather across possible epoch cuts (rebalancing on).

        Capture the map epoch at scatter; after the gather barrier, if
        the epoch moved, re-read the map and query any shard that now
        covers the region and was not queried yet (a migration's
        cut-over hands a tile — and the moved items' MBR cover — to a
        new owner mid-flight).  The dedup merge keeps the union of all
        rounds exactly-once.  COUNT runs its sub-queries as searches:
        during a migration's copy window an item transiently lives in
        two trees, so only an id-level dedup count is exact.
        """
        sub_request = (Request(OP_SEARCH, request.rect)
                       if request.op == OP_COUNT else request)
        statuses: Dict[int, str] = {}
        replies: List[Tuple[int, object]] = []
        queried: set = set()
        rounds = 0
        while rounds < self.max_rescatter_rounds:
            epoch = self.shard_map.epoch
            targets = [s for s in self._read_targets(request)
                       if s not in queried]
            if not targets:
                break
            if rounds:
                self.router_stats.epoch_rescatters += 1
                self.router_stats.rescattered_subqueries += len(targets)
            procs = []
            skipped: List[int] = []
            for shard_id in targets:
                queried.add(shard_id)
                breaker = (self.breakers[shard_id]
                           if self.breakers is not None else None)
                if breaker is not None and not breaker.allow():
                    skipped.append(shard_id)
                    continue
                procs.append(self.sim.process(
                    self._gather(shard_id, sub_request, statuses, replies),
                    name=f"scatter-s{shard_id}",
                ))
            for shard_id in skipped:
                statuses[shard_id] = SKIPPED
                self.router_stats.shard_skips += 1
            if procs:
                yield all_of(self.sim, procs)
            rounds += 1
            if self.shard_map.epoch == epoch:
                break
        pruned = self.shard_map.n_shards - len(queried)
        if pruned > 0:
            self.router_stats.shards_pruned += pruned
        if not queried:
            empty = 0 if request.op == OP_COUNT else []
            return PartialResult(op=request.op, results=empty, statuses={})
        if request.op == OP_COUNT:
            merged, duplicates = merge_search_replies(replies)
            return PartialResult(
                op=request.op, results=len(merged), statuses=statuses,
                duplicates_dropped=duplicates,
            )
        return self._merge(request, statuses, replies)

    def _gather(self, shard_id: int, request: Request,
                statuses: Dict[int, str],
                replies: List[Tuple[int, object]]) -> Generator:
        """One shard's sub-query; outcomes are data, not exceptions."""
        self.router_stats.subqueries_issued += 1
        session = self.sessions[shard_id]
        breaker = (self.breakers[shard_id]
                   if self.breakers is not None else None)
        try:
            reply = yield from session.execute(request)
        except RequestTimeoutError:
            statuses[shard_id] = TIMEOUT
            self.router_stats.shard_timeouts += 1
            if breaker is not None:
                breaker.record_failure()
            return
        except OffloadError:
            statuses[shard_id] = OFFLOAD_ERROR
            self.router_stats.shard_offload_errors += 1
            if breaker is not None:
                breaker.record_failure()
            return
        statuses[shard_id] = OK
        replies.append((shard_id, reply))
        if breaker is not None:
            breaker.record_success()

    # -- merge --------------------------------------------------------------

    def _merge(self, request: Request, statuses: Dict[int, str],
               replies: List[Tuple[int, object]]) -> PartialResult:
        if request.op == OP_COUNT:
            # Shard contents are disjoint: the global count is the sum.
            total = sum(reply for _shard, reply in replies)
            return PartialResult(op=request.op, results=total,
                                 statuses=statuses)
        if request.op == OP_NEAREST:
            merged, duplicates = merge_search_replies(replies)
            qx, qy = request.rect.center()
            merged.sort(
                key=lambda m: (m[0].min_dist2_point(qx, qy), m[1])
            )
            return PartialResult(
                op=request.op,
                results=merged[:request.k],
                statuses=statuses,
                duplicates_dropped=duplicates,
            )
        merged, duplicates = merge_search_replies(replies)
        return PartialResult(
            op=request.op, results=merged, statuses=statuses,
            duplicates_dropped=duplicates,
        )
