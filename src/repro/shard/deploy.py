"""Build and run a sharded Catfish cluster: K servers, routed clients.

Mirrors :class:`~repro.cluster.builder.ExperimentRunner` but instantiates
K fully independent Catfish servers — each with its own host, star
network, R*-tree over its partition slice, fast-messaging worker pool and
heartbeat service — on one shared simulator.  Every client opens one
session *per shard* (so each shard's heartbeat independently drives that
client's Algorithm 1 back-off state for that shard) and issues its
requests through a :class:`~repro.shard.router.ScatterGatherRouter`.

Determinism contract: the dataset and each client's workload stream are
derived exactly as in the single-server runner (same seed → same items,
same requests), while all shard-side randomness comes from
``RngRegistry.shard(k)`` — a function of ``(seed, shard_id)`` only — so
changing the shard count never perturbs another shard's streams and a
sharded run is comparable against the single-server oracle.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..client.base import CLIENT_COUNTER_FIELDS, ClientStats
from ..cluster.builder import _client_driver, register_session_aggregates
from ..cluster.config import ExperimentConfig
from ..cluster.results import RunResult, merge_client_stats
from ..cluster.schemes import TRANSPORT_TCP, scheme_spec
from ..faults.injector import FaultInjector
from ..faults.plan import ShardLoss
from ..hw.host import Host
from ..net.fabric import profile_by_name
from ..obs import NULL_TRACER, LatencyView, MetricsRegistry, Tracer, \
    snapshot_document
from ..runtime.factory import SessionFactory
from ..runtime.stack import ServerStack
from ..sim.kernel import Simulator, all_of
from ..sim.rng import RngRegistry
from ..workloads.datasets import uniform_dataset
from ..workloads.mixes import make_workload
from .partition import Partition, ShardMap, partition_str
from .rebalance import RebalanceController, RebalanceStats
from .router import RouterStats, ScatterGatherRouter


class _ShardHeartbeatHook:
    """Per-shard heartbeat suppression hook.

    A lost shard's heartbeat must go silent (the machine is gone), while
    global :class:`~repro.faults.plan.HeartbeatBlackout` windows keep
    applying to every shard — this hook composes the two on behalf of one
    shard's :class:`~repro.server.heartbeat.HeartbeatService`.
    """

    def __init__(self, sim: Simulator, shard_id: int,
                 loss_windows, injector: FaultInjector):
        self.sim = sim
        self.shard_id = shard_id
        self.loss_windows = [
            w for w in loss_windows
            if not w.shard_ids or shard_id in w.shard_ids
        ]
        self.injector = injector

    def heartbeat_suppressed(self) -> bool:
        now = self.sim.now
        for window in self.loss_windows:
            if window.active(now):
                self.injector.beats_blacked_out += 1
                return True
        return self.injector.heartbeat_suppressed()


class ShardedExperimentRunner:
    """Builds a K-shard cluster for a config and runs it to completion."""

    def __init__(self, config: ExperimentConfig,
                 record_results: bool = False):
        self.config = config
        self.spec = scheme_spec(config.scheme)
        if self.spec.transport == TRANSPORT_TCP:
            raise ValueError(
                f"scheme {config.scheme!r} is TCP-based; sharding needs an "
                "RDMA scheme (fast-messaging rings per shard)"
            )
        self.n_shards = config.n_shards or self.spec.shards
        if self.n_shards < 1:
            raise ValueError(f"need >= 1 shard, got {self.n_shards}")
        self.profile = profile_by_name(config.fabric)
        if not self.profile.rdma:
            raise ValueError(
                f"sharded cluster needs an RDMA fabric, got {config.fabric!r}"
            )

        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.metrics = MetricsRegistry()
        self.tracer = (
            Tracer(self.sim, max_events=config.trace_max_events,
                   components=config.trace_components)
            if config.trace else NULL_TRACER
        )

        # Same dataset derivation as the single-server runner: the union
        # of the shard slices is bit-identical to the unsharded dataset,
        # which is what makes the single tree a valid oracle.
        items = config.dataset
        if items is None:
            items = uniform_dataset(config.dataset_size, seed=config.seed)
        self.dataset = items
        self.partition: Partition = partition_str(items, self.n_shards)

        # Elastic shard plane (PR 10): when rebalancing is on, every
        # client routes through ONE shared live map (epoch-versioned) and
        # a RebalanceController revises it in the background; otherwise
        # each client keeps its own static copy (the PR 4 behaviour all
        # golden fingerprints are pinned on).
        rb = config.rebalance
        self.rebalance_cfg = rb if (rb is not None and rb.enabled) else None
        self.live_map: Optional[ShardMap] = (
            self.partition.shard_map.copy()
            if self.rebalance_cfg is not None else None
        )
        self.rebalancer: Optional[RebalanceController] = None
        self.rebalance_stats: Optional[RebalanceStats] = None

        self.injector: Optional[FaultInjector] = None
        if config.fault_plan:
            self.injector = FaultInjector(
                self.sim, config.fault_plan,
                rng=self.rngs.stream("faults"),
            )

        #: One full Catfish stack per shard — the same
        #: :class:`~repro.runtime.stack.ServerStack` the single-server
        #: runner builds, instantiated K times on one simulator.  All
        #: shard-side randomness comes from ``rngs.shard(k)``.
        self.shards: List[ServerStack] = [
            ServerStack(
                self.sim, self.profile, self.spec, config,
                self.rngs.shard(shard_id), list(slice_items),
                name=f"shard{shard_id}-server",
            )
            for shard_id, slice_items in enumerate(self.partition.assignments)
        ]
        if self.injector is not None:
            loss_windows = config.fault_plan.of_type(ShardLoss)
            for shard_id, shard in enumerate(self.shards):
                shard.attach_injector(
                    self.injector,
                    heartbeat_hook=_ShardHeartbeatHook(
                        self.sim, shard_id, loss_windows, self.injector,
                    ),
                )

        self.factory = SessionFactory(
            self.sim, self.spec, config, self.tracer,
        )
        self.client_stats: List[ClientStats] = []
        self.router_stats: List[RouterStats] = []
        self.routers: List[ScatterGatherRouter] = []
        #: ``sessions[client_id][shard_id]`` — the per-shard sub-sessions.
        self.sessions: List[List] = []
        self._drivers = []
        self._record_results = record_results
        self._build_clients()

        if self.injector is not None:
            self.injector.start(
                storm_targets=lambda: [s.server.tree.root
                                       for s in self.shards],
                shard_fm_servers=[s.fm_server for s in self.shards],
            )
        for shard in self.shards:
            shard.start_heartbeats()
        if self.rebalance_cfg is not None:
            self.rebalance_stats = RebalanceStats()
            self.rebalancer = RebalanceController(
                self.sim, self.live_map, self.shards,
                self.rebalance_cfg, stats=self.rebalance_stats,
            )
            self.rebalancer.start()
        self._register_metrics()

    # -- construction ------------------------------------------------------

    def _build_clients(self) -> None:
        config = self.config
        workload_fn = make_workload(
            config.workload_kind,
            scale_spec=config.scale,
            n_requests=config.requests_per_client,
            insert_fraction=config.insert_fraction,
            queries=config.queries,
        )
        for client_id in range(config.n_clients):
            host = Host(
                self.sim,
                f"client-{client_id}",
                self.profile,
                cores=config.client_cores,
            )
            stats = ClientStats()
            router_stats = RouterStats()
            # Per-shard sessions come from the shared SessionFactory —
            # the same assembly path as the single-server runner.  The
            # client-side RNGs are shard-derived (``(seed, shard_id)``
            # then per-client forks), so adding shards never perturbs
            # the retry/back-off draws against existing shards.
            # Static plane: each client gets its own map copy —
            # note_insert is client-local routing state, like a real
            # client cache.  Under rebalancing every client shares the
            # ONE live map the controller revises, and routes reads
            # across epoch cuts (re-scatter + dedup = exactly-once).
            shard_map = (
                self.live_map if self.live_map is not None
                else ShardMap(list(self.partition.shard_map))
            )
            router = ScatterGatherRouter.from_factory(
                self.factory,
                client_id,
                self.shards,
                host,
                stats,
                lambda k, i=client_id: self.rngs.shard(k).fork(f"client-{i}"),
                shard_map,
                router_stats=router_stats,
                breaker_params=config.breaker,
                record=self._record_results,
                epoch_aware=self.live_map is not None,
            )
            shard_sessions = router.sessions
            # Workload stream identical to the single-server runner: the
            # oracle comparison depends on this line not diverging.
            rng = self.rngs.fork(f"client-{client_id}").stream("workload")
            requests = workload_fn(client_id, rng)
            driver = self.sim.process(
                _client_driver(self.sim, router, requests, stats,
                               injector=self.injector,
                               client_id=client_id),
                name=f"client-{client_id}",
            )
            self.client_stats.append(stats)
            self.router_stats.append(router_stats)
            self.routers.append(router)
            self.sessions.append(shard_sessions)
            self._drivers.append(driver)

    def _register_metrics(self) -> None:
        m = self.metrics
        m.expose("shard.n_shards", lambda: self.n_shards)
        for shard_id, shard in enumerate(self.shards):
            shard.register_metrics(m, label=f"shard{shard_id}")
        if self.injector is not None:
            self.injector.register_metrics(m)

        # Cluster-wide aggregates keep the single-server metric names, so
        # dashboards and the compare harness read both layouts.
        m.expose("server.searches_served",
                 lambda: sum(int(s.server.searches_served)
                             for s in self.shards))
        m.expose("server.inserts_served",
                 lambda: sum(int(s.server.inserts_served)
                             for s in self.shards))
        m.expose("server.cpu_utilization", self._mean_cpu_utilization)
        m.expose("net.server_bandwidth_gbps", self._total_bandwidth_gbps)

        stats_list = self.client_stats
        for field in CLIENT_COUNTER_FIELDS:
            m.expose(
                f"client.{field}",
                lambda f=field: sum(int(getattr(s, f)) for s in stats_list),
            )
        router_stats = self.router_stats
        for field in RouterStats.FIELDS + RouterStats.REBALANCE_FIELDS:
            m.expose(
                f"router.{field}",
                lambda f=field: sum(int(getattr(r, f))
                                    for r in router_stats),
            )
        if self.rebalance_stats is not None:
            self.rebalance_stats.register_into(m)
            m.expose("shard.map_epoch", lambda: self.live_map.epoch)
            m.expose("shard.tiles", lambda: len(self.live_map.tiles))
        # Client-side policy counters (offload engine / Algorithm 1 /
        # bandit), summed over every client's per-shard sessions — the
        # same names the single-server runner exposes.
        register_session_aggregates(
            m, [s for per_client in self.sessions for s in per_client],
        )

    # -- occupancy ---------------------------------------------------------

    def initial_occupancy(self) -> List[int]:
        """Items per shard at partition time (before any routed write)."""
        return [len(slice_items)
                for slice_items in self.partition.assignments]

    def shard_occupancy(self) -> List[int]:
        """Items per shard right now (exact leaf walk per stack)."""
        return [stack.items_held() for stack in self.shards]

    def _mean_cpu_utilization(self) -> float:
        return (sum(s.host.cpu.utilization() for s in self.shards)
                / len(self.shards))

    def _total_bandwidth_gbps(self) -> float:
        return sum(s.network.server_bandwidth_gbps() for s in self.shards)

    # -- execution ---------------------------------------------------------

    def run(self) -> RunResult:
        """Run until every client finished its request stream."""
        done = all_of(self.sim, self._drivers)
        self.sim.run_until_triggered(done)
        self._elapsed_at_done = self.sim.now
        if self.rebalancer is not None:
            self._settle_rebalancer()
        return self._collect()

    def _settle_rebalancer(self) -> None:
        """Let an in-flight migration finish after the drivers are done.

        Foreground accounting (elapsed, throughput) is frozen at
        ``_elapsed_at_done``; this only runs the controller's remaining
        copy/drain/delete work so no run ends with an item transiently on
        two shards (the conservation checks depend on that).
        """
        self.rebalancer.stop()
        step = max(self.rebalance_cfg.interval, self.rebalance_cfg.drain_s)
        for _ in range(10_000):
            if not self.rebalancer.active_migrations:
                break
            self.sim.run(until=self.sim.now + step)
        else:
            raise RuntimeError("rebalancer failed to settle")

    def _extra(self) -> dict:
        """RunResult.extra payload (excluded from result fingerprints, so
        the occupancy report is safe to grow)."""
        extra = {
            "n_shards": float(self.n_shards),
            "partial_results": float(sum(
                int(r.partial_results) for r in self.router_stats
            )),
            "shards_pruned": float(sum(
                int(r.shards_pruned) for r in self.router_stats
            )),
        }
        for shard_id, held in enumerate(self.shard_occupancy()):
            extra[f"shard{shard_id}_items"] = float(held)
        if self.rebalance_stats is not None:
            for name, value in self.rebalance_stats.snapshot().items():
                extra[f"rebalance_{name}"] = float(value)
            extra["map_epoch"] = float(self.live_map.epoch)
            extra["epoch_rescatters"] = float(sum(
                int(r.epoch_rescatters) for r in self.router_stats
            ))
            extra["rescattered_subqueries"] = float(sum(
                int(r.rescattered_subqueries) for r in self.router_stats
            ))
        return extra

    def _collect(self) -> RunResult:
        config = self.config
        elapsed = getattr(self, "_elapsed_at_done", self.sim.now)
        merged = merge_client_stats(self.client_stats)
        total = int(merged.requests_sent)
        throughput_kops = (total / elapsed / 1e3) if elapsed > 0 else 0.0
        to_us = 1e6
        self.metrics.adopt(
            "client.latency_us",
            LatencyView(merged.latency, scale=to_us, unit="us",
                        loop="closed"),
        )
        self.metrics.adopt(
            "client.search_latency_us",
            LatencyView(merged.search_latency, scale=to_us, unit="us",
                        loop="closed"),
        )
        heartbeats_sent = sum(
            int(s.heartbeats.beats_sent)
            for s in self.shards if s.heartbeats is not None
        )
        heartbeats_dropped = sum(
            int(s.heartbeats.beats_dropped)
            for s in self.shards if s.heartbeats is not None
        )
        total_bandwidth = self._total_bandwidth_gbps()
        return RunResult(
            scheme=config.scheme,
            fabric=config.fabric,
            n_clients=config.n_clients,
            total_requests=total,
            elapsed_s=elapsed,
            throughput_kops=throughput_kops,
            mean_latency_us=merged.latency.mean * to_us,
            p50_latency_us=merged.latency.percentile(50) * to_us,
            p99_latency_us=merged.latency.percentile(99) * to_us,
            p999_latency_us=merged.latency.percentile(99.9) * to_us,
            mean_search_latency_us=(
                merged.search_latency.mean * to_us
                if merged.search_latency.count
                else float("nan")
            ),
            server_cpu_utilization=self._mean_cpu_utilization(),
            server_bandwidth_gbps=total_bandwidth,
            server_bandwidth_utilization=(
                total_bandwidth * 1e9
                / (self.profile.bandwidth_bps * self.n_shards)
            ),
            offload_fraction=merged.offload_fraction,
            torn_retries=int(merged.torn_retries),
            search_restarts=int(merged.search_restarts),
            heartbeats_sent=heartbeats_sent,
            heartbeats_dropped=heartbeats_dropped,
            searches_served_by_server=sum(
                int(s.server.searches_served) for s in self.shards
            ),
            inserts_served=sum(
                int(s.server.inserts_served) for s in self.shards
            ),
            extra=self._extra(),
            metrics=snapshot_document(
                self.metrics,
                tracer=self.tracer if config.trace else None,
                meta={
                    "scheme": config.scheme,
                    "fabric": config.fabric,
                    "n_clients": config.n_clients,
                    "n_shards": self.n_shards,
                    "requests_per_client": config.requests_per_client,
                    "workload": config.workload_kind,
                    "seed": config.seed,
                    "elapsed_s": elapsed,
                    "throughput_kops": throughput_kops,
                },
            ),
        )


def run_sharded_experiment(config: ExperimentConfig) -> RunResult:
    """Convenience wrapper: build, run, collect."""
    return ShardedExperimentRunner(config).run()
