"""The metrics registry: counters, gauges, histograms, windowed samplers.

Every component of the reproduction (server, clients, offload engine,
heartbeat service, ring buffers, transport) registers its counters here so
one :meth:`MetricsRegistry.snapshot` call captures the whole system — the
substrate the benchmark JSON artifacts are built from.

Design constraints:

* **No wall-clock calls.**  Anything time-based (the windowed samplers) is
  driven by the simulation clock, so metrics are deterministic and
  reproducible for a given seed.
* **Attribute access keeps working.**  :class:`Counter` implements the
  numeric protocol, so a component field that used to be a plain ``int``
  (``stats.torn_retries += 1``, ``assert stats.torn_retries == 3``) keeps
  behaving identically after migrating to a registry-adoptable counter.
* **Bounded memory.**  Histograms are HDR-style log-linear buckets (a few
  hundred buckets regardless of sample count); samplers keep a bounded
  ring of points.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple


def _coerce(other: Any) -> Any:
    """Numeric value of ``other`` for arithmetic with :class:`Counter`."""
    if isinstance(other, Counter):
        return other._value
    return other


#: Whether hot-path counter increments record anything.  See
#: :func:`set_metrics_enabled`.
_ENABLED = True


def metrics_enabled() -> bool:
    """Whether counter increments are currently recorded."""
    return _ENABLED


def set_metrics_enabled(enabled: bool) -> None:
    """Globally enable/disable hot-path :class:`Counter` increments.

    The perf bench measures the substrate with and without observability;
    disabling swaps the increment methods at class level so a disabled
    increment costs one no-op method call — no flag check per increment
    anywhere on the hot path.  Snapshots/exports keep working; counters
    simply stop advancing while disabled.
    """
    global _ENABLED
    _ENABLED = bool(enabled)
    if _ENABLED:
        Counter.inc = Counter._inc_recording
        Counter.__iadd__ = Counter._iadd_recording
        Counter.__isub__ = Counter._isub_recording
    else:
        Counter.inc = Counter._inc_disabled
        Counter.__iadd__ = Counter._iadd_disabled
        Counter.__isub__ = Counter._iadd_disabled


class Counter:
    """A monotonic counter that behaves like an ``int``.

    Components keep these as plain attributes (``self.meta_reads``); the
    numeric protocol below means every pre-existing ``+=`` / comparison /
    format site keeps working unchanged while the registry can adopt the
    *object* and see live updates.
    """

    kind = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str = "", help: str = "", value: int = 0):
        self.name = name
        self.help = help
        self._value = value

    @property
    def value(self) -> int:
        return self._value

    def _inc_recording(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    def _inc_disabled(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")

    #: Rebound by :func:`set_metrics_enabled`.
    inc = _inc_recording

    def reset(self) -> None:
        self._value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}

    # -- numeric protocol (so `stats.field += 1` etc. keep working) --------

    def __int__(self) -> int:
        return int(self._value)

    __index__ = __int__

    def __float__(self) -> float:
        return float(self._value)

    def __bool__(self) -> bool:
        return bool(self._value)

    def __eq__(self, other: Any) -> bool:
        return self._value == _coerce(other)

    def __ne__(self, other: Any) -> bool:
        return self._value != _coerce(other)

    def __lt__(self, other: Any) -> bool:
        return self._value < _coerce(other)

    def __le__(self, other: Any) -> bool:
        return self._value <= _coerce(other)

    def __gt__(self, other: Any) -> bool:
        return self._value > _coerce(other)

    def __ge__(self, other: Any) -> bool:
        return self._value >= _coerce(other)

    def __add__(self, other: Any):
        return self._value + _coerce(other)

    __radd__ = __add__

    def __sub__(self, other: Any):
        return self._value - _coerce(other)

    def __rsub__(self, other: Any):
        return _coerce(other) - self._value

    def __mul__(self, other: Any):
        return self._value * _coerce(other)

    __rmul__ = __mul__

    def __truediv__(self, other: Any):
        return self._value / _coerce(other)

    def __rtruediv__(self, other: Any):
        return _coerce(other) / self._value

    def __floordiv__(self, other: Any):
        return self._value // _coerce(other)

    def __mod__(self, other: Any):
        return self._value % _coerce(other)

    def __neg__(self):
        return -self._value

    def _iadd_recording(self, other: Any) -> "Counter":
        self._value += _coerce(other)
        return self

    def _iadd_disabled(self, other: Any) -> "Counter":
        return self

    def _isub_recording(self, other: Any) -> "Counter":
        self._value -= _coerce(other)
        return self

    #: Rebound by :func:`set_metrics_enabled`.
    __iadd__ = _iadd_recording
    __isub__ = _isub_recording

    def __hash__(self) -> int:
        # Identity hash: counters are mutable registry objects.
        return id(self)

    def __format__(self, spec: str) -> str:
        return format(self._value, spec)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"

    def __str__(self) -> str:
        return str(self._value)


class Gauge:
    """A point-in-time value: either set explicitly or pulled from ``fn``.

    Callback gauges are how pre-existing attributes (ring watermarks, QP
    byte counts, CPU utilization) join the registry without changing the
    component that owns them.
    """

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(self, name: str = "", help: str = "",
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    def get(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.get()}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.get()})"


#: Linear sub-buckets per power of two; bounds the relative quantile
#: error at 1/SUB_BUCKETS (~3%) with a few hundred buckets total.
SUB_BUCKETS = 32


class Histogram:
    """HDR-style log-linear histogram with bounded memory.

    Values land in ``(exponent, sub_bucket)`` cells: the exponent is the
    power of two of the value, each octave split into :data:`SUB_BUCKETS`
    linear cells.  Percentiles come from a cumulative walk over the sorted
    cells, reporting each cell's midpoint — the classic HDR trade: exact
    counts, ~3% value resolution, O(1) record, O(buckets) memory no matter
    how many samples are recorded.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "unit", "_cells", "count", "_sum",
                 "minimum", "maximum", "_zero")

    def __init__(self, name: str = "", help: str = "", unit: str = ""):
        self.name = name
        self.help = help
        #: Human label for the recorded unit ("seconds", "us", "bytes").
        self.unit = unit
        self._cells: Dict[Tuple[int, int], int] = {}
        self._zero = 0  # samples <= 0 get their own bucket
        self.count = 0
        self._sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    @staticmethod
    def _cell_of(value: float) -> Tuple[int, int]:
        mantissa, exponent = math.frexp(value)  # mantissa in [0.5, 1)
        sub = int((mantissa * 2.0 - 1.0) * SUB_BUCKETS)  # [0, SUB_BUCKETS)
        return exponent, min(sub, SUB_BUCKETS - 1)

    @staticmethod
    def _cell_midpoint(cell: Tuple[int, int]) -> float:
        exponent, sub = cell
        low = 0.5 * (1.0 + sub / SUB_BUCKETS)
        high = 0.5 * (1.0 + (sub + 1) / SUB_BUCKETS)
        return math.ldexp((low + high) / 2.0, exponent)

    def record(self, value: float) -> None:
        self.count += 1
        self._sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self._zero += 1
            return
        cell = self._cell_of(value)
        self._cells[cell] = self._cells.get(cell, 0) + 1

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else math.nan

    @property
    def n_buckets(self) -> int:
        return len(self._cells) + (1 if self._zero else 0)

    def percentile(self, p: float) -> float:
        """Approximate percentile, ``p`` in [0, 100]; NaN when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if self.count == 0:
            return math.nan
        if p == 0.0:
            return self.minimum
        target = p / 100.0 * self.count
        seen = self._zero
        if seen >= target and self._zero:
            return min(self.minimum, 0.0)
        for cell in sorted(self._cells):
            seen += self._cells[cell]
            if seen >= target:
                # Clamp to the observed extremes so p0/p100 are exact.
                mid = self._cell_midpoint(cell)
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum

    def percentiles(self, ps: Tuple[float, ...] = (50, 95, 99)):
        return {p: self.percentile(p) for p in ps}

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "unit": self.unit,
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else math.nan,
            "max": self.maximum if self.count else math.nan,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class LatencyView:
    """Adapter exposing an exact :class:`~repro.sim.monitor.LatencyRecorder`
    through the histogram snapshot schema (optionally rescaled, e.g.
    seconds -> microseconds)."""

    kind = "histogram"
    __slots__ = ("name", "recorder", "scale", "unit", "loop")

    def __init__(self, recorder, scale: float = 1.0, unit: str = "",
                 name: str = "", loop: str = ""):
        self.name = name
        self.recorder = recorder
        self.scale = scale
        self.unit = unit
        # Measurement methodology tag: "closed" (synchronous drivers —
        # subject to coordinated omission) or "open" (arrival-clocked).
        self.loop = loop

    def snapshot(self) -> Dict[str, Any]:
        rec = self.recorder
        empty = rec.count == 0
        snap = {
            "type": "histogram",
            "unit": self.unit,
            "count": rec.count,
            "mean": rec.mean * self.scale,
            "min": (min(rec.samples) * self.scale) if not empty else math.nan,
            "max": (max(rec.samples) * self.scale) if not empty else math.nan,
            "p50": rec.percentile(50) * self.scale,
            "p95": rec.percentile(95) * self.scale,
            "p99": rec.percentile(99) * self.scale,
            "p999": rec.percentile(99.9) * self.scale,
        }
        if self.loop:
            snap["loop"] = self.loop
        return snap


class WindowSampler:
    """Bounded (time, value) series sampled on the simulation clock.

    ``while_fn`` (when given) stops the sampling process once it returns
    False — e.g. "while any client driver is alive" — so an experiment's
    event queue still drains.
    """

    kind = "series"

    def __init__(
        self,
        sim,
        fn: Callable[[], float],
        interval: float,
        name: str = "",
        max_points: int = 1024,
        while_fn: Optional[Callable[[], bool]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.sim = sim
        self.name = name
        self.interval = interval
        self._fn = fn
        self._while = while_fn
        self.points: deque = deque(maxlen=max_points)
        self._proc = None

    def start(self) -> "WindowSampler":
        if self._proc is None:
            self._proc = self.sim.process(
                self._run(), name=f"sampler-{self.name or 'anon'}"
            )
        return self

    def _run(self) -> Generator:
        while self._while is None or self._while():
            yield self.sim.timeout(self.interval)
            self.points.append((self.sim.now, float(self._fn())))

    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "series",
            "interval": self.interval,
            "points": [[t, v] for t, v in self.points],
        }


class MetricsRegistry:
    """Name -> metric map with get-or-create factories.

    Names are dotted paths (``server.requests_handled``,
    ``client.latency_us``); the registry itself imposes no hierarchy
    beyond what the names spell out.
    """

    def __init__(self) -> None:
        self._metrics: "OrderedDict[str, Any]" = OrderedDict()

    # -- factories ---------------------------------------------------------

    def _get_or_create(self, name: str, factory, expected_kind: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if getattr(existing, "kind", None) != expected_kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{getattr(existing, 'kind', type(existing).__name__)!r}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help), "counter"
        )

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              help: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help, fn=fn), "gauge"
        )

    def histogram(self, name: str, help: str = "",
                  unit: str = "") -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, unit=unit), "histogram"
        )

    def sampler(
        self,
        sim,
        name: str,
        fn: Callable[[], float],
        interval: float,
        max_points: int = 1024,
        while_fn: Optional[Callable[[], bool]] = None,
    ) -> WindowSampler:
        sampler = self._get_or_create(
            name,
            lambda: WindowSampler(sim, fn, interval, name=name,
                                  max_points=max_points, while_fn=while_fn),
            "series",
        )
        return sampler.start()

    # -- adoption ----------------------------------------------------------

    def adopt(self, name: str, metric) -> Any:
        """Register an externally owned metric (anything with
        ``snapshot()``) under ``name``; the owner keeps mutating it."""
        if not hasattr(metric, "snapshot"):
            raise TypeError(
                f"{type(metric).__name__} has no snapshot(); cannot adopt"
            )
        existing = self._metrics.get(name)
        if existing is not None and existing is not metric:
            raise ValueError(f"metric {name!r} already registered")
        if getattr(metric, "name", None) in ("", None):
            try:
                metric.name = name
            except AttributeError:
                pass
        self._metrics[name] = metric
        return metric

    def expose(self, name: str, fn: Callable[[], float],
               help: str = "") -> Gauge:
        """Shorthand: register a pull gauge over an existing attribute."""
        return self.gauge(name, fn=fn, help=help)

    # -- introspection -----------------------------------------------------

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """One JSON-ready dict capturing every registered metric now."""
        return {name: metric.snapshot()
                for name, metric in self._metrics.items()}
