"""Observability: metrics registry, trace spans, JSON export.

The uniform way every experiment reports what it did — see
``docs/observability.md`` for the artifact schema and usage patterns.
"""

from .export import (
    SCHEMA,
    dumps,
    load_metrics_json,
    snapshot_document,
    write_metrics_json,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LatencyView,
    MetricsRegistry,
    WindowSampler,
    metrics_enabled,
    set_metrics_enabled,
)
from .trace import NULL_SPAN, NULL_TRACER, NullTracer, Span, TraceEvent, Tracer

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyView",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "WindowSampler",
    "dumps",
    "load_metrics_json",
    "metrics_enabled",
    "set_metrics_enabled",
    "snapshot_document",
    "write_metrics_json",
]
