"""JSON export of metrics + trace snapshots.

Every benchmark and CLI run emits the same document shape, so runs are
comparable across schemes, presets and PRs::

    {
      "schema": "catfish-metrics/v1",
      "meta": {"scheme": "catfish", "fabric": "ib-100g", ...},
      "metrics": {"<name>": {"type": "counter"|"gauge"|"histogram"|"series",
                              ...}},
      "trace": {"total_events": N, "dropped_events": D, "events": [...]}
    }

Latency histograms carry ``count/mean/min/max/p50/p95/p99/p999`` (and a
``loop`` tag — ``"closed"`` or ``"open"`` — when the producer declared
its measurement methodology); non-finite floats are serialized as
``null`` so the artifact is strict JSON.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional

SCHEMA = "catfish-metrics/v1"


def _sanitize(value: Any) -> Any:
    """Replace non-finite floats with None, recursively (strict JSON)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    # Counters and other int-likes.
    if hasattr(value, "__int__"):
        return int(value)
    return repr(value)


def snapshot_document(
    registry,
    tracer=None,
    meta: Optional[Dict[str, Any]] = None,
    trace_limit: Optional[int] = 1000,
) -> Dict[str, Any]:
    """Capture one comparable metrics document (plain dict, JSON-ready)."""
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "meta": _sanitize(meta or {}),
        "metrics": _sanitize(registry.snapshot()),
    }
    if tracer is not None and tracer.total_events:
        doc["trace"] = _sanitize(tracer.snapshot(limit=trace_limit))
    return doc


def dumps(document: Dict[str, Any], indent: int = 2) -> str:
    return json.dumps(_sanitize(document), indent=indent, sort_keys=True)


def write_metrics_json(path: str, document: Dict[str, Any]) -> str:
    """Write one document (or a list/dict of documents) to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(document))
        fh.write("\n")
    return path


def load_metrics_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
