"""Structured trace events: per-request spans with bounded memory.

A :class:`Tracer` collects :class:`TraceEvent` records from instrumented
components into one bounded ring (oldest events are evicted, a counter
records the loss).  Instrumentation sites open a :class:`Span` per request
and annotate its phases — for the adaptive client the canonical sequence
is ``decide -> issue -> rtt* -> validate -> retry/restart -> end``.

Tracing is opt-in twice over: components default to the no-op
:data:`NULL_TRACER`, and a real tracer only records components that were
:meth:`Tracer.enable`-d — so the hot path costs one set-membership test
when tracing is off.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Dict, List, Optional, Tuple


class TraceEvent:
    """One timestamped annotation inside a span."""

    __slots__ = ("t", "component", "span_id", "name", "attrs")

    def __init__(self, t: float, component: str, span_id: int, name: str,
                 attrs: Optional[Dict[str, Any]] = None):
        self.t = t
        self.component = component
        self.span_id = span_id
        self.name = name
        self.attrs = attrs or {}

    def as_dict(self) -> Dict[str, Any]:
        doc = {
            "t": self.t,
            "component": self.component,
            "span": self.span_id,
            "name": self.name,
        }
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc

    def __repr__(self) -> str:
        return (f"<TraceEvent {self.component}/{self.name} "
                f"span={self.span_id} t={self.t:.6g}>")


class Span:
    """One traced request (or sub-operation); emits events into the tracer."""

    __slots__ = ("_tracer", "component", "span_id", "name", "start",
                 "_ended")

    def __init__(self, tracer: "Tracer", component: str, span_id: int,
                 name: str):
        self._tracer = tracer
        self.component = component
        self.span_id = span_id
        self.name = name
        self.start = tracer.sim.now
        self._ended = False

    def annotate(self, name: str, **attrs: Any) -> "Span":
        """Record one phase event (``decide``, ``issue``, ``rtt``, ...)."""
        self._tracer._emit(
            TraceEvent(self._tracer.sim.now, self.component, self.span_id,
                       name, attrs or None)
        )
        return self

    def end(self, **attrs: Any) -> None:
        if self._ended:
            return
        self._ended = True
        attrs.setdefault("elapsed", self._tracer.sim.now - self.start)
        self.annotate("end", **attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.end(error=repr(exc))
        else:
            self.end()


class _NullSpan:
    """Absorbs every annotation; returned when tracing is off."""

    __slots__ = ()
    component = ""
    span_id = -1

    def annotate(self, name: str, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded collector of trace events, togglable per component."""

    def __init__(self, sim, max_events: int = 65536,
                 components: Tuple[str, ...] = ()):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.sim = sim
        self.max_events = max_events
        self._events: deque = deque(maxlen=max_events)
        #: None means "every component"; otherwise the enabled set.
        self._enabled: Optional[set] = set(components) if components else None
        self._span_ids = itertools.count(1)
        self.total_events = 0

    # -- toggles -----------------------------------------------------------

    def enable(self, *components: str) -> None:
        """Restrict tracing to ``components`` (adds to the current set).

        With no arguments, enables every component."""
        if not components:
            self._enabled = None
            return
        if self._enabled is None:
            self._enabled = set()
        self._enabled.update(components)

    def disable(self, *components: str) -> None:
        """Stop tracing ``components`` (all of them when called bare)."""
        if not components:
            self._enabled = set()
            return
        if self._enabled is None:
            return  # "everything" minus a name is not representable; keep all
        self._enabled.difference_update(components)

    def is_enabled(self, component: str) -> bool:
        return self._enabled is None or component in self._enabled

    # -- recording ---------------------------------------------------------

    def span(self, component: str, name: str, **attrs: Any):
        """Open a span; returns :data:`NULL_SPAN` for disabled components."""
        if not self.is_enabled(component):
            return NULL_SPAN
        span = Span(self, component, next(self._span_ids), name)
        span.annotate("begin", op=name, **attrs)
        return span

    def _emit(self, event: TraceEvent) -> None:
        self.total_events += 1
        self._events.append(event)

    # -- introspection -----------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped_events(self) -> int:
        """Events evicted from the bounded ring."""
        return self.total_events - len(self._events)

    def spans(self) -> Dict[int, List[TraceEvent]]:
        """Retained events grouped by span id, in emission order."""
        grouped: Dict[int, List[TraceEvent]] = {}
        for event in self._events:
            grouped.setdefault(event.span_id, []).append(event)
        return grouped

    def snapshot(self, limit: Optional[int] = None) -> Dict[str, Any]:
        events = list(self._events)
        if limit is not None:
            events = events[-limit:]
        return {
            "total_events": self.total_events,
            "dropped_events": self.dropped_events,
            "events": [e.as_dict() for e in events],
        }

    def clear(self) -> None:
        self._events.clear()


class NullTracer:
    """The default: never records, never allocates."""

    max_events = 0
    total_events = 0
    dropped_events = 0

    def enable(self, *components: str) -> None:
        pass

    def disable(self, *components: str) -> None:
        pass

    def is_enabled(self, component: str) -> bool:
        return False

    def span(self, component: str, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def spans(self) -> Dict[int, List[TraceEvent]]:
        return {}

    def snapshot(self, limit: Optional[int] = None) -> Dict[str, Any]:
        return {"total_events": 0, "dropped_events": 0, "events": []}

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
