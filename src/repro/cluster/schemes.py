"""The access-scheme registry: the five lines of every paper figure.

Baselines (paper §V): the TCP/IP socket solution on two Ethernet fabrics,
and FaRM-style "Fast messaging" / "RDMA offloading".  "Catfish" adds the
event-driven server, multi-issue offloading and the adaptive algorithm.
Ablation variants isolate each optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

TRANSPORT_TCP = "tcp"
TRANSPORT_RDMA = "rdma"

OFFLOAD_NEVER = "never"
OFFLOAD_ALWAYS = "always"
OFFLOAD_ADAPTIVE = "adaptive"
OFFLOAD_BANDIT = "bandit"

#: Offload-mode vocabulary → runtime path-policy names
#: (:data:`repro.runtime.policy.POLICY_NAMES`).  The scheme registry
#: predates the runtime layer, so the historical mode strings stay the
#: configuration surface and map onto policies here.
OFFLOAD_POLICIES = {
    OFFLOAD_NEVER: "always-fm",
    OFFLOAD_ALWAYS: "always-offload",
    OFFLOAD_ADAPTIVE: "algorithm1",
    OFFLOAD_BANDIT: "bandit",
}


@dataclass(frozen=True)
class SchemeSpec:
    """How one scheme composes transports and client behaviour."""

    name: str
    transport: str
    #: Server notification: "polling" or "event" (ignored for TCP).
    notification: str = "polling"
    offload: str = OFFLOAD_NEVER
    multi_issue: bool = False
    #: Whether the server broadcasts heartbeats (only useful to adaptive
    #: clients, but harmless otherwise).
    heartbeats: bool = False
    #: predUtil variant for adaptive clients: "latest" (the paper's),
    #: "ewma" or "trend" (the §VI future-work predictors).
    predictor: str = "latest"
    #: Default shard count: 1 = the paper's single server; > 1 runs the
    #: scheme through the sharded cluster (``repro.shard``), one full
    #: Catfish stack per shard behind a scatter-gather router.
    shards: int = 1

    @property
    def policy(self) -> str:
        """The runtime path-policy this scheme's offload mode maps to."""
        try:
            return OFFLOAD_POLICIES[self.offload]
        except KeyError:
            raise ValueError(
                f"unknown offload mode {self.offload!r}; "
                f"known: {sorted(OFFLOAD_POLICIES)}"
            ) from None


SCHEMES = {
    # The socket baselines; fabric (1G/40G) is chosen separately.
    "tcp": SchemeSpec(
        name="tcp",
        transport=TRANSPORT_TCP,
    ),
    # FaRM fast messaging: RDMA Write + per-connection polling threads.
    "fast-messaging": SchemeSpec(
        name="fast-messaging",
        transport=TRANSPORT_RDMA,
        notification="polling",
        offload=OFFLOAD_NEVER,
    ),
    # FaRM offloading: every search is a one-at-a-time one-sided traversal.
    "rdma-offloading": SchemeSpec(
        name="rdma-offloading",
        transport=TRANSPORT_RDMA,
        notification="polling",
        offload=OFFLOAD_ALWAYS,
        multi_issue=False,
    ),
    # The full system: event-driven server, adaptive clients, multi-issue.
    "catfish": SchemeSpec(
        name="catfish",
        transport=TRANSPORT_RDMA,
        notification="event",
        offload=OFFLOAD_ADAPTIVE,
        multi_issue=True,
        heartbeats=True,
    ),
    # -- ablation variants ------------------------------------------------
    "fast-messaging-event": SchemeSpec(
        name="fast-messaging-event",
        transport=TRANSPORT_RDMA,
        notification="event",
        offload=OFFLOAD_NEVER,
    ),
    "rdma-offloading-multi": SchemeSpec(
        name="rdma-offloading-multi",
        transport=TRANSPORT_RDMA,
        notification="polling",
        offload=OFFLOAD_ALWAYS,
        multi_issue=True,
    ),
    "catfish-polling": SchemeSpec(
        name="catfish-polling",
        transport=TRANSPORT_RDMA,
        notification="polling",
        offload=OFFLOAD_ADAPTIVE,
        multi_issue=True,
        heartbeats=True,
    ),
    "catfish-single-issue": SchemeSpec(
        name="catfish-single-issue",
        transport=TRANSPORT_RDMA,
        notification="event",
        offload=OFFLOAD_ADAPTIVE,
        multi_issue=False,
        heartbeats=True,
    ),
    # -- future-work variants (paper §VI / §V-B) ----------------------------
    "catfish-ewma": SchemeSpec(
        name="catfish-ewma",
        transport=TRANSPORT_RDMA,
        notification="event",
        offload=OFFLOAD_ADAPTIVE,
        multi_issue=True,
        heartbeats=True,
        predictor="ewma",
    ),
    "catfish-trend": SchemeSpec(
        name="catfish-trend",
        transport=TRANSPORT_RDMA,
        notification="event",
        offload=OFFLOAD_ADAPTIVE,
        multi_issue=True,
        heartbeats=True,
        predictor="trend",
    ),
    # Beyond the paper: the full Catfish stack replicated per shard
    # behind the client-side scatter-gather spatial router.
    "catfish-sharded": SchemeSpec(
        name="catfish-sharded",
        transport=TRANSPORT_RDMA,
        notification="event",
        offload=OFFLOAD_ADAPTIVE,
        multi_issue=True,
        heartbeats=True,
        shards=4,
    ),
    # Latency bandit: learns the mode from its own observed latencies; no
    # heartbeats required.
    "catfish-bandit": SchemeSpec(
        name="catfish-bandit",
        transport=TRANSPORT_RDMA,
        notification="event",
        offload=OFFLOAD_BANDIT,
        multi_issue=True,
        heartbeats=False,
    ),
}


def scheme_spec(name: str) -> SchemeSpec:
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; known: {sorted(SCHEMES)}"
        ) from None
