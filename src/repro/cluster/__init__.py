"""Experiment assembly: configs, schemes, the runner, results."""

from .builder import ExperimentRunner, run_experiment
from .config import ExperimentConfig
from .kv_builder import KvExperimentConfig, run_kv_experiment
from .results import RunResult, merge_client_stats
from .schemes import (
    OFFLOAD_ADAPTIVE,
    OFFLOAD_ALWAYS,
    OFFLOAD_NEVER,
    SCHEMES,
    SchemeSpec,
    scheme_spec,
)

__all__ = [
    "ExperimentRunner",
    "run_experiment",
    "ExperimentConfig",
    "KvExperimentConfig",
    "run_kv_experiment",
    "RunResult",
    "merge_client_stats",
    "OFFLOAD_ADAPTIVE",
    "OFFLOAD_ALWAYS",
    "OFFLOAD_NEVER",
    "SCHEMES",
    "SchemeSpec",
    "scheme_spec",
]
