"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..client.adaptive import AdaptiveParams
from ..client.node_cache import NodeCacheConfig
from ..client.resilience import BreakerParams, RetryPolicy
from ..faults.plan import FaultPlan
from ..rtree.geometry import Rect
from ..rtree.node import DEFAULT_MAX_ENTRIES
from ..server.costs import DEFAULT_COSTS, CostModel
from ..server.heartbeat import DEFAULT_HEARTBEAT_INTERVAL
from ..traffic.config import TrafficConfig


@dataclass(frozen=True)
class RebalanceConfig:
    """Tunables of the elastic shard plane (see repro.shard.rebalance).

    Lives here (not in ``repro.shard``) so :class:`ExperimentConfig` can
    carry it without an import cycle; ``repro.shard.rebalance`` re-exports
    it.  All golden fingerprints are pinned on ``ExperimentConfig``'s
    default of ``rebalance=None`` (no controller, static plane).
    """

    #: Master switch; a config carrying a disabled block behaves as None.
    enabled: bool = True
    #: Controller cycle period (simulated seconds between load reads).
    interval: float = 0.05e-3
    #: Simulated delay before the first cycle (let load windows fill).
    warmup: float = 0.0
    #: A shard is "hot" when its per-cycle load exceeds
    #: ``split_ratio`` x the mean per-shard load.
    split_ratio: float = 1.5
    #: Never split a shard holding fewer items than this.
    min_split_items: int = 32
    #: Ceiling on routing-table growth (splits stop at this many tiles).
    max_tiles: int = 64
    #: Simulated drain time between the epoch cut-over and the source-side
    #: deletes: queries that scattered against the old plane finish
    #: against a source that still holds the moved items.  (The router's
    #: epoch-aware re-scatter is the safety net if a straggler outlives
    #: even this window.)
    drain_s: float = 0.3e-3
    #: Opportunistic merging of adjacent same-owner tiles (at most one
    #: merge per controller cycle).
    merge_enabled: bool = True

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.split_ratio < 1.0:
            raise ValueError(
                f"split_ratio must be >= 1, got {self.split_ratio}"
            )
        if self.min_split_items < 2:
            raise ValueError(
                f"min_split_items must be >= 2, got {self.min_split_items}"
            )
        if self.max_tiles < 1:
            raise ValueError(
                f"max_tiles must be >= 1, got {self.max_tiles}"
            )
        if self.drain_s < 0:
            raise ValueError(f"drain_s must be >= 0, got {self.drain_s}")


@dataclass
class ExperimentConfig:
    """Everything needed to run one point of a paper figure."""

    scheme: str = "catfish"
    fabric: str = "ib-100g"
    n_clients: int = 8
    requests_per_client: int = 100

    # Workload.
    # search | search-skewed | hybrid | churn | hybrid-skewed | mixed
    # | queries
    workload_kind: str = "search"
    scale: str = "0.00001"         # "0.00001" | "0.01" | "powerlaw"
    insert_fraction: float = 0.1
    queries: Sequence[Rect] = ()

    # Dataset / tree.
    dataset_size: int = 50_000
    dataset: Optional[List[Tuple[Rect, int]]] = None
    max_entries: int = DEFAULT_MAX_ENTRIES
    #: Serve one-sided reads as real packed chunk bytes (full-fidelity
    #: FaRM validation on the client; slower to simulate).
    byte_mode: bool = False

    # Hardware / costs.
    server_cores: int = 28
    client_cores: int = 2
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    # Adaptive parameters (paper: N=8, T=95%, Inv=10ms).  When left None,
    # the client-side Inv is derived from ``heartbeat_interval`` so that
    # shortening the heartbeat automatically shortens the clients' reading
    # cadence (they are "agreed when the connection is established", §IV-A).
    adaptive: Optional[AdaptiveParams] = None
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL

    #: Shard count for the sharded runner; None defers to the scheme's
    #: ``shards`` (1 for every single-server scheme).  Any value > 1
    #: routes the run through ``repro.shard.deploy``.
    n_shards: Optional[int] = None

    #: Elastic shard plane: when set (and enabled), the sharded runner
    #: shares one live epoch-versioned shard map across all clients,
    #: routes reads epoch-aware, and starts a
    #: :class:`~repro.shard.rebalance.RebalanceController` driving tile
    #: split/merge and live item migration as background work.  None —
    #: the default every scheme and chaos golden fingerprint is pinned
    #: on — keeps the static per-client map copies of PR 4.
    rebalance: Optional[RebalanceConfig] = None

    #: Batched reads: group up to this many consecutive searches of a
    #: client's stream into one shared offload traversal
    #: (``OffloadEngine.search_batch``).  0/1 disables batching — the
    #: default, on which all scheme and chaos golden fingerprints are
    #: pinned.  Sessions without a batch-capable engine (TCP,
    #: fast-messaging-only, the sharded router) silently degrade to
    #: sequential execution.
    batch_queries: int = 0

    seed: int = 0

    # Robustness (all default-off; see docs/robustness.md).
    #: Timed fault windows injected into the run (None/empty = no faults,
    #: no hooks attached).
    fault_plan: Optional[FaultPlan] = None
    #: Per-request deadline + retry budget for fast-messaging clients;
    #: None keeps the seed's block-forever behaviour.
    retry: Optional[RetryPolicy] = None
    #: Offload circuit breaker for adaptive clients; None propagates
    #: OffloadError as before.
    breaker: Optional[BreakerParams] = None
    #: Consecutive missing heartbeats before an adaptive client cancels
    #: its remaining offload budget; None disables the staleness check.
    stale_after_missing: Optional[int] = None
    #: Server overload guard: shed a consumed request when this many are
    #: still queued behind it; None disables shedding.
    max_queue_depth: Optional[int] = None

    #: Client-side cache of internal node views for the offload path
    #: (RDMAbox-style; see repro.client.node_cache).  None/disabled keeps
    #: the engine byte-identical to the cache-less seed — the golden
    #: fingerprints are pinned on that default.
    node_cache: Optional[NodeCacheConfig] = None

    #: Open-loop traffic block (arrival kind, offered rate, tenants,
    #: aggregate sizing).  None — the default every scheme and chaos
    #: golden fingerprint is pinned on — keeps the classic closed-loop
    #: drivers; setting it routes ``run_experiment`` through
    #: ``repro.traffic.harness`` instead.
    traffic: Optional[TrafficConfig] = None

    #: When True, the runner samples (time, cpu_util, offload_fraction)
    #: every heartbeat interval into ``RunResult.timeline`` and registers
    #: windowed samplers with the metrics registry.
    collect_timeline: bool = False

    #: Structured tracing (per-request spans).  Off by default: a real
    #: tracer costs one bounded ring of events; NULL_TRACER costs nothing.
    trace: bool = False
    #: Components to trace when ``trace`` is set; empty means all
    #: ("adaptive", "offload", ...).
    trace_components: Tuple[str, ...] = ()
    #: Bound on retained trace events (oldest evicted beyond this).
    trace_max_events: int = 65536

    def __post_init__(self):
        if self.n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {self.n_clients}")
        if self.requests_per_client < 1:
            raise ValueError(
                f"requests_per_client must be >= 1, got "
                f"{self.requests_per_client}"
            )
        if self.workload_kind not in ("search", "search-skewed", "hybrid",
                                      "churn", "hybrid-skewed", "mixed",
                                      "queries"):
            raise ValueError(f"unknown workload {self.workload_kind!r}")
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.batch_queries < 0:
            raise ValueError(
                f"batch_queries must be >= 0, got {self.batch_queries}"
            )
        if self.adaptive is None:
            self.adaptive = AdaptiveParams(Inv=self.heartbeat_interval)

    @property
    def total_requests(self) -> int:
        return self.n_clients * self.requests_per_client
