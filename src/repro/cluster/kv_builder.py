"""Experiment assembly for the §VI framework extensions (B+tree, cuckoo).

Mirrors :mod:`repro.cluster.builder` for key-value indexes: zipf-popular
GET/PUT (and, for the B+tree, range-scan) workloads over the same fabric,
ring-buffer and adaptive-client machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..btree import (
    BTreeOffloadEngine,
    BTreeService,
    KvBanditSession,
    KvCatfishSession,
    KvFmSession,
    KvOffloadSession,
    KvRequest,
    OP_GET,
    OP_PUT,
    OP_SCAN,
)
from ..client.adaptive import AdaptiveParams
from ..client.base import CLIENT_COUNTER_FIELDS, ClientStats
from ..cuckoo import CuckooOffloadEngine, CuckooService
from ..hw.host import Host
from ..net.fabric import Network, profile_by_name
from ..obs import LatencyView, MetricsRegistry, snapshot_document
from ..server.fast_messaging import EVENT, FastMessagingServer
from ..server.heartbeat import HeartbeatService
from ..sim.kernel import Simulator, all_of
from ..sim.rng import RngRegistry
from .results import RunResult, merge_client_stats

KV_SCHEMES = ("fast-messaging", "rdma-offloading", "catfish",
              "catfish-bandit")
KV_INDEXES = ("btree", "cuckoo")


@dataclass
class KvExperimentConfig:
    """One KV experiment point."""

    index: str = "btree"
    scheme: str = "catfish"
    fabric: str = "ib-100g"
    n_clients: int = 8
    requests_per_client: int = 100

    # Workload: zipf-popular keys, get/put/scan mix.
    n_keys: int = 20_000
    get_fraction: float = 0.9
    scan_fraction: float = 0.0  # B+tree only
    scan_span: int = 200        # key-space width of one scan
    zipf_s: float = 0.99

    # Index parameters.
    capacity: int = 64          # B+tree node capacity
    n_buckets: Optional[int] = None  # cuckoo (default: sized for 60% load)

    server_cores: int = 28
    client_cores: int = 2
    heartbeat_interval: float = 0.5e-3
    adaptive: Optional[AdaptiveParams] = None
    seed: int = 0

    def __post_init__(self):
        if self.index not in KV_INDEXES:
            raise ValueError(f"unknown index {self.index!r}")
        if self.scheme not in KV_SCHEMES:
            raise ValueError(f"unknown kv scheme {self.scheme!r}")
        if self.index == "cuckoo" and self.scan_fraction > 0:
            raise ValueError("cuckoo hashing has no range scans")
        if not 0 <= self.get_fraction + self.scan_fraction <= 1:
            raise ValueError("get/scan fractions exceed 1")
        if self.adaptive is None:
            self.adaptive = AdaptiveParams(Inv=self.heartbeat_interval)

    @property
    def total_requests(self) -> int:
        return self.n_clients * self.requests_per_client


def _kv_workload(config: KvExperimentConfig, keys, rng) -> List[KvRequest]:
    """One client's zipf-popular request stream."""
    from ..workloads.skew import ZipfSampler
    sampler = ZipfSampler(len(keys), config.zipf_s)
    requests: List[KvRequest] = []
    for _ in range(config.requests_per_client):
        roll = rng.random()
        key = keys[sampler.sample(rng)]
        if roll < config.get_fraction:
            requests.append(KvRequest(OP_GET, key=key))
        elif roll < config.get_fraction + config.scan_fraction:
            requests.append(KvRequest(
                OP_SCAN, lo=key, hi=key + config.scan_span,
                max_results=256,
            ))
        else:
            requests.append(KvRequest(OP_PUT, key=key,
                                      value=rng.randrange(1 << 30)))
    return requests


def run_kv_experiment(config: KvExperimentConfig) -> RunResult:
    """Build, run and summarize one KV experiment."""
    sim = Simulator()
    rngs = RngRegistry(config.seed)
    profile = profile_by_name(config.fabric)
    if not profile.rdma:
        raise ValueError("KV experiments run on the RDMA fabric")
    network = Network(sim, profile)
    server_host = Host(sim, "server", profile, cores=config.server_cores)
    network.attach_server(server_host)

    data_rng = rngs.stream("dataset")
    keys = sorted(data_rng.sample(range(1 << 40), config.n_keys))
    items = [(k, k ^ 0x5A5A) for k in keys]
    if config.index == "btree":
        service = BTreeService(sim, server_host, items,
                               capacity=config.capacity)
    else:
        n_buckets = config.n_buckets or max(
            64, int(config.n_keys / (4 * 0.6))
        )
        service = CuckooService(sim, server_host, items,
                                n_buckets=n_buckets,
                                seed=config.seed)
    fm_server = FastMessagingServer(sim, service, network, mode=EVENT)
    heartbeats = HeartbeatService(
        sim, server_host.cpu.window_utilization,
        interval=config.heartbeat_interval,
    )

    all_stats: List[ClientStats] = []
    engines = []
    drivers = []
    for client_id in range(config.n_clients):
        host = Host(sim, f"client-{client_id}", profile,
                    cores=config.client_cores)
        conn = fm_server.open_connection(host)
        stats = ClientStats()
        fm = KvFmSession(sim, conn, client_id, stats)
        heartbeats.subscribe(
            conn.response_ring,
            lambda hb, c=conn: c.server_post_response(hb),
        )
        if config.index == "btree":
            engine = BTreeOffloadEngine(
                sim, conn.client_end, service.offload_descriptor(),
                service.costs, stats,
            )
        else:
            engine = CuckooOffloadEngine(
                sim, conn.client_end, service.descriptor(),
                service.costs, stats,
            )
        session = _make_session(sim, config, fm, engine, stats,
                                rngs.fork(f"client-{client_id}"))
        requests = _kv_workload(
            config, keys,
            rngs.fork(f"client-{client_id}").stream("workload"),
        )
        drivers.append(sim.process(
            _driver(sim, session, requests, stats),
            name=f"kv-client-{client_id}",
        ))
        all_stats.append(stats)
        engines.append(engine)
    heartbeats.start()

    metrics = MetricsRegistry()
    fm_server.register_metrics(metrics)
    heartbeats.register_metrics(metrics)
    metrics.expose("server.cpu_utilization", server_host.cpu.utilization)
    metrics.expose("net.server_bandwidth_gbps",
                   network.server_bandwidth_gbps)
    for field in CLIENT_COUNTER_FIELDS:
        metrics.expose(
            f"client.{field}",
            lambda f=field: sum(int(getattr(s, f)) for s in all_stats),
        )
    # The two engine families count different things (meta/chunk reads vs
    # bucket fetches): expose whatever this index's engine actually has.
    for field in ("meta_reads", "chunks_fetched", "buckets_fetched",
                  "stale_root_detections"):
        if any(hasattr(e, field) for e in engines):
            metrics.expose(
                f"offload.{field}",
                lambda f=field: sum(int(getattr(e, f, 0)) for e in engines),
            )

    sim.run_until_triggered(all_of(sim, drivers))

    merged = merge_client_stats(all_stats)
    elapsed = sim.now
    to_us = 1e6
    metrics.adopt("client.latency_us",
                  LatencyView(merged.latency, scale=to_us, unit="us",
                              loop="closed"))
    return RunResult(
        scheme=f"{config.index}:{config.scheme}",
        fabric=config.fabric,
        n_clients=config.n_clients,
        total_requests=int(merged.requests_sent),
        elapsed_s=elapsed,
        throughput_kops=int(merged.requests_sent) / elapsed / 1e3,
        mean_latency_us=merged.latency.mean * to_us,
        p50_latency_us=merged.latency.percentile(50) * to_us,
        p99_latency_us=merged.latency.percentile(99) * to_us,
        p999_latency_us=merged.latency.percentile(99.9) * to_us,
        mean_search_latency_us=(
            merged.search_latency.mean * to_us
            if merged.search_latency.count else float("nan")
        ),
        server_cpu_utilization=server_host.cpu.utilization(),
        server_bandwidth_gbps=network.server_bandwidth_gbps(),
        server_bandwidth_utilization=(
            network.server_bandwidth_gbps() * 1e9 / profile.bandwidth_bps
        ),
        offload_fraction=merged.offload_fraction,
        torn_retries=int(merged.torn_retries),
        search_restarts=int(merged.search_restarts),
        heartbeats_sent=int(heartbeats.beats_sent),
        heartbeats_dropped=int(heartbeats.beats_dropped),
        metrics=snapshot_document(metrics, meta={
            "scheme": f"{config.index}:{config.scheme}",
            "fabric": config.fabric,
            "n_clients": config.n_clients,
            "requests_per_client": config.requests_per_client,
            "seed": config.seed,
            "elapsed_s": elapsed,
        }),
    )


def _make_session(sim, config, fm, engine, stats, rng_registry):
    scheme = config.scheme
    if scheme == "fast-messaging":
        return fm
    if scheme == "rdma-offloading":
        if config.index == "cuckoo":
            return _CuckooOffloadAll(engine, fm)
        return KvOffloadSession(engine, fm, stats)
    if scheme == "catfish":
        if config.index == "cuckoo":
            from ..cuckoo import CuckooCatfishSession
            cls = CuckooCatfishSession
        else:
            cls = KvCatfishSession
        return cls(sim, fm, engine, stats, params=config.adaptive,
                   rng=rng_registry.stream("backoff"))
    if scheme == "catfish-bandit":
        if config.index == "cuckoo":
            return _CuckooBandit(sim, fm, engine, stats,
                                 rng=rng_registry.stream("bandit"))
        return KvBanditSession(sim, fm, engine, stats,
                               rng=rng_registry.stream("bandit"))
    raise ValueError(scheme)


class _CuckooOffloadAll:
    """Cuckoo always-offload baseline: GETs one-sided, writes via rings."""

    def __init__(self, engine, fm):
        self.engine = engine
        self.fm = fm

    def execute(self, request: KvRequest) -> Generator:
        if request.op == OP_GET:
            result = yield from self.engine.get(request.key)
            return result
        result = yield from self.fm.execute(request)
        return result


class _CuckooBandit:
    """Latency bandit over cuckoo GETs."""

    def __init__(self, sim, fm, engine, stats, rng=None):
        from ..client.bandit import BanditSession
        self._bandit = BanditSession(sim, fm, engine, stats, rng=rng)
        self.sim = sim
        self.fm = fm
        self.engine = engine

    def execute(self, request: KvRequest) -> Generator:
        from ..client.bandit import OFFLOADING
        if request.op != OP_GET:
            result = yield from self.fm.execute(request)
            return result
        mode = self._bandit._choose_mode()
        self._bandit.mode_counts[mode] += 1
        start = self.sim.now
        if mode == OFFLOADING:
            result = yield from self.engine.get(request.key)
        else:
            result = yield from self.fm.execute(request)
        self._bandit.estimates[mode].update(self.sim.now - start)
        return result


def _driver(sim, session, requests, stats) -> Generator:
    for request in requests:
        start = sim.now
        yield from session.execute(request)
        stats.requests_sent += 1
        stats.latency.record(sim.now - start)
