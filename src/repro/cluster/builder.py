"""Assemble and run one experiment: server + N clients + fabric.

This is the reproduction's equivalent of the paper's test driver: it
builds the R-tree server on the chosen fabric, connects ``n_clients``
independent clients running the chosen scheme, lets every client issue its
request stream back-to-back (each client is synchronous, as in the paper),
and aggregates throughput/latency/utilization into a :class:`RunResult`.
"""

from __future__ import annotations

from typing import Generator, List

from ..client.adaptive import CatfishSession
from ..client.bandit import BanditSession
from ..client.base import OP_SEARCH, ClientStats, Request
from ..client.base import CLIENT_COUNTER_FIELDS
from ..faults.injector import FaultInjector
from ..hw.host import Host
from ..net.fabric import profile_by_name
from ..obs import (
    NULL_TRACER,
    LatencyView,
    MetricsRegistry,
    Tracer,
    snapshot_document,
)
from ..runtime.factory import SessionFactory
from ..runtime.stack import ServerStack
from ..sim.kernel import Simulator, all_of
from ..sim.rng import RngRegistry
from ..rtree import batch as _scan_kernel
from ..workloads.datasets import uniform_dataset
from ..workloads.mixes import batch_runs, make_workload
from .config import ExperimentConfig
from .results import RunResult, merge_client_stats
from .schemes import TRANSPORT_TCP, scheme_spec


def _client_driver(
    sim: Simulator,
    session,
    requests: List[Request],
    stats: ClientStats,
    injector: FaultInjector = None,
    client_id: int = 0,
    batch_queries: int = 0,
) -> Generator:
    """One synchronous client: issue every request back-to-back.

    With ``batch_queries`` > 1 and a batch-capable session, runs of
    consecutive searches are grouped (``workloads.mixes.batch_runs``)
    and issued as one shared traversal; every request in a group
    records the group's wall time as its latency — that is how long the
    synchronous client actually waited for it.
    """
    batch_exec = getattr(session, "execute_search_batch", None)
    if batch_queries > 1 and batch_exec is not None:
        for group in batch_runs(requests, batch_queries):
            if injector is not None:
                stall = injector.client_stall(client_id)
                if stall > 0.0:
                    yield sim.timeout(stall)
            start = sim.now
            if len(group) == 1:
                yield from session.execute(group[0])
            else:
                yield from batch_exec(group)
            elapsed = sim.now - start
            for request in group:
                stats.requests_sent += 1
                stats.latency.record(elapsed)
                if request.op == OP_SEARCH:
                    stats.search_latency.record(elapsed)
        return
    for request in requests:
        if injector is not None:
            stall = injector.client_stall(client_id)
            if stall > 0.0:
                yield sim.timeout(stall)
        start = sim.now
        yield from session.execute(request)
        elapsed = sim.now - start
        stats.requests_sent += 1
        stats.latency.record(elapsed)
        if request.op == OP_SEARCH:
            stats.search_latency.record(elapsed)


#: Algorithm 1 introspection counters aggregated cluster-wide.
ADAPTIVE_AGGREGATE_FIELDS = (
    "busy_observations", "backoff_extensions",
    "heartbeats_consumed", "heartbeats_missing",
    "decisions_offload", "decisions_fm",
    "stale_resets", "offload_failovers",
)


def register_session_aggregates(metrics: MetricsRegistry,
                                sessions) -> None:
    """Sum per-session client counters into cluster-wide pull gauges.

    Shared by the single-server and sharded runners so every scheme's
    client-side counters (offload engine, Algorithm 1, bandit) land in
    the metrics document regardless of deployment shape.
    """
    from ..runtime.policy import FAST_MESSAGING, OFFLOADING

    engines = [e for e in (getattr(s, "engine", None) for s in sessions)
               if e is not None]
    if engines:
        for field in ("meta_reads", "stale_root_detections",
                      "chunks_fetched"):
            metrics.expose(
                f"offload.{field}",
                lambda f=field: sum(int(getattr(e, f)) for e in engines),
            )
    caches = [e.cache for e in engines
              if getattr(e, "cache", None) is not None]
    if caches:
        for field in ("hits", "misses", "invalidations", "coalesced_reads",
                      "stores", "evictions", "hint_flushes"):
            metrics.expose(
                f"cache.{field}",
                lambda f=field: sum(int(getattr(c, f)) for c in caches),
            )
        metrics.expose("cache.resident_nodes",
                       lambda: sum(len(c) for c in caches))
    adaptive = [s for s in sessions if isinstance(s, CatfishSession)]
    if adaptive:
        for field in ADAPTIVE_AGGREGATE_FIELDS:
            metrics.expose(
                f"adaptive.{field}",
                lambda f=field: sum(int(getattr(s, f)) for s in adaptive),
            )
    bandits = [s for s in sessions if isinstance(s, BanditSession)]
    if bandits:
        for field in ("offload_failovers", "breaker_demotions"):
            metrics.expose(
                f"bandit.{field}",
                lambda f=field: sum(int(getattr(s, f)) for s in bandits),
            )
        metrics.expose("bandit.explorations",
                       lambda: sum(int(s.explorations) for s in bandits))
        metrics.expose(
            "bandit.mode_fm",
            lambda: sum(s.mode_counts[FAST_MESSAGING] for s in bandits),
        )
        metrics.expose(
            "bandit.mode_offload",
            lambda: sum(s.mode_counts[OFFLOADING] for s in bandits),
        )


class ExperimentRunner:
    """Builds the cluster for a config and runs it to completion."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.metrics = MetricsRegistry()
        self.tracer = (
            Tracer(self.sim, max_events=config.trace_max_events,
                   components=config.trace_components)
            if config.trace else NULL_TRACER
        )
        self.spec = scheme_spec(config.scheme)
        self.profile = profile_by_name(config.fabric)
        if self.spec.transport != TRANSPORT_TCP and not self.profile.rdma:
            raise ValueError(
                f"scheme {config.scheme!r} needs an RDMA fabric, "
                f"got {config.fabric!r}"
            )

        self.injector = None
        if config.fault_plan:
            self.injector = FaultInjector(
                self.sim, config.fault_plan,
                rng=self.rngs.stream("faults"),
            )

        items = config.dataset
        if items is None:
            items = uniform_dataset(config.dataset_size, seed=config.seed)
        self.stack = ServerStack(
            self.sim, self.profile, self.spec, config, self.rngs, items,
        )
        if self.injector is not None:
            self.stack.attach_injector(self.injector)
        # Historical attribute surface (notebooks, tests, _collect).
        self.network = self.stack.network
        self.server_host = self.stack.host
        self.server = self.stack.server
        self.tcp_server = self.stack.tcp_server
        self.fm_server = self.stack.fm_server
        self.heartbeats = self.stack.heartbeats

        self.factory = SessionFactory(
            self.sim, self.spec, config, self.tracer,
        )
        self.client_stats: List[ClientStats] = []
        self.sessions = []
        self._drivers = []
        self._timeline: List[tuple] = []
        self._build_clients()
        if self.injector is not None:
            # Started after the clients exist so WorkerCrash faults see
            # every connection; storm targets re-resolve the root per
            # window so splits are tolerated.
            self.injector.start(
                fm_server=self.fm_server,
                storm_targets=lambda: [self.server.tree.root],
            )
        if self.heartbeats is not None:
            self.heartbeats.start()
        self._register_metrics()
        if config.collect_timeline:
            self.sim.process(self._timeline_sampler(), name="timeline")

    def _register_metrics(self) -> None:
        """Hook every component into the metrics registry.

        Server-side objects register their own counters; client-side
        counters are per-session, so the cluster aggregates them into
        pull gauges summed over all clients.
        """
        m = self.metrics
        self.stack.register_metrics(m)
        if self.injector is not None:
            self.injector.register_metrics(m)

        # Which scan kernel the whole run (server tree + offload views)
        # is using: 1 = numpy broadcasts, 0 = the pure-Python fallback.
        m.expose(
            "rtree.scan_kernel_numpy",
            lambda: 1 if _scan_kernel.kernel_name() == "numpy" else 0,
        )

        stats_list = self.client_stats
        for field in CLIENT_COUNTER_FIELDS:
            m.expose(
                f"client.{field}",
                lambda f=field: sum(int(getattr(s, f)) for s in stats_list),
            )
        register_session_aggregates(m, self.sessions)

        if self.config.collect_timeline:
            alive = lambda: any(d.is_alive for d in self._drivers)
            m.sampler(
                self.sim, "series.cpu_utilization",
                lambda: self.server_host.cpu.tracker.window_utilization(
                    reset=False),
                interval=self.config.heartbeat_interval, while_fn=alive,
            )
            m.sampler(
                self.sim, "series.requests_completed",
                lambda: sum(int(s.requests_sent) for s in stats_list),
                interval=self.config.heartbeat_interval, while_fn=alive,
            )

    def _timeline_sampler(self) -> Generator:
        """Sample (t, cpu_util, window offload fraction) periodically."""
        interval = self.config.heartbeat_interval
        prev_offload = prev_total = 0
        while any(d.is_alive for d in self._drivers):
            yield self.sim.timeout(interval)
            offload = sum(s.offloaded_requests for s in self.client_stats)
            total = sum(
                s.offloaded_requests + s.fast_messaging_requests
                for s in self.client_stats
            )
            window_total = total - prev_total
            window_offload = offload - prev_offload
            fraction = (window_offload / window_total
                        if window_total else 0.0)
            self._timeline.append(
                (self.sim.now,
                 self.server_host.cpu.tracker.window_utilization(reset=False),
                 fraction)
            )
            prev_offload, prev_total = offload, total

    # -- construction ----------------------------------------------------------

    def _build_clients(self) -> None:
        config = self.config
        workload_fn = make_workload(
            config.workload_kind,
            scale_spec=config.scale,
            n_requests=config.requests_per_client,
            insert_fraction=config.insert_fraction,
            queries=config.queries,
        )
        for client_id in range(config.n_clients):
            host = Host(
                self.sim,
                f"client-{client_id}",
                self.profile,
                cores=config.client_cores,
            )
            stats = ClientStats()
            session = self.factory.build(
                client_id, self.stack, host, stats,
                self.rngs.fork(f"client-{client_id}"),
            )
            rng = self.rngs.fork(f"client-{client_id}").stream("workload")
            requests = workload_fn(client_id, rng)
            driver = self.sim.process(
                _client_driver(self.sim, session, requests, stats,
                               injector=self.injector,
                               client_id=client_id,
                               batch_queries=config.batch_queries),
                name=f"client-{client_id}",
            )
            self.client_stats.append(stats)
            self.sessions.append(session)
            self._drivers.append(driver)

    # -- execution ---------------------------------------------------------------

    def run(self) -> RunResult:
        """Run until every client finished its request stream."""
        done = all_of(self.sim, self._drivers)
        self.sim.run_until_triggered(done)
        return self._collect()

    def _collect(self) -> RunResult:
        config = self.config
        elapsed = self.sim.now
        merged = merge_client_stats(self.client_stats)
        total = int(merged.requests_sent)
        throughput_kops = (total / elapsed / 1e3) if elapsed > 0 else 0.0
        to_us = 1e6
        self.metrics.adopt(
            "client.latency_us",
            LatencyView(merged.latency, scale=to_us, unit="us",
                        loop="closed"),
        )
        self.metrics.adopt(
            "client.search_latency_us",
            LatencyView(merged.search_latency, scale=to_us, unit="us",
                        loop="closed"),
        )
        result = RunResult(
            scheme=config.scheme,
            fabric=config.fabric,
            n_clients=config.n_clients,
            total_requests=total,
            elapsed_s=elapsed,
            throughput_kops=throughput_kops,
            mean_latency_us=merged.latency.mean * to_us,
            p50_latency_us=merged.latency.percentile(50) * to_us,
            p99_latency_us=merged.latency.percentile(99) * to_us,
            p999_latency_us=merged.latency.percentile(99.9) * to_us,
            mean_search_latency_us=(
                merged.search_latency.mean * to_us
                if merged.search_latency.count
                else float("nan")
            ),
            server_cpu_utilization=self.server_host.cpu.utilization(),
            server_bandwidth_gbps=self.network.server_bandwidth_gbps(),
            server_bandwidth_utilization=(
                self.network.server_bandwidth_gbps() * 1e9
                / self.profile.bandwidth_bps
            ),
            offload_fraction=merged.offload_fraction,
            torn_retries=int(merged.torn_retries),
            search_restarts=int(merged.search_restarts),
            heartbeats_sent=(
                int(self.heartbeats.beats_sent) if self.heartbeats else 0
            ),
            heartbeats_dropped=(
                int(self.heartbeats.beats_dropped) if self.heartbeats else 0
            ),
            searches_served_by_server=self.server.searches_served,
            inserts_served=self.server.inserts_served,
            timeline=list(self._timeline),
            metrics=snapshot_document(
                self.metrics,
                tracer=self.tracer if config.trace else None,
                meta={
                    "scheme": config.scheme,
                    "fabric": config.fabric,
                    "n_clients": config.n_clients,
                    "requests_per_client": config.requests_per_client,
                    "workload": config.workload_kind,
                    "seed": config.seed,
                    "elapsed_s": elapsed,
                    "throughput_kops": throughput_kops,
                },
            ),
        )
        return result


def run_experiment(config: ExperimentConfig) -> RunResult:
    """Convenience wrapper: build, run, collect.

    Dispatches to the sharded runner when the config (or the scheme's
    default) asks for more than one shard, so ``run``/``compare`` treat
    sharded and single-server schemes uniformly.
    """
    if config.traffic is not None:
        # Open-loop traffic replaces the closed-loop client drivers
        # entirely; the traffic harness handles sharding itself.
        from ..traffic.harness import run_traffic_experiment
        return run_traffic_experiment(config)
    n_shards = config.n_shards or scheme_spec(config.scheme).shards
    if n_shards > 1:
        from ..shard.deploy import run_sharded_experiment
        return run_sharded_experiment(config)
    return ExperimentRunner(config).run()
