"""Experiment result aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..client.base import ClientStats

@dataclass
class RunResult:
    """All metrics of one experiment run, paper-figure ready."""

    scheme: str
    fabric: str
    n_clients: int
    total_requests: int
    elapsed_s: float

    #: Kops, the paper's Fig 10/12/14 unit.
    throughput_kops: float
    #: Microseconds, the paper's Fig 11/13/14 unit.
    mean_latency_us: float
    p50_latency_us: float
    p99_latency_us: float
    mean_search_latency_us: float

    server_cpu_utilization: float
    server_bandwidth_gbps: float
    server_bandwidth_utilization: float

    offload_fraction: float
    torn_retries: int
    search_restarts: int
    heartbeats_sent: int = 0
    heartbeats_dropped: int = 0
    searches_served_by_server: int = 0
    inserts_served: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Optional per-window trace: (time_s, cpu_utilization,
    #: offload_fraction_in_window); filled when
    #: ``ExperimentConfig.collect_timeline`` is set.
    timeline: List[tuple] = field(default_factory=list)
    #: Full observability snapshot (``catfish-metrics/v1`` document):
    #: registry counters/gauges/histograms plus optional trace events.
    #: See docs/observability.md.
    metrics: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> str:
        """One formatted table row (the bench harness prints these)."""
        return (
            f"{self.scheme:>22} {self.fabric:>8} {self.n_clients:>5} "
            f"{self.throughput_kops:>10.1f} {self.mean_latency_us:>10.1f} "
            f"{self.p99_latency_us:>10.1f} "
            f"{self.server_cpu_utilization * 100:>6.1f}% "
            f"{self.server_bandwidth_gbps:>8.3f} "
            f"{self.offload_fraction * 100:>6.1f}%"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'scheme':>22} {'fabric':>8} {'cli':>5} "
            f"{'Kops':>10} {'mean_us':>10} {'p99_us':>10} "
            f"{'cpu':>7} {'gbps':>8} {'offl':>7}"
        )


def merge_client_stats(all_stats: List[ClientStats]) -> ClientStats:
    """Combine per-client stats into one aggregate."""
    from ..client.base import CLIENT_COUNTER_FIELDS
    merged = ClientStats()
    for stats in all_stats:
        for sample in stats.latency.samples:
            merged.latency.record(sample)
        for sample in stats.search_latency.samples:
            merged.search_latency.record(sample)
        for name in CLIENT_COUNTER_FIELDS:
            counter = getattr(merged, name)
            counter += int(getattr(stats, name))
            setattr(merged, name, counter)
    return merged
