"""Experiment result aggregation."""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..client.base import ClientStats

@dataclass
class RunResult:
    """All metrics of one experiment run, paper-figure ready."""

    scheme: str
    fabric: str
    n_clients: int
    total_requests: int
    elapsed_s: float

    #: Kops, the paper's Fig 10/12/14 unit.
    throughput_kops: float
    #: Microseconds, the paper's Fig 11/13/14 unit.
    mean_latency_us: float
    p50_latency_us: float
    p99_latency_us: float
    mean_search_latency_us: float

    server_cpu_utilization: float
    server_bandwidth_gbps: float
    server_bandwidth_utilization: float

    offload_fraction: float
    torn_retries: int
    search_restarts: int
    #: p99.9 tail; defaulted (and excluded from the fingerprint) so the
    #: pre-existing goldens stay valid.
    p999_latency_us: float = float("nan")
    heartbeats_sent: int = 0
    heartbeats_dropped: int = 0
    searches_served_by_server: int = 0
    inserts_served: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Optional per-window trace: (time_s, cpu_utilization,
    #: offload_fraction_in_window); filled when
    #: ``ExperimentConfig.collect_timeline`` is set.
    timeline: List[tuple] = field(default_factory=list)
    #: Full observability snapshot (``catfish-metrics/v1`` document):
    #: registry counters/gauges/histograms plus optional trace events.
    #: See docs/observability.md.
    metrics: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> str:
        """One formatted table row (the bench harness prints these)."""
        return (
            f"{self.scheme:>22} {self.fabric:>8} {self.n_clients:>5} "
            f"{self.throughput_kops:>10.1f} {self.mean_latency_us:>10.1f} "
            f"{self.p99_latency_us:>10.1f} "
            f"{self.server_cpu_utilization * 100:>6.1f}% "
            f"{self.server_bandwidth_gbps:>8.3f} "
            f"{self.offload_fraction * 100:>6.1f}%"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'scheme':>22} {'fabric':>8} {'cli':>5} "
            f"{'Kops':>10} {'mean_us':>10} {'p99_us':>10} "
            f"{'cpu':>7} {'gbps':>8} {'offl':>7}"
        )


def result_fingerprint(result: RunResult) -> str:
    """A 16-hex digest over every numeric field of one run.

    Two runs with the same fingerprint produced bit-identical simulated
    timing and counters — the regression oracle behind the runtime-layer
    determinism contract (floats are hashed via ``repr``, i.e. exactly,
    not up to rounding).  The metrics snapshot document is deliberately
    excluded so purely observational additions don't invalidate goldens.
    """
    fields = (
        result.scheme, result.fabric, result.n_clients,
        result.total_requests, result.elapsed_s, result.throughput_kops,
        result.mean_latency_us, result.p50_latency_us, result.p99_latency_us,
        result.mean_search_latency_us, result.server_cpu_utilization,
        result.server_bandwidth_gbps, result.server_bandwidth_utilization,
        result.offload_fraction, result.torn_retries, result.search_restarts,
        result.heartbeats_sent, result.heartbeats_dropped,
        result.searches_served_by_server, result.inserts_served,
    )
    parts = []
    for value in fields:
        if isinstance(value, float):
            parts.append("nan" if math.isnan(value) else repr(value))
        else:
            parts.append(repr(value))
    digest = hashlib.sha256("|".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def merge_client_stats(all_stats: List[ClientStats]) -> ClientStats:
    """Combine per-client stats into one aggregate."""
    from ..client.base import CLIENT_COUNTER_FIELDS
    merged = ClientStats()
    for stats in all_stats:
        for sample in stats.latency.samples:
            merged.latency.record(sample)
        for sample in stats.search_latency.samples:
            merged.search_latency.record(sample)
        for name in CLIENT_COUNTER_FIELDS:
            counter = getattr(merged, name)
            counter += int(getattr(stats, name))
            setattr(merged, name, counter)
    return merged
