"""The flash-crowd chaos scenario: overload guards shedding, then
recovering, under a deterministic open-loop arrival spike.

The spike reuses the chaos harness's fault window
(``[fault_start, fault_end)``): offered load runs at a comfortable base
rate, multiplies by :data:`SPIKE_MULTIPLIER` inside the window, and
returns to base — no fault injector involved; the *workload itself* is
the fault.  Every protection layer must be observed doing its job:

* the mux front-end sheds at its queue-depth watermark while the spike
  outruns service capacity (client-side admission control);
* the server's overload guard (``max_queue_depth`` / ``requests_shed``
  from the robustness PR) fires: saturated sessions blow their retry
  deadline, retries pile onto the request rings, and the guard drops
  the stale backlog;
* after the spike, shedding *stops* and the completion rate recovers —
  the guards degraded the spike, not the service.

Invariants additionally pin exact conservation (every arrival is
accounted completed/failed/shed) and oracle correctness of every
completed answer, and the whole run is fingerprinted for bit-identical
replay (asserted in the chaos suite).
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

from ..cluster.config import ExperimentConfig
from ..faults.scenarios import ChaosConfig, ScenarioReport
from ..sim.kernel import SimulationError
from .config import TrafficConfig
from .harness import TrafficRunner
from .mux import OK

#: Total offered base load — well under the deployment's service
#: capacity (~150k/s at the scenario's 2 cores) so pre-spike arrivals
#: all complete and pre-spike execute times never blow the retry
#: deadline.
BASE_RATE = 60_000.0
SPIKE_MULTIPLIER = 12.0
#: Simulated time past the spike end for queues to drain before the
#: recovery window is judged.  Sized above the worst-case session hold
#: of one retry-exhausting job (max_attempts deadlines plus the full
#: backoff ladder, ~0.4ms): the mux queue cannot fall below the
#: watermark while every session is pinned draining spike-era retries.
RECOVERY_MARGIN_S = 0.45e-3
#: Post-spike observation time (beyond margin) — the recovery window.
POST_WINDOW_S = 0.4e-3

USERS_PER_AGGREGATE = 4096
SESSIONS = 12
QUEUE_WATERMARK = 32
WINDOW = 64



def flash_crowd_config(cfg: ChaosConfig) -> ExperimentConfig:
    """The open-loop deployment the scenario runs (derived, not random)."""
    duration = cfg.fault_end + RECOVERY_MARGIN_S + POST_WINDOW_S
    traffic = TrafficConfig(
        kind="flash-crowd",
        rate=BASE_RATE,
        duration_s=duration,
        n_aggregates=cfg.n_clients,
        users_per_aggregate=USERS_PER_AGGREGATE,
        window=WINDOW,
        sessions=SESSIONS,
        queue_watermark=QUEUE_WATERMARK,
        spike_start=cfg.fault_start,
        spike_end=cfg.fault_end,
        spike_multiplier=SPIKE_MULTIPLIER,
    )
    return ExperimentConfig(
        # Event-mode workers: polling workers would spin the scenario's
        # deliberately scarce cores flat even at base load.
        scheme="fast-messaging-event",
        fabric="ib-100g",
        n_clients=max(cfg.n_clients, 1),
        requests_per_client=max(cfg.requests_per_client, 1),
        dataset_size=cfg.dataset_size,
        max_entries=cfg.max_entries,
        server_cores=cfg.server_cores,
        heartbeat_interval=cfg.heartbeat_interval,
        seed=cfg.seed,
        retry=cfg.retry,
        max_queue_depth=cfg.max_queue_depth,
        traffic=traffic,
    )


def run_flash_crowd(cfg: ChaosConfig) -> ScenarioReport:
    config = flash_crowd_config(cfg)
    traffic = config.traffic
    runner = TrafficRunner(config, record=True)
    finished = True
    try:
        result = runner.run()
    except SimulationError:
        finished = False
        result = runner._collect()

    sim = runner.sim
    mux = runner.mux
    spike_start, spike_end = traffic.spike_start, traffic.spike_end
    duration = traffic.duration_s
    recover_at = spike_end + RECOVERY_MARGIN_S

    jobs = mux.finished_jobs
    client_sheds: List[float] = sorted(
        mux.shed_times
        + [t for agg in runner.aggregates for t in agg.shed_times]
    )

    def sheds_in(start: float, end: float) -> int:
        return sum(1 for t in client_sheds if start <= t < end)

    def arrivals_in(start: float, end: float) -> int:
        return (sum(1 for j in jobs if start <= j.t_arrival < end)
                + sheds_in(start, end))

    # Oracle: read-only search workload against a never-mutated tree.
    tree = runner.stacks[0].server.tree
    mismatches = 0
    for job in jobs:
        if job.status != OK:
            continue
        ids = tuple(sorted(data_id for _rect, data_id in job.results))
        expected = tuple(sorted(tree.search(job.request.rect).data_ids))
        if ids != expected:
            mismatches += 1

    done_times = sorted(j.t_done for j in jobs if j.status == OK)
    pre = [t for t in done_times if t < spike_start]
    post = [t for t in done_times if t >= recover_at]
    pre_rate = len(pre) / spike_start if pre else 0.0
    post_span = (done_times[-1] - recover_at) if post else 0.0
    post_rate = len(post) / post_span if post_span > 0.0 else 0.0

    spike_span = spike_end - spike_start
    base_span = duration - spike_span
    spike_arrival_rate = (arrivals_in(spike_start, spike_end) / spike_span
                          if spike_span > 0 else 0.0)
    base_arrival_rate = ((result.arrivals
                          - arrivals_in(spike_start, spike_end)) / base_span
                         if base_span > 0 else 0.0)

    report = ScenarioReport(
        name="flash-crowd",
        seed=cfg.seed,
        issued=result.arrivals,
        completed=result.completed,
        timeouts=result.failed,
        offload_errors=0,
        mismatches=mismatches,
        retries=sum(int(s.request_retries) for s in runner.session_stats),
        duplicates_suppressed=sum(
            int(s.duplicates_suppressed) for s in runner.session_stats),
        unexpected_messages=sum(
            int(s.unexpected_messages) for s in runner.session_stats),
        pre_rate=pre_rate,
        post_rate=post_rate,
        end_time=sim.now,
        counters={
            "arrivals": result.arrivals,
            "completed": result.completed,
            "failed": result.failed,
            "shed-window": result.shed_window,
            "shed-watermark": result.shed_watermark,
            "shed-admission": result.shed_admission,
            "server-requests-shed": result.server_shed,
            "retries": sum(
                int(s.request_retries) for s in runner.session_stats),
        },
    )

    checks: List[Tuple[str, bool, str]] = []
    checks.append((
        "finished-in-time", finished,
        f"{'drained' if finished else 'wedged'} at "
        f"t={sim.now * 1e3:.3f}ms",
    ))
    accounted = (result.completed + result.failed
                 + result.shed_client_total)
    checks.append((
        "conservation", accounted == result.arrivals,
        f"{result.arrivals} arrivals = {result.completed} completed + "
        f"{result.failed} failed + {result.shed_client_total} shed",
    ))
    checks.append((
        "oracle-match", mismatches == 0,
        f"{mismatches} completed answers disagreed with the tree",
    ))
    checks.append((
        "fault-fired:spike-arrivals",
        spike_arrival_rate > 3.0 * max(base_arrival_rate, 1.0),
        f"spike arrival rate {spike_arrival_rate / 1e3:.0f}k/s vs base "
        f"{base_arrival_rate / 1e3:.0f}k/s",
    ))
    spike_sheds = sheds_in(spike_start, recover_at)
    checks.append((
        "fault-fired:client-shed", spike_sheds > 0,
        f"{spike_sheds} front-end sheds during the spike "
        f"(watermark {traffic.queue_watermark}, window {traffic.window})",
    ))
    checks.append((
        "fault-fired:server-shed", result.server_shed > 0,
        f"server overload guard dropped {result.server_shed} requests "
        f"(max_queue_depth={config.max_queue_depth})",
    ))
    pre_sheds = sheds_in(0.0, spike_start)
    checks.append((
        "no-shed-before-spike", pre_sheds == 0,
        f"{pre_sheds} client sheds before t={spike_start * 1e3:.2f}ms",
    ))
    late_sheds = sheds_in(recover_at, duration + 1.0)
    checks.append((
        "shedding-stopped", late_sheds == 0,
        f"{late_sheds} client sheds after "
        f"t={recover_at * 1e3:.2f}ms (drain margin "
        f"{RECOVERY_MARGIN_S * 1e6:.0f}us)",
    ))
    if pre_rate > 0.0 and post_rate > 0.0:
        recovered = post_rate >= cfg.recovery_floor * pre_rate
        detail = (f"post {post_rate / 1e3:.0f} kops vs pre "
                  f"{pre_rate / 1e3:.0f} kops "
                  f"(floor {cfg.recovery_floor:.0%})")
    else:
        recovered, detail = False, (
            f"missing sample (pre={len(pre)}, post={len(post)})")
    checks.append(("throughput-recovered", recovered, detail))
    report.invariants = checks

    digest = hashlib.sha256()
    digest.update(f"flash-crowd:{cfg.seed}\n".encode())
    for job in sorted(jobs, key=lambda j: (j.aggregate_id, j.seq)):
        ids = (tuple(sorted(d for _r, d in job.results))
               if job.status == OK else ())
        digest.update(
            f"{job.aggregate_id},{job.seq},{job.user_id},{job.status},"
            f"{job.t_arrival:.15e},{job.t_done:.15e},"
            f"{len(ids)},{sum(ids)}\n".encode()
        )
    for t in client_sheds:
        digest.update(f"shed,{t:.15e}\n".encode())
    for key, value in report.counters.items():
        digest.update(f"{key}={value}\n".encode())
    report._fingerprint = digest.hexdigest()[:16]
    return report
