"""Traffic-layer configuration (a leaf module).

Kept free of any other ``repro`` imports so
:class:`~repro.cluster.config.ExperimentConfig` can embed a
:class:`TrafficConfig` without creating an import cycle (the traffic
harness itself imports the cluster layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

ARRIVAL_KINDS = ("poisson", "diurnal", "flash-crowd")


@dataclass(frozen=True)
class TrafficConfig:
    """One open-loop traffic mix: who arrives, how fast, through what.

    All rates are aggregate arrivals/second over the whole deployment;
    each of the ``n_aggregates`` aggregated clients offers an equal
    share.  ``None`` on :class:`ExperimentConfig.traffic` means the
    classic closed-loop drivers run instead — the default on which every
    golden fingerprint is pinned.
    """

    #: Arrival process shape: ``poisson`` (homogeneous), ``diurnal``
    #: (sinusoidal rate) or ``flash-crowd`` (rate multiplier window).
    kind: str = "poisson"
    #: Offered load, arrivals/second, summed over all aggregates.
    rate: float = 100_000.0
    #: Simulated open-loop window during which arrivals are generated.
    duration_s: float = 4e-3

    #: Aggregated clients (simulated endpoints); each stands in for
    #: ``users_per_aggregate`` virtual users.
    n_aggregates: int = 4
    users_per_aggregate: int = 1000
    #: Per-tenant rate mix as (name, weight) pairs; weights need not sum
    #: to 1 (they are normalized).
    tenants: Tuple[Tuple[str, float], ...] = (("default", 1.0),)

    #: Per-aggregate in-flight cap: arrivals beyond it are dropped at
    #: the aggregate (counted, never blocking — the load stays open).
    window: int = 256

    #: Shared sessions (QPs) the connection mux multiplexes every
    #: aggregate onto, per deployment (RDMAvisor-style).
    sessions: int = 4
    #: Token-bucket admission rate at the mux front-end; None disables
    #: the bucket (watermark-only admission).
    admit_rate: Optional[float] = None
    admit_burst: int = 64
    #: Mux queue-depth shed threshold (jobs waiting for a session).
    queue_watermark: int = 512

    # Diurnal sinusoid: rate(t) = rate * (1 + amplitude*sin(2*pi*t/period)).
    period_s: float = 2e-3
    amplitude: float = 0.5

    # Flash crowd: rate multiplied by ``spike_multiplier`` inside
    # [spike_start, spike_end).
    spike_start: float = 1e-3
    spike_end: float = 2e-3
    spike_multiplier: float = 8.0

    #: Draw query locations from Zipf hotspots instead of uniformly
    #: (the skewed regime the elastic shard plane exists for).  Off by
    #: default — the traffic golden fingerprints are pinned on uniform.
    hotspot_skew: bool = False

    def __post_init__(self):
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; "
                f"known: {', '.join(ARRIVAL_KINDS)}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.n_aggregates < 1:
            raise ValueError(
                f"n_aggregates must be >= 1, got {self.n_aggregates}")
        if self.users_per_aggregate < 1:
            raise ValueError(
                f"users_per_aggregate must be >= 1, got "
                f"{self.users_per_aggregate}")
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if any(weight <= 0 for _name, weight in self.tenants):
            raise ValueError(f"tenant weights must be > 0: {self.tenants}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.admit_rate is not None and self.admit_rate <= 0:
            raise ValueError(
                f"admit_rate must be > 0 or None, got {self.admit_rate}")
        if self.admit_burst < 1:
            raise ValueError(
                f"admit_burst must be >= 1, got {self.admit_burst}")
        if self.queue_watermark < 1:
            raise ValueError(
                f"queue_watermark must be >= 1, got {self.queue_watermark}")
        if self.kind == "diurnal":
            if self.period_s <= 0:
                raise ValueError(
                    f"period_s must be > 0, got {self.period_s}")
            if not 0.0 <= self.amplitude < 1.0:
                raise ValueError(
                    f"amplitude must be in [0, 1), got {self.amplitude}")
        if self.kind == "flash-crowd":
            if not 0.0 <= self.spike_start < self.spike_end:
                raise ValueError(
                    f"bad spike window [{self.spike_start}, "
                    f"{self.spike_end})")
            if self.spike_multiplier < 1.0:
                raise ValueError(
                    f"spike_multiplier must be >= 1, got "
                    f"{self.spike_multiplier}")

    @property
    def total_users(self) -> int:
        return self.n_aggregates * self.users_per_aggregate

    @property
    def tenant_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _weight in self.tenants)
