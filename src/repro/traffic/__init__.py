"""repro.traffic — the open-loop million-user traffic layer.

Aggregated clients (``aggregate``) superpose thousands of virtual users
onto seed-deterministic arrival processes (``arrivals``) and issue them
through an RDMAvisor-style connection mux (``mux``) onto a small pool of
shared sessions; the harness (``harness``) measures offered-vs-achieved
throughput and p50/p95/p99/p99.9 sojourn time.  See
docs/architecture.md (traffic layer) and docs/paper_mapping.md.

The harness (and everything that pulls in the cluster layer) is
exported lazily: ``repro.cluster.config`` imports
:class:`~repro.traffic.config.TrafficConfig` from this package, and an
eager harness import here would be a cycle.
"""

from .arrivals import (
    ArrivalGenerator,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    aggregate_generator,
    make_rate_fn,
)
from .config import TrafficConfig
from .mux import ConnectionMux, TokenBucket, TrafficJob

__all__ = [
    "ArrivalGenerator",
    "AggregateClient",
    "ConnectionMux",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "TokenBucket",
    "TrafficConfig",
    "TrafficJob",
    "TrafficResult",
    "TrafficRunner",
    "aggregate_generator",
    "make_rate_fn",
    "rate_sweep",
    "run_traffic",
    "run_traffic_experiment",
]

_LAZY = {
    "AggregateClient": "aggregate",
    "TrafficResult": "harness",
    "TrafficRunner": "harness",
    "rate_sweep": "harness",
    "run_traffic": "harness",
    "run_traffic_experiment": "harness",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value
