"""Seed-deterministic open-loop arrival processes.

Arrivals are a non-homogeneous Poisson process sampled by *thinning*
(Lewis & Shedler): candidate gaps are drawn ``Exp(peak_rate)`` and each
candidate at time ``t`` is accepted with probability
``rate(t) / peak_rate``.  Both draws come from one named
:class:`~repro.sim.rng.RngRegistry` stream, so a generator's timestamp
sequence is a pure function of (seed, stream name, rate shape) — the
property the determinism tests pin, and the reason arrival schedules are
identical whether the deployment behind them has 1 shard or 8.

Tenant attribution draws from a *separate* stream, so changing the
tenant mix never perturbs the timestamps (and vice versa).
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Tuple

from .config import TrafficConfig


class ConstantRate:
    """Homogeneous Poisson arrivals."""

    kind = "poisson"

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.base = rate
        self.peak = rate

    def rate(self, t: float) -> float:
        return self.base


class DiurnalRate:
    """Sinusoidal rate: ``base * (1 + amplitude * sin(2*pi*t/period))``.

    A whole diurnal cycle compressed into ``period_s`` of simulated
    time — the shape matters (load sweeps through trough and crest),
    not the 24-hour wall-clock scale.
    """

    kind = "diurnal"

    def __init__(self, rate: float, period_s: float, amplitude: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        self.base = rate
        self.period = period_s
        self.amplitude = amplitude
        self.peak = rate * (1.0 + amplitude)

    def rate(self, t: float) -> float:
        return self.base * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )


class FlashCrowdRate:
    """Base rate multiplied by ``multiplier`` inside the spike window."""

    kind = "flash-crowd"

    def __init__(self, rate: float, spike_start: float, spike_end: float,
                 multiplier: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if not 0.0 <= spike_start < spike_end:
            raise ValueError(
                f"bad spike window [{spike_start}, {spike_end})")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.base = rate
        self.spike_start = spike_start
        self.spike_end = spike_end
        self.multiplier = multiplier
        self.peak = rate * multiplier

    def in_spike(self, t: float) -> bool:
        return self.spike_start <= t < self.spike_end

    def rate(self, t: float) -> float:
        return self.base * (self.multiplier if self.in_spike(t)
                            else 1.0)


def make_rate_fn(config: TrafficConfig, rate: float):
    """The rate shape for one aggregate offering ``rate`` arrivals/s."""
    if config.kind == "poisson":
        return ConstantRate(rate)
    if config.kind == "diurnal":
        return DiurnalRate(rate, config.period_s, config.amplitude)
    if config.kind == "flash-crowd":
        return FlashCrowdRate(rate, config.spike_start, config.spike_end,
                              config.spike_multiplier)
    raise ValueError(f"unknown arrival kind {config.kind!r}")


class ArrivalGenerator:
    """One aggregate's arrival stream: (timestamp, tenant) pairs.

    ``arrival_rng`` drives the thinning sampler; ``tenant_rng`` draws
    the weighted tenant attribution.  Two generators built from the same
    streams produce identical sequences — the open-loop determinism
    contract.
    """

    def __init__(
        self,
        rate_fn,
        arrival_rng: random.Random,
        tenant_rng: random.Random,
        tenants: Tuple[Tuple[str, float], ...] = (("default", 1.0),),
    ):
        if not tenants:
            raise ValueError("need at least one tenant")
        self.rate_fn = rate_fn
        self.arrival_rng = arrival_rng
        self.tenant_rng = tenant_rng
        self._names = tuple(name for name, _w in tenants)
        total = float(sum(weight for _n, weight in tenants))
        self._cumulative = []
        acc = 0.0
        for _name, weight in tenants:
            acc += weight / total
            self._cumulative.append(acc)

    def next_arrival(self, t: float) -> float:
        """The first accepted arrival strictly after ``t`` (thinning)."""
        peak = self.rate_fn.peak
        while True:
            t += self.arrival_rng.expovariate(peak)
            if self.arrival_rng.random() * peak <= self.rate_fn.rate(t):
                return t

    def next_tenant(self) -> str:
        roll = self.tenant_rng.random()
        for name, edge in zip(self._names, self._cumulative):
            if roll <= edge:
                return name
        return self._names[-1]

    def arrivals(self, duration: float,
                 start: float = 0.0) -> Iterator[Tuple[float, str]]:
        """Lazily yield (timestamp, tenant) until ``start + duration``."""
        t = start
        horizon = start + duration
        while True:
            t = self.next_arrival(t)
            if t >= horizon:
                return
            yield t, self.next_tenant()

    def schedule(self, duration: float,
                 start: float = 0.0) -> List[Tuple[float, str]]:
        """The eager form of :meth:`arrivals` (tests, inspection)."""
        return list(self.arrivals(duration, start=start))


def aggregate_generator(config: TrafficConfig, rngs,
                        rate: float = None) -> ArrivalGenerator:
    """Build one aggregate's generator from its per-aggregate registry.

    ``rngs`` is the aggregate's forked :class:`RngRegistry`
    (``rngs.fork(f"aggregate-{i}")`` in the harness); stream names
    ``arrivals`` / ``tenants`` are part of the determinism contract.
    ``rate`` defaults to this aggregate's equal share of the offered
    load.
    """
    share = (config.rate / config.n_aggregates) if rate is None else rate
    return ArrivalGenerator(
        make_rate_fn(config, share),
        rngs.stream("arrivals"),
        rngs.stream("tenants"),
        tenants=config.tenants,
    )
