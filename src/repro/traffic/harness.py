"""The latency-under-load harness: open-loop traffic against a cluster.

Builds the same :class:`~repro.runtime.stack.ServerStack` (single) or
K-stack sharded deployment the closed-loop runners build, but replaces
the per-client synchronous drivers with:

    aggregates (open-loop arrivals, bounded windows)
        -> ConnectionMux (watermark + token bucket admission)
            -> shared PolicySessions / scatter-gather routers (QPs)
                -> server stack(s)

and measures what closed loops cannot: *sojourn time* — arrival to
completion, queueing included — at p50/p95/p99/p99.9, offered-versus-
achieved throughput, and shed accounting at every layer.

Determinism contract: every stream is named off the one experiment
seed — ``aggregate-{i}``:{arrivals,tenants,users,workload} for the
open-loop side, ``traffic-session-{i}`` (forked per shard via
``rngs.shard(k)`` when sharded) for the session side — so arrival
schedules are bit-identical across deployments with different shard
counts, and a whole run replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..client.base import ClientStats
from ..cluster.config import ExperimentConfig
from ..cluster.results import RunResult
from ..cluster.schemes import TRANSPORT_TCP, scheme_spec
from ..hw.host import Host
from ..net.fabric import profile_by_name
from ..obs import NULL_TRACER, LatencyView, MetricsRegistry, \
    snapshot_document
from ..runtime.factory import SessionFactory
from ..runtime.stack import ServerStack
from ..sim.kernel import Simulator, all_of
from ..sim.monitor import LatencyRecorder
from ..sim.rng import RngRegistry
from ..workloads.datasets import uniform_dataset
from ..workloads.scales import scale_generator
from .aggregate import AggregateClient
from .arrivals import aggregate_generator
from .config import TrafficConfig
from .mux import ConnectionMux, TokenBucket

#: Simulated slack past the offered window for the backlog to drain.
DRAIN_GRACE_S = 20e-3


@dataclass
class TrafficResult:
    """Everything one open-loop run measured."""

    scheme: str
    fabric: str
    n_shards: int
    kind: str
    offered_rps: float
    achieved_rps: float
    duration_s: float
    elapsed_s: float

    arrivals: int
    admitted: int
    completed: int
    failed: int
    shed_window: int
    shed_watermark: int
    shed_admission: int
    server_shed: int

    users_total: int
    users_touched: int

    # Sojourn time (arrival -> completion), microseconds.
    sojourn_mean_us: float
    sojourn_p50_us: float
    sojourn_p95_us: float
    sojourn_p99_us: float
    sojourn_p999_us: float

    server_cpu_utilization: float
    per_tenant: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)

    @property
    def shed_client_total(self) -> int:
        return self.shed_window + self.shed_watermark + self.shed_admission

    @staticmethod
    def header() -> str:
        return (f"{'offered/s':>10} {'achieved/s':>10} {'done':>8} "
                f"{'fail':>6} {'shed':>7} {'p50us':>8} {'p99us':>9} "
                f"{'p999us':>9} {'cpu':>6}")

    def row(self) -> str:
        return (f"{self.offered_rps:>10.0f} {self.achieved_rps:>10.0f} "
                f"{self.completed:>8} {self.failed:>6} "
                f"{self.shed_client_total:>7} {self.sojourn_p50_us:>8.1f} "
                f"{self.sojourn_p99_us:>9.1f} {self.sojourn_p999_us:>9.1f} "
                f"{self.server_cpu_utilization * 100:>5.1f}%")

    def to_run_result(self) -> RunResult:
        """Project onto the closed-loop result shape (CLI/compare)."""
        return RunResult(
            scheme=self.scheme,
            fabric=self.fabric,
            n_clients=self.metrics.get("meta", {}).get("n_aggregates", 0),
            total_requests=self.arrivals,
            elapsed_s=self.elapsed_s,
            throughput_kops=self.achieved_rps / 1e3,
            mean_latency_us=self.sojourn_mean_us,
            p50_latency_us=self.sojourn_p50_us,
            p99_latency_us=self.sojourn_p99_us,
            p999_latency_us=self.sojourn_p999_us,
            mean_search_latency_us=self.sojourn_mean_us,
            server_cpu_utilization=self.server_cpu_utilization,
            server_bandwidth_gbps=0.0,
            server_bandwidth_utilization=0.0,
            offload_fraction=0.0,
            torn_retries=0,
            search_restarts=0,
            extra={
                "completed": float(self.completed),
                "failed": float(self.failed),
                "shed_client": float(self.shed_client_total),
                "shed_server": float(self.server_shed),
                "users_touched": float(self.users_touched),
                "n_shards": float(self.n_shards),
            },
            metrics=self.metrics,
        )


class TrafficRunner:
    """Builds one open-loop deployment for a config and runs it."""

    def __init__(self, config: ExperimentConfig, record: bool = False):
        if config.traffic is None:
            raise ValueError("config.traffic must be set for TrafficRunner")
        self.config = config
        self.traffic: TrafficConfig = config.traffic
        self.spec = scheme_spec(config.scheme)
        if self.spec.transport == TRANSPORT_TCP:
            raise ValueError(
                "the traffic layer multiplexes fast-messaging/offload "
                f"sessions; scheme {config.scheme!r} is TCP-based"
            )
        self.profile = profile_by_name(config.fabric)
        self.n_shards = config.n_shards or self.spec.shards

        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.metrics = MetricsRegistry()

        items = config.dataset
        if items is None:
            items = uniform_dataset(config.dataset_size, seed=config.seed)
        self.dataset = items

        self.factory = SessionFactory(self.sim, self.spec, config,
                                      NULL_TRACER)
        self.session_stats: List[ClientStats] = []
        self.sessions = []
        self.rebalancer = None
        self.rebalance_stats = None
        self.live_map = None
        if self.n_shards > 1:
            from ..shard.partition import ShardMap, partition_str
            from ..shard.router import ScatterGatherRouter
            self.partition = partition_str(items, self.n_shards)
            # Elastic plane under open-loop traffic: all mux sessions
            # share the one live map the controller revises (same
            # contract as the closed-loop sharded deployer).
            rb = config.rebalance
            self.rebalance_cfg = rb if (rb is not None and rb.enabled) \
                else None
            if self.rebalance_cfg is not None:
                self.live_map = self.partition.shard_map.copy()
            self.stacks = [
                ServerStack(
                    self.sim, self.profile, self.spec, config,
                    self.rngs.shard(shard_id), list(slice_items),
                    name=f"shard{shard_id}-server",
                )
                for shard_id, slice_items
                in enumerate(self.partition.assignments)
            ]
            for i in range(self.traffic.sessions):
                host = Host(self.sim, f"mux-{i}", self.profile,
                            cores=config.client_cores)
                stats = ClientStats()
                router = ScatterGatherRouter.from_factory(
                    self.factory, i, self.stacks, host, stats,
                    lambda k, i=i: self.rngs.shard(k).fork(
                        f"traffic-session-{i}"),
                    (self.live_map if self.live_map is not None
                     else ShardMap(list(self.partition.shard_map))),
                    breaker_params=config.breaker,
                    epoch_aware=self.live_map is not None,
                )
                self.session_stats.append(stats)
                self.sessions.append(router)
            if self.rebalance_cfg is not None:
                from ..shard.rebalance import (
                    RebalanceController,
                    RebalanceStats,
                )
                self.rebalance_stats = RebalanceStats()
                self.rebalancer = RebalanceController(
                    self.sim, self.live_map, self.stacks,
                    self.rebalance_cfg, stats=self.rebalance_stats,
                )
                self.rebalancer.start()
        else:
            self.partition = None
            self.stacks = [ServerStack(
                self.sim, self.profile, self.spec, config, self.rngs,
                items,
            )]
            for i in range(self.traffic.sessions):
                host = Host(self.sim, f"mux-{i}", self.profile,
                            cores=config.client_cores)
                stats = ClientStats()
                session = self.factory.build(
                    i, self.stacks[0], host, stats,
                    self.rngs.fork(f"traffic-session-{i}"),
                )
                self.session_stats.append(stats)
                self.sessions.append(session)
        for stack in self.stacks:
            stack.start_heartbeats()

        bucket = None
        if self.traffic.admit_rate is not None:
            bucket = TokenBucket(self.traffic.admit_rate,
                                 self.traffic.admit_burst)
        self.mux = ConnectionMux(
            self.sim, self.sessions, self.traffic.queue_watermark,
            bucket=bucket, record=record,
        )

        self.sojourn = LatencyRecorder()
        self.tenant_sojourn = {
            name: LatencyRecorder() for name in self.traffic.tenant_names
        }
        scale_gen = scale_generator(config.scale)
        hotspots = None
        if self.traffic.hotspot_skew:
            from ..workloads.skew import HotspotQueries
            hotspots = HotspotQueries(seed=0)  # shared across aggregates
        self.aggregates: List[AggregateClient] = []
        for a in range(self.traffic.n_aggregates):
            arngs = self.rngs.fork(f"aggregate-{a}")
            self.aggregates.append(AggregateClient(
                self.sim, a,
                n_users=self.traffic.users_per_aggregate,
                window=self.traffic.window,
                generator=aggregate_generator(self.traffic, arngs),
                users_rng=arngs.stream("users"),
                workload_rng=arngs.stream("workload"),
                scale_gen=scale_gen,
                mux=self.mux,
                sojourn=self.sojourn,
                tenant_sojourn=self.tenant_sojourn,
                hotspots=hotspots,
            ))
        self._register_metrics()

    def _register_metrics(self) -> None:
        m = self.metrics
        for k, stack in enumerate(self.stacks):
            stack.register_metrics(
                m, label=f"shard{k}" if self.n_shards > 1 else None)
        self.mux.register_metrics(m)
        if self.rebalance_stats is not None:
            self.rebalance_stats.register_into(m)
            m.expose("shard.map_epoch", lambda: self.live_map.epoch)
            m.expose("shard.tiles", lambda: len(self.live_map.tiles))
        m.expose("traffic.arrivals",
                 lambda: sum(a.arrivals for a in self.aggregates))
        m.expose("traffic.shed_window",
                 lambda: sum(a.shed_window for a in self.aggregates))
        m.expose("traffic.users_touched",
                 lambda: sum(a.users_touched for a in self.aggregates))
        m.expose("traffic.in_flight",
                 lambda: sum(a.in_flight for a in self.aggregates))

    # -- execution ---------------------------------------------------------

    def run(self) -> TrafficResult:
        sim = self.sim
        duration = self.traffic.duration_s
        drivers = [
            sim.process(agg.run(duration), name=f"aggregate-{agg.aggregate_id}")
            for agg in self.aggregates
        ]
        limit = duration + DRAIN_GRACE_S
        sim.run_until_triggered(all_of(sim, drivers), limit=limit)
        self.mux.close()
        sim.run_until_triggered(all_of(sim, self.mux.dispatchers),
                                limit=limit)
        if self.rebalancer is not None:
            # Finish any in-flight migration so no deployment ends with
            # an item transiently on two shards (foreground accounting
            # below only reads per-request records, so this is free).
            self.rebalancer.stop()
            step = max(self.rebalance_cfg.interval,
                       self.rebalance_cfg.drain_s)
            for _ in range(10_000):
                if not self.rebalancer.active_migrations:
                    break
                sim.run(until=sim.now + step)
            else:
                raise RuntimeError("rebalancer failed to settle")
        return self._collect()

    def _collect(self) -> TrafficResult:
        config, traffic = self.config, self.traffic
        to_us = 1e6
        self.metrics.adopt(
            "traffic.sojourn_us",
            LatencyView(self.sojourn, scale=to_us, unit="us", loop="open"),
        )
        for name, rec in self.tenant_sojourn.items():
            self.metrics.adopt(
                f"traffic.sojourn_us.{name}",
                LatencyView(rec, scale=to_us, unit="us", loop="open"),
            )
        arrivals = sum(a.arrivals for a in self.aggregates)
        shed_window = sum(a.shed_window for a in self.aggregates)
        server_shed = sum(
            int(s.fm_server.requests_shed) for s in self.stacks
            if s.fm_server is not None
        )
        cpu = sum(
            s.host.cpu.utilization() for s in self.stacks
        ) / len(self.stacks)
        per_tenant = {
            name: {
                "count": float(rec.count),
                "p50_us": rec.percentile(50) * to_us,
                "p99_us": rec.percentile(99) * to_us,
            }
            for name, rec in self.tenant_sojourn.items()
        }
        doc = snapshot_document(
            self.metrics,
            meta={
                "scheme": config.scheme,
                "fabric": config.fabric,
                "seed": config.seed,
                "loop": "open",
                "arrival_kind": traffic.kind,
                "offered_rps": traffic.rate,
                "duration_s": traffic.duration_s,
                "n_aggregates": traffic.n_aggregates,
                "users_per_aggregate": traffic.users_per_aggregate,
                "n_shards": self.n_shards,
                "sessions": traffic.sessions,
            },
        )
        return TrafficResult(
            scheme=config.scheme,
            fabric=config.fabric,
            n_shards=self.n_shards,
            kind=traffic.kind,
            offered_rps=traffic.rate,
            achieved_rps=self.mux.completed / traffic.duration_s,
            duration_s=traffic.duration_s,
            elapsed_s=self.sim.now,
            arrivals=arrivals,
            admitted=self.mux.admitted,
            completed=self.mux.completed,
            failed=self.mux.failed,
            shed_window=shed_window,
            shed_watermark=self.mux.shed_watermark,
            shed_admission=self.mux.shed_admission,
            server_shed=server_shed,
            users_total=traffic.total_users,
            users_touched=sum(a.users_touched for a in self.aggregates),
            sojourn_mean_us=self.sojourn.mean * to_us,
            sojourn_p50_us=self.sojourn.percentile(50) * to_us,
            sojourn_p95_us=self.sojourn.percentile(95) * to_us,
            sojourn_p99_us=self.sojourn.percentile(99) * to_us,
            sojourn_p999_us=self.sojourn.percentile(99.9) * to_us,
            server_cpu_utilization=cpu,
            per_tenant=per_tenant,
            metrics=doc,
        )


def run_traffic(config: ExperimentConfig,
                record: bool = False) -> TrafficResult:
    """Build, run, collect one open-loop point."""
    return TrafficRunner(config, record=record).run()


def run_traffic_experiment(config: ExperimentConfig) -> RunResult:
    """The :func:`~repro.cluster.builder.run_experiment` dispatch target."""
    return run_traffic(config).to_run_result()


def rate_sweep(config: ExperimentConfig,
               rates: List[float]) -> List[TrafficResult]:
    """One fresh deployment per offered rate (identical otherwise)."""
    if config.traffic is None:
        raise ValueError("config.traffic must be set for a rate sweep")
    results = []
    for rate in rates:
        point = replace(config.traffic, rate=rate)
        results.append(run_traffic(replace_config(config, point)))
    return results


def replace_config(config: ExperimentConfig,
                   traffic: TrafficConfig) -> ExperimentConfig:
    """A copy of ``config`` with a different traffic block."""
    return replace(config, traffic=traffic)
