"""RDMAvisor-style connection multiplexing with front-end admission.

Per-client QPs are the scaling wall for RDMA services (Wang et al.,
RDMAvisor): a million users cannot each own an endpoint.  The
:class:`ConnectionMux` therefore owns a small pool of shared sessions
(QPs) and fans every aggregated client's jobs onto them through one FIFO
queue, guarded by two admission controls applied *before* a job ever
touches a session:

* a **queue-depth watermark** — jobs arriving while more than
  ``watermark`` jobs wait for a session are shed (the queue has outrun
  any deadline a user would still be waiting on — the client-side twin
  of the server's ``max_queue_depth`` guard from the overload PR);
* an optional **token bucket** — a hard ceiling on the admitted rate
  regardless of queue state.

Shed jobs are counted, never blocked on: the offered load stays
open-loop.  Jobs that a session fails (retry budget exhausted, offload
error) are counted as ``failed`` — together with the server's own
``requests_shed`` counter this gives exact conservation:
``offered == completed + failed + shed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..client.base import Request
from ..client.offload_client import OffloadError
from ..client.resilience import RequestTimeoutError
from ..sim.kernel import Simulator
from ..sim.resources import Store

#: Job outcomes.
OK = "ok"
FAILED = "failed"
SHED_WATERMARK = "shed-watermark"
SHED_ADMISSION = "shed-admission"


class TokenBucket:
    """Deterministic lazily-refilled token bucket (no RNG, no process).

    Tokens accrue continuously at ``rate`` per simulated second up to
    ``burst``; :meth:`try_take` is O(1) and never blocks — admission
    control must not add queueing of its own.
    """

    def __init__(self, rate: float, burst: int):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def try_take(self, now: float) -> bool:
        if now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
            self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class TrafficJob:
    """One virtual user's request travelling through the mux."""

    aggregate_id: int
    seq: int               # per-aggregate arrival sequence number
    user_id: int
    tenant: str
    request: Request
    t_arrival: float
    status: str = ""
    t_start: float = float("nan")   # picked up by a session
    t_done: float = float("nan")
    results: object = None
    #: Completion callback (set by the owning aggregate).
    on_done: Optional[Callable[["TrafficJob"], None]] = None

    @property
    def sojourn(self) -> float:
        """Arrival-to-completion time — the open-loop latency."""
        return self.t_done - self.t_arrival


#: Dispatcher shutdown sentinel (queued behind all real jobs).
_CLOSE = object()


class ConnectionMux:
    """Shared-session front-end: one queue, ``len(sessions)`` consumers.

    ``record`` keeps every finished job (completed *and* failed) for
    oracle checks and fingerprinting — the chaos harness turns it on;
    the benchmark harness leaves it off and reads counters only.
    """

    def __init__(
        self,
        sim: Simulator,
        sessions: List,
        watermark: int,
        bucket: Optional[TokenBucket] = None,
        record: bool = False,
    ):
        if watermark < 1:
            raise ValueError(f"watermark must be >= 1, got {watermark}")
        if not sessions:
            raise ValueError("need at least one shared session")
        self.sim = sim
        self.sessions = sessions
        self.watermark = watermark
        self.bucket = bucket
        self.record = record

        self.queue = Store(sim)
        self.offered = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.shed_watermark = 0
        self.shed_admission = 0
        #: Simulated timestamps of every front-end shed (phase analysis).
        self.shed_times: List[float] = []
        self.finished_jobs: List[TrafficJob] = []
        self._closed = False
        self.dispatchers = [
            sim.process(self._dispatch(session), name=f"mux-session-{i}")
            for i, session in enumerate(sessions)
        ]

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def shed_total(self) -> int:
        return self.shed_watermark + self.shed_admission

    # -- admission ---------------------------------------------------------

    def offer(self, job: TrafficJob) -> bool:
        """Admit or shed ``job``; True iff admitted.  Never blocks."""
        if self._closed:
            raise RuntimeError("offer() after close()")
        self.offered += 1
        if len(self.queue) >= self.watermark:
            job.status = SHED_WATERMARK
            self.shed_watermark += 1
            self.shed_times.append(self.sim.now)
            return False
        if self.bucket is not None and not self.bucket.try_take(self.sim.now):
            job.status = SHED_ADMISSION
            self.shed_admission += 1
            self.shed_times.append(self.sim.now)
            return False
        self.admitted += 1
        self.queue.put_discard(job)
        return True

    def close(self) -> None:
        """No more offers; dispatchers exit once the backlog drains."""
        if self._closed:
            return
        self._closed = True
        for _ in self.dispatchers:
            self.queue.put_discard(_CLOSE)

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, session):
        while True:
            job = yield self.queue.get()
            if job is _CLOSE:
                return
            job.t_start = self.sim.now
            try:
                job.results = yield from session.execute(job.request)
                job.status = OK
                self.completed += 1
            except (RequestTimeoutError, OffloadError):
                job.status = FAILED
                self.failed += 1
            job.t_done = self.sim.now
            if self.record:
                self.finished_jobs.append(job)
            if job.on_done is not None:
                job.on_done(job)

    # -- metrics -----------------------------------------------------------

    def register_metrics(self, metrics, prefix: str = "traffic") -> None:
        for name in ("offered", "admitted", "completed", "failed",
                     "shed_watermark", "shed_admission"):
            metrics.expose(f"{prefix}.{name}",
                           lambda n=name: getattr(self, n))
        metrics.expose(f"{prefix}.queue_depth", lambda: len(self.queue))

    # -- analysis helpers --------------------------------------------------

    def sheds_in(self, start: float, end: float) -> int:
        """Front-end sheds with timestamp in ``[start, end)``."""
        return sum(1 for t in self.shed_times if start <= t < end)

    def completion_times(self) -> Tuple[float, ...]:
        return tuple(sorted(
            j.t_done for j in self.finished_jobs if j.status == OK
        ))
