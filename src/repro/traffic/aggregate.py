"""Aggregated clients: one endpoint standing in for thousands of users.

Simulating a million independent client processes is hopeless at
discrete-event granularity; simulating a million *users* is not, because
what the server observes is the superposed arrival process.  An
:class:`AggregateClient` is one simulated endpoint that owns the
superposed arrivals of ``users_per_aggregate`` virtual users: each
arrival is attributed to a concrete (uniformly drawn) virtual user id,
tracked in a bitmap for coverage accounting, and carried through the
mux so per-user identity survives for dedup/metrics — while the event
count stays proportional to the *request* rate, not the user count.

The aggregate is strictly open-loop: the arrival loop only ever sleeps
until the next arrival.  When its bounded in-flight window is full the
arrival is shed and *counted* — it never blocks, so a slow server
cannot retard the offered load (the coordinated-omission trap that
closed-loop drivers fall into).
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from ..client.base import OP_SEARCH, Request
from ..sim.kernel import Simulator
from ..sim.monitor import LatencyRecorder
from .arrivals import ArrivalGenerator
from .mux import ConnectionMux, OK, TrafficJob


class AggregateClient:
    """One endpoint issuing the superposed load of N virtual users."""

    def __init__(
        self,
        sim: Simulator,
        aggregate_id: int,
        n_users: int,
        window: int,
        generator: ArrivalGenerator,
        users_rng: random.Random,
        workload_rng: random.Random,
        scale_gen,
        mux: ConnectionMux,
        sojourn: LatencyRecorder,
        tenant_sojourn: Optional[dict] = None,
        hotspots=None,
    ):
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.sim = sim
        self.aggregate_id = aggregate_id
        self.n_users = n_users
        self.window = window
        self.generator = generator
        self.users_rng = users_rng
        self.workload_rng = workload_rng
        self.scale_gen = scale_gen
        self.mux = mux
        self.sojourn = sojourn
        self.tenant_sojourn = tenant_sojourn
        #: Optional Zipf-hotspot location source; None keeps the uniform
        #: draw (the fingerprint-pinned default).
        self.hotspots = hotspots

        #: One bit per virtual user; counts distinct users that arrived.
        self._touched = bytearray((n_users + 7) // 8)
        self.users_touched = 0
        self.arrivals = 0
        self.issued = 0
        self.in_flight = 0
        self.shed_window = 0
        #: Timestamps of window sheds (phase analysis, like the mux's).
        self.shed_times = []

    def _touch(self, user_id: int) -> None:
        byte, bit = user_id >> 3, 1 << (user_id & 7)
        if not self._touched[byte] & bit:
            self._touched[byte] |= bit
            self.users_touched += 1

    def run(self, duration: float) -> Generator:
        """The arrival loop: one sim process per aggregate."""
        sim = self.sim
        for t, tenant in self.generator.arrivals(duration, start=sim.now):
            delay = t - sim.now
            if delay > 0.0:
                yield sim.timeout(delay)
            self.arrivals += 1
            user_id = self.users_rng.randrange(self.n_users)
            self._touch(user_id)
            if self.in_flight >= self.window:
                self.shed_window += 1
                self.shed_times.append(sim.now)
                continue
            job = TrafficJob(
                aggregate_id=self.aggregate_id,
                seq=self.arrivals - 1,
                user_id=user_id,
                tenant=tenant,
                request=Request(
                    OP_SEARCH,
                    (self.hotspots.next_rect(self.workload_rng,
                                             self.scale_gen)
                     if self.hotspots is not None
                     else self.scale_gen.next_rect(self.workload_rng)),
                ),
                t_arrival=sim.now,
                on_done=self._done,
            )
            if self.mux.offer(job):
                self.in_flight += 1
                self.issued += 1

    def _done(self, job: TrafficJob) -> None:
        self.in_flight -= 1
        if job.status == OK:
            self.sojourn.record(job.sojourn)
            if self.tenant_sojourn is not None:
                self.tenant_sojourn[job.tenant].record(job.sojourn)

    def sheds_in(self, start: float, end: float) -> int:
        return sum(1 for t in self.shed_times if start <= t < end)
