"""On-chunk byte format for B+tree nodes (parity with the R-tree codec).

Layout (little-endian)::

    header:   flags:u32 (bit0 = leaf)  count:u32  chunk_id:u64
              next_leaf:i64 (-1 when absent/inner)
    entries:  count x { key:u64  ref:u64 }   (ref = value | child chunk)
    inner:    one extra trailing ref (children = count+1 for inner nodes)
    versions: one u8 per 64-byte cache line (FaRM validation)

Inner nodes store ``count`` separator keys and ``count+1`` child refs;
leaves store ``count`` key/value pairs.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..rtree.serialize import CACHE_LINE
from .bptree import BNode
from .service import BNodeSnapshot

HEADER_FORMAT = "<IIQq"
HEADER_SIZE = struct.calcsize(HEADER_FORMAT)  # 24
PAIR_SIZE = 16  # key u64 + ref u64

FLAG_LEAF = 0x1


def payload_size(capacity: int) -> int:
    # worst case: inner node with capacity children and capacity-1 keys,
    # or leaf with capacity pairs; reserve capacity pairs + one extra ref.
    return HEADER_SIZE + capacity * PAIR_SIZE + 8


def version_bytes(capacity: int) -> int:
    payload = payload_size(capacity)
    return (payload + CACHE_LINE - 1) // CACHE_LINE


def chunk_size(capacity: int) -> int:
    raw = payload_size(capacity) + version_bytes(capacity)
    return ((raw + CACHE_LINE - 1) // CACHE_LINE) * CACHE_LINE


def pack_bnode(node: BNode, capacity: int) -> bytes:
    """Serialize a live node into its chunk bytes."""
    out = bytearray(chunk_size(capacity))
    if node.is_leaf:
        count = len(node.keys)
        if count > capacity:
            raise ValueError(f"leaf has {count} > {capacity} keys")
        next_leaf = (node.next_leaf.chunk_id
                     if node.next_leaf is not None else -1)
        struct.pack_into(HEADER_FORMAT, out, 0, FLAG_LEAF, count,
                         node.chunk_id, next_leaf)
        offset = HEADER_SIZE
        for key, value in zip(node.keys, node.values):
            struct.pack_into("<QQ", out, offset, key, value)
            offset += PAIR_SIZE
    else:
        count = len(node.keys)
        if len(node.children) > capacity:
            raise ValueError(
                f"inner has {len(node.children)} > {capacity} children"
            )
        struct.pack_into(HEADER_FORMAT, out, 0, 0, count,
                         node.chunk_id, -1)
        offset = HEADER_SIZE
        for key, child in zip(node.keys, node.children):
            struct.pack_into("<QQ", out, offset, key, child.chunk_id)
            offset += PAIR_SIZE
        # trailing child (children = count + 1)
        struct.pack_into("<Q", out, offset, node.children[-1].chunk_id
                         if node.children else 0)
    version = node.version & 0xFF
    base = payload_size(capacity)
    for i in range(version_bytes(capacity)):
        out[base + i] = version
    return bytes(out)


def pack_bnode_torn(node: BNode, capacity: int) -> bytes:
    """A mid-write image: leading cache lines carry the in-flight stamp."""
    data = bytearray(pack_bnode(node, capacity))
    base = payload_size(capacity)
    n_versions = version_bytes(capacity)
    new_version = (node.version + 1) & 0xFF
    for i in range(max(1, n_versions // 2)):
        data[base + i] = new_version
    return bytes(data)


def garbage_bchunk(capacity: int) -> bytes:
    """Recycled-memory bytes whose versions can never validate."""
    data = bytearray(chunk_size(capacity))
    base = payload_size(capacity)
    for i in range(version_bytes(capacity)):
        data[base + i] = i & 0xFF or 1
    return bytes(data)


def snapshot_from_bytes(
    data: bytes, capacity: int
) -> Optional[BNodeSnapshot]:
    """Decode + FaRM-validate chunk bytes into a snapshot (None = retry)."""
    if len(data) != chunk_size(capacity):
        return None
    flags, count, chunk_id, next_leaf = struct.unpack_from(
        HEADER_FORMAT, data, 0
    )
    if count > capacity:
        return None
    base = payload_size(capacity)
    versions = {data[base + i] for i in range(version_bytes(capacity))}
    if len(versions) > 1:
        return None  # torn
    is_leaf = bool(flags & FLAG_LEAF)
    keys = []
    refs = []
    offset = HEADER_SIZE
    for _ in range(count):
        key, ref = struct.unpack_from("<QQ", data, offset)
        keys.append(key)
        refs.append(ref)
        offset += PAIR_SIZE
    if not is_leaf:
        (tail,) = struct.unpack_from("<Q", data, offset)
        refs.append(tail)
    return BNodeSnapshot(
        chunk_id=chunk_id,
        is_leaf=is_leaf,
        keys=tuple(keys),
        refs=tuple(refs),
        next_leaf=(next_leaf if is_leaf and next_leaf >= 0 else None),
        version=next(iter(versions)),
        torn=False,
    )
