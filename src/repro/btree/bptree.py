"""A B+tree — the first of the paper's §VI framework extensions.

"Catfish is a framework for accessing link-based data structures over
RDMA, such as B+tree and Cuckoo hashing."  This module provides the
B+tree itself: a textbook implementation with

* fixed-capacity nodes tied to registered-memory chunks (like the R-tree);
* a sorted leaf chain (``next_leaf``) for range scans;
* full deletion with borrow/merge rebalancing;
* the same write-window versioning hooks the R-tree nodes expose, so
  FaRM-style one-sided reads validate identically.

Keys are integers, values are opaque integer tokens (their byte footprint
is accounted by the message codec).
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

DEFAULT_CAPACITY = 64


@dataclass
class KvMutationResult:
    """Accounting for one put/delete (mirrors the R-tree's version)."""

    ok: bool = True
    nodes_visited: int = 0
    mutated_nodes: List["BNode"] = field(default_factory=list)
    splits: int = 0
    merges: int = 0
    borrows: int = 0

    def note(self, node: "BNode") -> None:
        if node not in self.mutated_nodes:
            self.mutated_nodes.append(node)


@dataclass
class KvSearchResult:
    """Accounting for one get/scan."""

    items: List[Tuple[int, int]] = field(default_factory=list)
    nodes_visited: int = 0
    visited_chunks: List[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.items)


class BNode:
    """Shared base: chunk identity + the write-window version protocol."""

    __slots__ = ("chunk_id", "parent", "version", "active_writers")

    def __init__(self, chunk_id: int):
        self.chunk_id = chunk_id
        self.parent: Optional["BInner"] = None
        self.version = 0
        self.active_writers = 0

    def begin_write(self) -> None:
        self.active_writers += 1

    def end_write(self) -> None:
        if self.active_writers <= 0:
            raise RuntimeError(
                f"end_write() without begin_write() on node #{self.chunk_id}"
            )
        self.active_writers -= 1
        self.version += 1

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError


class BLeaf(BNode):
    __slots__ = ("keys", "values", "next_leaf")

    def __init__(self, chunk_id: int):
        super().__init__(chunk_id)
        self.keys: List[int] = []
        self.values: List[int] = []
        self.next_leaf: Optional["BLeaf"] = None

    @property
    def is_leaf(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"<BLeaf #{self.chunk_id} n={len(self.keys)}>"


class BInner(BNode):
    __slots__ = ("keys", "children")

    def __init__(self, chunk_id: int):
        super().__init__(chunk_id)
        #: ``len(children) == len(keys) + 1``; subtree ``children[i]``
        #: holds keys < keys[i] (and >= keys[i-1]).
        self.keys: List[int] = []
        self.children: List[BNode] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def child_index_for(self, key: int) -> int:
        return bisect.bisect_right(self.keys, key)

    def adopt(self, child: BNode) -> None:
        child.parent = self

    def __repr__(self) -> str:
        return f"<BInner #{self.chunk_id} n={len(self.keys)}>"


class BPlusTree:
    """A B+tree over integer keys with chunk-allocated nodes."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        alloc_chunk: Optional[Callable[[], int]] = None,
        free_chunk: Optional[Callable[[int], None]] = None,
    ):
        if capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        self.capacity = capacity
        self.min_fill = capacity // 2
        self._counter = itertools.count()
        self._alloc = alloc_chunk or (lambda: next(self._counter))
        self._free = free_chunk or (lambda chunk_id: None)
        self.nodes: Dict[int, BNode] = {}
        self.root: BNode = self._new_leaf()
        self.size = 0

    # -- node lifecycle -----------------------------------------------------

    def _register(self, node: BNode) -> BNode:
        self.nodes[node.chunk_id] = node
        return node

    def _new_leaf(self) -> BLeaf:
        return self._register(BLeaf(self._alloc()))

    def _new_inner(self) -> BInner:
        return self._register(BInner(self._alloc()))

    def _drop(self, node: BNode) -> None:
        del self.nodes[node.chunk_id]
        self._free(node.chunk_id)

    @property
    def height(self) -> int:
        height = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    # -- lookup ---------------------------------------------------------------

    def _descend(self, key: int, result) -> BLeaf:
        node = self.root
        result.nodes_visited += 1
        if hasattr(result, "visited_chunks"):
            result.visited_chunks.append(node.chunk_id)
        while not node.is_leaf:
            node = node.children[node.child_index_for(key)]
            result.nodes_visited += 1
            if hasattr(result, "visited_chunks"):
                result.visited_chunks.append(node.chunk_id)
        return node

    def get(self, key: int) -> KvSearchResult:
        """Point lookup; ``items`` holds [(key, value)] or is empty."""
        result = KvSearchResult()
        leaf = self._descend(key, result)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            result.items.append((key, leaf.values[index]))
        return result

    def range_scan(self, lo: int, hi: int,
                   max_results: Optional[int] = None) -> KvSearchResult:
        """All (key, value) with lo <= key <= hi, in key order."""
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        result = KvSearchResult()
        leaf = self._descend(lo, result)
        while leaf is not None:
            start = bisect.bisect_left(leaf.keys, lo)
            for i in range(start, len(leaf.keys)):
                if leaf.keys[i] > hi:
                    return result
                result.items.append((leaf.keys[i], leaf.values[i]))
                if max_results is not None and result.count >= max_results:
                    return result
            leaf = leaf.next_leaf
            if leaf is not None:
                result.nodes_visited += 1
                result.visited_chunks.append(leaf.chunk_id)
        return result

    # -- insertion ----------------------------------------------------------------

    def put(self, key: int, value: int) -> KvMutationResult:
        """Insert or overwrite."""
        result = KvMutationResult()
        leaf = self._descend(key, result)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value  # overwrite
        else:
            leaf.keys.insert(index, key)
            leaf.values.insert(index, value)
            self.size += 1
        result.note(leaf)
        if len(leaf.keys) > self.capacity:
            self._split_leaf(leaf, result)
        return result

    def _split_leaf(self, leaf: BLeaf, result: KvMutationResult) -> None:
        result.splits += 1
        sibling = self._new_leaf()
        mid = len(leaf.keys) // 2
        sibling.keys = leaf.keys[mid:]
        sibling.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        sibling.next_leaf = leaf.next_leaf
        leaf.next_leaf = sibling
        result.note(leaf)
        result.note(sibling)
        self._insert_in_parent(leaf, sibling.keys[0], sibling, result)

    def _split_inner(self, inner: BInner, result: KvMutationResult) -> None:
        result.splits += 1
        sibling = self._new_inner()
        mid = len(inner.keys) // 2
        push_up = inner.keys[mid]
        sibling.keys = inner.keys[mid + 1:]
        sibling.children = inner.children[mid + 1:]
        inner.keys = inner.keys[:mid]
        inner.children = inner.children[:mid + 1]
        for child in sibling.children:
            sibling.adopt(child)
        result.note(inner)
        result.note(sibling)
        self._insert_in_parent(inner, push_up, sibling, result)

    def _insert_in_parent(self, left: BNode, key: int, right: BNode,
                          result: KvMutationResult) -> None:
        parent = left.parent
        if parent is None:
            new_root = self._new_inner()
            new_root.keys = [key]
            new_root.children = [left, right]
            new_root.adopt(left)
            new_root.adopt(right)
            self.root = new_root
            result.note(new_root)
            return
        index = parent.children.index(left)
        parent.keys.insert(index, key)
        parent.children.insert(index + 1, right)
        parent.adopt(right)
        result.note(parent)
        if len(parent.children) > self.capacity:
            self._split_inner(parent, result)

    # -- deletion -----------------------------------------------------------------

    def delete(self, key: int) -> KvMutationResult:
        """Remove ``key``; ``ok=False`` when absent."""
        result = KvMutationResult()
        leaf = self._descend(key, result)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            result.ok = False
            return result
        leaf.keys.pop(index)
        leaf.values.pop(index)
        self.size -= 1
        result.note(leaf)
        self._rebalance(leaf, result)
        return result

    def _node_size(self, node: BNode) -> int:
        return len(node.children) if not node.is_leaf else len(node.keys)

    def _rebalance(self, node: BNode, result: KvMutationResult) -> None:
        if node is self.root:
            if not node.is_leaf and len(node.children) == 1:
                # Root collapse.
                self.root = node.children[0]
                self.root.parent = None
                self._drop(node)
                result.note(self.root)
            return
        if self._node_size(node) >= self.min_fill:
            return
        parent = node.parent
        index = parent.children.index(node)
        left = parent.children[index - 1] if index > 0 else None
        right = (parent.children[index + 1]
                 if index + 1 < len(parent.children) else None)
        if left is not None and self._node_size(left) > self.min_fill:
            self._borrow_from_left(parent, index, left, node, result)
            return
        if right is not None and self._node_size(right) > self.min_fill:
            self._borrow_from_right(parent, index, node, right, result)
            return
        if left is not None:
            self._merge(parent, index - 1, left, node, result)
        else:
            self._merge(parent, index, node, right, result)

    def _borrow_from_left(self, parent, index, left, node, result) -> None:
        result.borrows += 1
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            parent.keys[index - 1] = node.keys[0]
        else:
            child = left.children.pop()
            node.children.insert(0, child)
            node.adopt(child)
            node.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
        result.note(left)
        result.note(node)
        result.note(parent)

    def _borrow_from_right(self, parent, index, node, right, result) -> None:
        result.borrows += 1
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child = right.children.pop(0)
            node.children.append(child)
            node.adopt(child)
            node.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
        result.note(right)
        result.note(node)
        result.note(parent)

    def _merge(self, parent, left_index, left, right, result) -> None:
        """Fold ``right`` into ``left`` and drop it."""
        result.merges += 1
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            for child in right.children:
                left.children.append(child)
                left.adopt(child)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)
        self._drop(right)
        result.note(left)
        result.note(parent)
        self._rebalance(parent, result)

    # -- bulk loading ------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: List[Tuple[int, int]],
        capacity: int = DEFAULT_CAPACITY,
        fill: float = 0.9,
        alloc_chunk: Optional[Callable[[], int]] = None,
        free_chunk: Optional[Callable[[int], None]] = None,
    ) -> "BPlusTree":
        """Build from (key, value) pairs; keys must be unique."""
        tree = cls(capacity=capacity, alloc_chunk=alloc_chunk,
                   free_chunk=free_chunk)
        if not items:
            return tree
        ordered = sorted(items)
        keys = [k for k, _ in ordered]
        if len(set(keys)) != len(keys):
            raise ValueError("bulk_load requires unique keys")
        per_node = max(2, int(capacity * fill))

        placeholder = tree.root
        leaves: List[BLeaf] = []
        for start in range(0, len(ordered), per_node):
            chunk = ordered[start:start + per_node]
            leaf = tree._new_leaf()
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        if len(leaves) > 1 and len(leaves[-1].keys) < tree.min_fill:
            # Borrow from the predecessor so fill invariants hold.
            prev, last = leaves[-2], leaves[-1]
            while len(last.keys) < tree.min_fill:
                last.keys.insert(0, prev.keys.pop())
                last.values.insert(0, prev.values.pop())

        level: List[BNode] = list(leaves)
        while len(level) > 1:
            parents: List[BInner] = []
            for start in range(0, len(level), per_node):
                group = level[start:start + per_node]
                inner = tree._new_inner()
                inner.children = list(group)
                inner.keys = [
                    tree._leftmost_key(child) for child in group[1:]
                ]
                for child in group:
                    inner.adopt(child)
                parents.append(inner)
            if len(parents) > 1 and len(parents[-1].children) < tree.min_fill:
                prev, last = parents[-2], parents[-1]
                while len(last.children) < tree.min_fill:
                    child = prev.children.pop()
                    last.children.insert(0, child)
                    last.adopt(child)
                # Separators are the leftmost keys of all but the first
                # child; rebuild both affected nodes.
                prev.keys = [tree._leftmost_key(c)
                             for c in prev.children[1:]]
                last.keys = [tree._leftmost_key(c)
                             for c in last.children[1:]]
            level = list(parents)
        tree.root = level[0]
        tree.root.parent = None
        tree._drop(placeholder)
        tree.size = len(ordered)
        return tree

    def _leftmost_key(self, node: BNode) -> int:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    # -- invariants -----------------------------------------------------------------

    def validate(self) -> None:
        """Assert every structural invariant (used by the tests)."""
        leaves: List[BLeaf] = []
        count = self._validate_node(self.root, None, None, is_root=True,
                                    leaves=leaves)
        assert count == self.size, f"size {self.size} but {count} keys"
        # Leaf chain covers every leaf, in order.
        if leaves:
            chain = []
            node = leaves[0]
            while node is not None:
                chain.append(node)
                node = node.next_leaf
            assert chain == leaves, "broken leaf chain"
            flat = [k for leaf in leaves for k in leaf.keys]
            assert flat == sorted(flat), "leaf keys out of order"
            assert len(flat) == len(set(flat)), "duplicate keys"

    def _validate_node(self, node, lo, hi, is_root, leaves) -> int:
        if node.is_leaf:
            assert node.keys == sorted(node.keys)
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= self.min_fill, (
                    f"leaf #{node.chunk_id} underfull: {len(node.keys)}"
                )
            assert len(node.keys) <= self.capacity
            for key in node.keys:
                assert lo is None or key >= lo, f"key {key} below {lo}"
                assert hi is None or key < hi, f"key {key} not below {hi}"
            leaves.append(node)
            return len(node.keys)
        assert len(node.children) == len(node.keys) + 1
        assert node.keys == sorted(node.keys)
        if not is_root:
            assert len(node.children) >= self.min_fill
        else:
            assert len(node.children) >= 2
        assert len(node.children) <= self.capacity
        total = 0
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            assert child.parent is node, "broken parent pointer"
            total += self._validate_node(
                child, bounds[i], bounds[i + 1], is_root=False, leaves=leaves
            )
        return total
