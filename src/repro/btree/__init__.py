"""B+tree over the Catfish framework (paper §VI extension)."""

from .bptree import (
    BInner,
    BLeaf,
    BNode,
    BPlusTree,
    KvMutationResult,
    KvSearchResult,
)
from .offload import (
    OP_GET,
    OP_KV_DELETE,
    OP_PUT,
    OP_SCAN,
    BTreeOffloadEngine,
    KvBanditSession,
    KvCatfishSession,
    KvFmSession,
    KvOffloadSession,
    KvRequest,
)
from .service import (
    BNodeSnapshot,
    BTreeService,
    BTreeSnapshotReader,
    KvMeta,
    KvOffloadDescriptor,
    snapshot_bnode,
)

__all__ = [
    "BInner",
    "BLeaf",
    "BNode",
    "BPlusTree",
    "KvMutationResult",
    "KvSearchResult",
    "OP_GET",
    "OP_KV_DELETE",
    "OP_PUT",
    "OP_SCAN",
    "BTreeOffloadEngine",
    "KvBanditSession",
    "KvCatfishSession",
    "KvFmSession",
    "KvOffloadSession",
    "KvRequest",
    "BNodeSnapshot",
    "BTreeService",
    "BTreeSnapshotReader",
    "KvMeta",
    "KvOffloadDescriptor",
    "snapshot_bnode",
]
