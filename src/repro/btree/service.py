"""Server-side B+tree service: registered chunks, execution, dispatch.

Plugs into the *same* fast-messaging / TCP machinery as the R-tree server
(both expose ``host``, ``costs``, ``service_inflation`` and
``handle_request``) — this is the paper's §VI framework claim made
concrete: nothing in ``repro.server.fast_messaging`` or the adaptive
client knows which index lives behind the ring buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, Sequence, Tuple

from ..hw.host import Host
from ..hw.memory import ChunkAllocator
from ..msg.codec import (
    KvDeleteRequest,
    KvGetRequest,
    KvPutRequest,
    KvScanRequest,
    ResponseSegment,
    segment_results,
)
from ..rtree.locks import TreeLockManager
from ..rtree.versioning import WriteTracker
from ..server.base import META_REGION_SIZE, OFFLOAD_CHUNK_BYTES
from ..server.costs import DEFAULT_COSTS, CostModel
from ..sim.kernel import Simulator
from .bptree import BNode, BPlusTree


@dataclass(frozen=True)
class BNodeSnapshot:
    """Client-visible image of one B+tree chunk."""

    chunk_id: int
    is_leaf: bool
    keys: Tuple[int, ...]
    #: children chunk ids (inner) or values (leaf)
    refs: Tuple[int, ...]
    next_leaf: Optional[int]
    version: int
    torn: bool

    def child_for(self, key: int) -> int:
        import bisect
        return self.refs[bisect.bisect_right(self.keys, key)]

    def children_for_range(self, lo: int, hi: int) -> Tuple[int, ...]:
        """Chunk ids of every child overlapping [lo, hi] (inner nodes)."""
        import bisect
        first = bisect.bisect_right(self.keys, lo)
        last = bisect.bisect_right(self.keys, hi)
        return self.refs[first:last + 1]


def snapshot_bnode(node: BNode) -> BNodeSnapshot:
    if node.is_leaf:
        refs = tuple(node.values)
        next_leaf = (node.next_leaf.chunk_id
                     if node.next_leaf is not None else None)
    else:
        refs = tuple(child.chunk_id for child in node.children)
        next_leaf = None
    return BNodeSnapshot(
        chunk_id=node.chunk_id,
        is_leaf=node.is_leaf,
        keys=tuple(node.keys),
        refs=refs,
        next_leaf=next_leaf,
        version=node.version,
        torn=node.active_writers > 0,
    )


class BTreeSnapshotReader:
    """One-sided chunk reads with torn-read injection (as for the R-tree)."""

    def __init__(self, nodes: Dict[int, BNode]):
        self._nodes = nodes
        self.reads = 0
        self.torn_reads = 0

    def read_chunk(self, chunk_id: int, now: float) -> BNodeSnapshot:
        self.reads += 1
        node = self._nodes.get(chunk_id)
        if node is None:
            self.torn_reads += 1
            return BNodeSnapshot(chunk_id, True, (), (), None, -1, True)
        view = snapshot_bnode(node)
        if view.torn:
            self.torn_reads += 1
        return view


class BTreeChunkTarget:
    def __init__(self, allocator: ChunkAllocator,
                 reader: BTreeSnapshotReader):
        self._allocator = allocator
        self._reader = reader

    def rdma_read(self, address, length, now):
        return self._reader.read_chunk(self._allocator.chunk_of(address),
                                       now)

    def rdma_write(self, address, length, payload, now):
        raise PermissionError("clients never write the B+tree region")


class ByteBTreeChunkTarget:
    """Full-fidelity variant: reads return real packed chunk bytes with
    genuinely inconsistent version stamps for mid-write images."""

    def __init__(self, service: "BTreeService"):
        self._service = service
        self.reads = 0
        self.torn_reads = 0

    def rdma_read(self, address, length, now):
        from .serialize import garbage_bchunk, pack_bnode, pack_bnode_torn
        chunk_id = self._service.allocator.chunk_of(address)
        node = self._service.tree.nodes.get(chunk_id)
        capacity = self._service.tree.capacity
        self.reads += 1
        if node is None:
            self.torn_reads += 1
            return garbage_bchunk(capacity)
        if node.active_writers > 0:
            self.torn_reads += 1
            return pack_bnode_torn(node, capacity)
        return pack_bnode(node, capacity)

    def rdma_write(self, address, length, payload, now):
        raise PermissionError("clients never write the B+tree region")


@dataclass(frozen=True)
class KvMeta:
    root_chunk: int
    height: int


@dataclass(frozen=True)
class KvOffloadDescriptor:
    tree_rkey: int
    tree_base: int
    chunk_bytes: int
    meta_rkey: int
    meta_base: int
    #: node capacity (needed by the byte-mode chunk decoder)
    capacity: int = 64


class _KvMetaTarget:
    def __init__(self, service: "BTreeService"):
        self._service = service

    def rdma_read(self, address, length, now):
        tree = self._service.tree
        return KvMeta(root_chunk=tree.root.chunk_id, height=tree.height)

    def rdma_write(self, address, length, payload, now):
        raise PermissionError("the meta region is read-only for clients")


class BTreeService:
    """The B+tree analogue of :class:`~repro.server.base.RTreeServer`."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        items: Sequence[Tuple[int, int]],
        capacity: int = 64,
        costs: CostModel = DEFAULT_COSTS,
        byte_mode: bool = False,
    ):
        self.sim = sim
        self.host = host
        self.costs = costs
        self.byte_mode = byte_mode
        self.service_inflation = 1.0
        self.chunk_bytes = OFFLOAD_CHUNK_BYTES
        node_estimate = max(64, 4 * len(items) // max(2, capacity // 2))
        self.region = host.memory.register(
            (node_estimate + 4096) * self.chunk_bytes, name="btree"
        )
        self.allocator = ChunkAllocator(self.region, self.chunk_bytes)
        self.tree = BPlusTree.bulk_load(
            list(items),
            capacity=capacity,
            alloc_chunk=self.allocator.alloc,
            free_chunk=self.allocator.free,
        )
        self.reader = BTreeSnapshotReader(self.tree.nodes)
        self.locks = TreeLockManager(sim)
        self.write_tracker = WriteTracker(sim)
        if byte_mode:
            self.byte_target = ByteBTreeChunkTarget(self)
            host.memory.bind(self.region.rkey, self.byte_target)
        else:
            self.byte_target = None
            host.memory.bind(
                self.region.rkey,
                BTreeChunkTarget(self.allocator, self.reader),
            )
        self.meta_region = host.memory.register(META_REGION_SIZE,
                                                name="btree-meta")
        host.memory.bind(self.meta_region.rkey, _KvMetaTarget(self))

        self.gets_served = 0
        self.puts_served = 0
        self.deletes_served = 0
        self.scans_served = 0

    # -- client bootstrap -----------------------------------------------------

    def offload_descriptor(self) -> KvOffloadDescriptor:
        return KvOffloadDescriptor(
            tree_rkey=self.region.rkey,
            tree_base=self.region.base,
            chunk_bytes=self.chunk_bytes,
            meta_rkey=self.meta_region.rkey,
            meta_base=self.meta_region.base,
            capacity=self.tree.capacity,
        )

    def chunk_address(self, chunk_id: int) -> int:
        return self.allocator.address_of(chunk_id)

    # -- execution ---------------------------------------------------------------

    def _search_cost(self, result) -> float:
        return (
            self.costs.request_parse
            + result.nodes_visited * self.costs.node_visit
            + result.count * self.costs.per_result
        ) * self.service_inflation

    def _mutation_cost(self, result) -> float:
        return (
            self.costs.request_parse
            + result.nodes_visited * self.costs.node_visit
            + self.costs.insert_write
            + (result.splits + result.merges + result.borrows)
            * self.costs.split
        ) * self.service_inflation

    def execute_get(self, key: int) -> Generator:
        result = self.tree.get(key)

        def body():
            yield from self.host.cpu.execute(self._search_cost(result))

        yield from self.locks.read_guard(result.visited_chunks, body())
        self.gets_served += 1
        return result.items

    def execute_scan(self, lo: int, hi: int,
                     max_results: Optional[int] = None) -> Generator:
        result = self.tree.range_scan(lo, hi, max_results)

        def body():
            yield from self.host.cpu.execute(self._search_cost(result))

        yield from self.locks.read_guard(result.visited_chunks, body())
        self.scans_served += 1
        return result.items

    def _run_mutation(self, result) -> Generator:
        cost = self._mutation_cost(result)
        chunk_ids = [n.chunk_id for n in result.mutated_nodes]

        def body():
            window = min(cost, self.costs.write_window(
                len(result.mutated_nodes)))
            yield from self.host.cpu.execute(cost - window)
            yield from self.write_tracker.write_window(
                result.mutated_nodes, self.host.cpu.execute(window)
            )

        yield from self.locks.write_guard(chunk_ids, body())

    def execute_put(self, key: int, value: int) -> Generator:
        result = self.tree.put(key, value)
        yield from self._run_mutation(result)
        self.puts_served += 1
        return True

    def execute_delete(self, key: int) -> Generator:
        result = self.tree.delete(key)
        yield from self._run_mutation(result)
        self.deletes_served += 1
        return result.ok

    # -- transport-facing dispatch --------------------------------------------------

    def handle_request(self, request) -> Generator:
        if isinstance(request, KvGetRequest):
            items = yield from self.execute_get(request.key)
            return segment_results(request.req_id, items)
        if isinstance(request, KvScanRequest):
            items = yield from self.execute_scan(
                request.lo, request.hi, request.max_results
            )
            return segment_results(request.req_id, items)
        if isinstance(request, KvPutRequest):
            ok = yield from self.execute_put(request.key, request.value)
            return [ResponseSegment(request.req_id, (), last=True, ok=ok)]
        if isinstance(request, KvDeleteRequest):
            ok = yield from self.execute_delete(request.key)
            return [ResponseSegment(request.req_id, (), last=True, ok=ok)]
        raise TypeError(f"B+tree service got unexpected {request!r}")

    def cpu_utilization(self) -> float:
        return self.host.cpu.utilization()
