"""Client-side B+tree access over the Catfish framework.

* :class:`KvFmSession` — get/put/delete/scan through the ring buffer
  (reuses the generic receiver of :class:`FmSession`);
* :class:`BTreeOffloadEngine` — one-sided traversal: point lookups walk
  root→leaf with validated chunk reads; range scans multi-issue all the
  leaves the parent points into the range (the B+tree analogue of the
  R-tree's multi-issue);
* :class:`KvCatfishSession` — Algorithm 1 unchanged, with B+tree reads as
  the offloadable operations.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..client.adaptive import CatfishSession
from ..client.base import ClientStats
from ..client.fm_client import FmSession
from ..client.offload_client import OffloadError
from ..msg.codec import (
    KvDeleteRequest,
    KvGetRequest,
    KvPutRequest,
    KvScanRequest,
    ResponseSegment,
)
from ..server.costs import CostModel
from ..sim.kernel import Simulator
from ..sim.resources import Store
from ..transport.rdma import QpEndpoint
from .service import BNodeSnapshot, KvMeta, KvOffloadDescriptor

OP_GET = "get"
OP_PUT = "put"
OP_KV_DELETE = "kv_delete"
OP_SCAN = "scan"

META_READ_SIZE = 16


class KvRequest:
    """One client-side KV request (scheme-independent)."""

    __slots__ = ("op", "key", "value", "lo", "hi", "max_results")

    def __init__(self, op, key=None, value=None, lo=None, hi=None,
                 max_results=None):
        if op not in (OP_GET, OP_PUT, OP_KV_DELETE, OP_SCAN):
            raise ValueError(f"unknown kv op {op!r}")
        if op in (OP_GET, OP_PUT, OP_KV_DELETE) and key is None:
            raise ValueError(f"{op} needs a key")
        if op == OP_PUT and value is None:
            raise ValueError("put needs a value")
        if op == OP_SCAN and (lo is None or hi is None):
            raise ValueError("scan needs lo and hi")
        self.op = op
        self.key = key
        self.value = value
        self.lo = lo
        self.hi = hi
        self.max_results = max_results


class KvFmSession(FmSession):
    """Fast messaging for KV requests (same rings, different codec)."""

    def execute(self, request: KvRequest) -> Generator:
        self.stats.fast_messaging_requests += 1
        req_id = self._ids.next_id()
        if request.op == OP_GET:
            wire = KvGetRequest(req_id, request.key)
        elif request.op == OP_PUT:
            wire = KvPutRequest(req_id, request.key, request.value)
        elif request.op == OP_KV_DELETE:
            wire = KvDeleteRequest(req_id, request.key)
        else:
            wire = KvScanRequest(req_id, request.lo, request.hi,
                                 request.max_results)
        yield from self.conn.request_ring.reserve(wire)
        yield self.conn.client_post_request(wire)
        results: List[Tuple[int, int]] = []
        while True:
            segment: ResponseSegment = yield self._segments.get()
            if segment.req_id != wire.req_id:
                raise RuntimeError("out-of-order response on a sync client")
            results.extend(segment.results)
            if segment.last:
                break
        self.stats.results_received += len(results)
        return results


class BTreeOffloadEngine:
    """One-sided B+tree traversal with validation and restarts."""

    def __init__(
        self,
        sim: Simulator,
        qp: QpEndpoint,
        descriptor: KvOffloadDescriptor,
        costs: CostModel,
        stats: ClientStats,
        multi_issue: bool = True,
        max_read_retries: int = 8,
        max_restarts: int = 8,
        retry_backoff: float = 1e-6,
    ):
        self.sim = sim
        self.qp = qp
        self.desc = descriptor
        self.costs = costs
        self.stats = stats
        self.multi_issue = multi_issue
        self.max_read_retries = max_read_retries
        self.max_restarts = max_restarts
        self.retry_backoff = retry_backoff
        self._cached_root: Optional[int] = None
        self._cached_height: Optional[int] = None
        self.meta_reads = 0
        self.chunks_fetched = 0

    # -- low-level reads -------------------------------------------------------

    def _addr(self, chunk_id: int) -> int:
        return self.desc.tree_base + chunk_id * self.desc.chunk_bytes

    def _read_meta(self) -> Generator:
        meta: KvMeta = yield self.qp.post_read(
            self.desc.meta_rkey, self.desc.meta_base, META_READ_SIZE
        )
        self.meta_reads += 1
        return meta

    def _apply_meta(self, meta: KvMeta) -> bool:
        stale = (meta.root_chunk != self._cached_root
                 or meta.height != self._cached_height)
        self._cached_root = meta.root_chunk
        self._cached_height = meta.height
        return stale

    def _read_valid(self, chunk_id: int,
                    expect_leaf: Optional[bool] = None) -> Generator:
        for attempt in range(self.max_read_retries):
            data = yield self.qp.post_read(
                self.desc.tree_rkey, self._addr(chunk_id),
                self.desc.chunk_bytes,
            )
            self.chunks_fetched += 1
            if isinstance(data, (bytes, bytearray)):
                from .serialize import snapshot_from_bytes
                view = snapshot_from_bytes(data, self.desc.capacity)
                ok = view is not None
            else:
                view = data
                ok = not view.torn
            if ok and (
                expect_leaf is None or view.is_leaf == expect_leaf
            ):
                return view
            self.stats.torn_retries += 1
            yield self.sim.timeout(self.retry_backoff * (attempt + 1))
        return None

    # -- operations -------------------------------------------------------------

    def get(self, key: int) -> Generator:
        """Point lookup; returns [(key, value)] or []."""
        self.stats.offloaded_requests += 1
        for _restart in range(self.max_restarts):
            meta = yield from self._read_meta()
            self._apply_meta(meta)
            items = yield from self._descend_and_read(key)
            if items is not None:
                self.stats.results_received += len(items)
                return items
            self.stats.search_restarts += 1
        raise OffloadError("get() did not complete after restarts")

    def _descend_and_read(self, key: int) -> Generator:
        chunk_id = self._cached_root
        remaining_levels = self._cached_height
        while True:
            expect_leaf = remaining_levels == 1
            view = yield from self._read_valid(chunk_id, expect_leaf)
            if view is None:
                return None
            yield self.sim.timeout(self.costs.client_node_check)
            if view.is_leaf:
                items = [
                    (k, v) for k, v in zip(view.keys, view.refs) if k == key
                ]
                return items
            chunk_id = view.child_for(key)
            remaining_levels -= 1

    def scan(self, lo: int, hi: int,
             max_results: Optional[int] = None) -> Generator:
        """Range scan [lo, hi]; multi-issue fetches sibling leaves in
        one wave when the parent's fan-out covers the range."""
        self.stats.offloaded_requests += 1
        for _restart in range(self.max_restarts):
            meta = yield from self._read_meta()
            self._apply_meta(meta)
            items = yield from self._scan_once(lo, hi, max_results)
            if items is not None:
                self.stats.results_received += len(items)
                return items
            self.stats.search_restarts += 1
        raise OffloadError("scan() did not complete after restarts")

    def _scan_once(self, lo, hi, max_results) -> Generator:
        if self.multi_issue:
            items = yield from self._scan_levelwise(lo, hi, max_results)
        else:
            items = yield from self._scan_chain(lo, hi, max_results)
        return items

    def _scan_chain(self, lo, hi, max_results) -> Generator:
        """Baseline: descend to lo's leaf, then walk the next-leaf chain —
        one RDMA Read per node, strictly sequential RTTs."""
        chunk_id = self._cached_root
        levels_left = self._cached_height
        while levels_left > 1:
            view = yield from self._read_valid(chunk_id, expect_leaf=False)
            if view is None:
                return None
            yield self.sim.timeout(self.costs.client_node_check)
            chunk_id = view.child_for(lo)
            levels_left -= 1

        items: List[Tuple[int, int]] = []
        next_id = chunk_id
        while next_id is not None:
            leaf = yield from self._read_valid(next_id, expect_leaf=True)
            if leaf is None:
                return None
            yield self.sim.timeout(self.costs.client_node_check)
            for k, v in zip(leaf.keys, leaf.refs):
                if k > hi:
                    return items
                if k >= lo:
                    items.append((k, v))
                    if max_results is not None and len(items) >= max_results:
                        return items
            next_id = leaf.next_leaf
        return items

    def _scan_levelwise(self, lo, hi, max_results) -> Generator:
        """Multi-issue: at every level fetch *all* children overlapping the
        range in one concurrent wave (the B+tree analogue of the R-tree's
        multi-issue traversal: the RTTs of a whole level pipeline)."""
        frontier = [self._cached_root]
        levels_left = self._cached_height
        while levels_left > 1:
            views = yield from self._fetch_wave(frontier, expect_leaf=False)
            if views is None:
                return None
            for _ in views:
                yield self.sim.timeout(self.costs.client_node_check)
            frontier = [
                cid
                for view in views
                for cid in view.children_for_range(lo, hi)
            ]
            levels_left -= 1
            if max_results is not None and levels_left == 1:
                # Every leaf holds at least one key in range except
                # possibly the two boundary leaves; cap the wave.
                frontier = frontier[:max_results + 2]

        leaves = yield from self._fetch_wave(frontier, expect_leaf=True)
        if leaves is None:
            return None
        items: List[Tuple[int, int]] = []
        for leaf in leaves:  # wave preserves key order
            yield self.sim.timeout(self.costs.client_node_check)
            for k, v in zip(leaf.keys, leaf.refs):
                if lo <= k <= hi:
                    items.append((k, v))
                    if max_results is not None and len(items) >= max_results:
                        return items
        return items

    def _fetch_wave(self, chunk_ids, expect_leaf) -> Generator:
        """Fetch chunks concurrently, preserving input order; None if any
        read failed validation permanently."""
        arrived: Store = Store(self.sim)

        def fetch(index, cid):
            view = yield from self._read_valid(cid, expect_leaf=expect_leaf)
            arrived.put((index, view))

        for index, cid in enumerate(chunk_ids):
            self.sim.process(fetch(index, cid), name="kv-multi-read")
        views: List[Optional[BNodeSnapshot]] = [None] * len(chunk_ids)
        failed = False
        for _ in chunk_ids:
            index, view = yield arrived.get()
            if view is None:
                failed = True
            views[index] = view
        return None if failed else views


class KvCatfishSession(CatfishSession):
    """Algorithm 1 over B+tree operations — unchanged back-off logic."""

    def _is_offloadable(self, request: KvRequest) -> bool:
        return request.op in (OP_GET, OP_SCAN)

    def _offload(self, request: KvRequest) -> Generator:
        if request.op == OP_GET:
            result = yield from self.engine.get(request.key)
        else:
            result = yield from self.engine.scan(
                request.lo, request.hi, request.max_results
            )
        return result


class KvBanditSession:
    """ε-greedy latency bandit over B+tree reads (cf. client.bandit)."""

    def __init__(self, sim, fm, engine, stats, epsilon=0.1, alpha=0.3,
                 rng=None):
        from ..client.bandit import BanditSession
        # Compose rather than subclass: reuse the arm-selection machinery
        # with KV dispatch.
        self._bandit = BanditSession(sim, fm, engine, stats,
                                     epsilon=epsilon, alpha=alpha, rng=rng)
        self.sim = sim
        self.fm = fm
        self.engine = engine
        self.stats = stats

    @property
    def mode_counts(self):
        return self._bandit.mode_counts

    def execute(self, request: KvRequest) -> Generator:
        from ..client.bandit import OFFLOADING
        if request.op not in (OP_GET, OP_SCAN):
            result = yield from self.fm.execute(request)
            return result
        mode = self._bandit._choose_mode()
        self._bandit.mode_counts[mode] += 1
        start = self.sim.now
        if mode == OFFLOADING:
            if request.op == OP_GET:
                result = yield from self.engine.get(request.key)
            else:
                result = yield from self.engine.scan(
                    request.lo, request.hi, request.max_results)
        else:
            result = yield from self.fm.execute(request)
        self._bandit.estimates[mode].update(self.sim.now - start)
        return result


class KvOffloadSession:
    """Always-offload reads (the FaRM-style baseline for KV)."""

    def __init__(self, engine: BTreeOffloadEngine, fm: KvFmSession,
                 stats: ClientStats):
        self.engine = engine
        self.fm = fm
        self.stats = stats

    def execute(self, request: KvRequest) -> Generator:
        if request.op == OP_GET:
            result = yield from self.engine.get(request.key)
            return result
        if request.op == OP_SCAN:
            result = yield from self.engine.scan(
                request.lo, request.hi, request.max_results
            )
            return result
        result = yield from self.fm.execute(request)
        return result
