"""CPU cost model for R-tree request processing.

These constants are the simulation's analogue of "how long does a Broadwell
core spend on this"; they are calibrated so the paper's resource-saturation
shapes reproduce (see DESIGN.md §5):

* scale-1e-5 searches (~8 nodes visited on the 2M tree) cost ~15-20 us of
  server CPU, so 28 cores saturate around 1.5-1.8 Mops — the CPU-bound
  regime of Figs 2(b)/10(a);
* scale-0.01 searches (~15 nodes + ~50 results) cost ~35 us, and their
  ~2 KB responses saturate 1 GbE before the CPU — the bandwidth-bound
  regime of Figs 2(a)/10(b).

All values are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtree.rstar import MutationResult, SearchResult


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU charges for a server (or client) core."""

    #: Fixed per-request dispatch/parse cost.
    request_parse: float = 1.0e-6
    #: Visiting one R-tree node: cache misses on up to M entries plus the
    #: rectangle comparisons (calibrated against the paper's saturation
    #: throughputs; see DESIGN.md §5).
    node_visit: float = 5.0e-6
    #: Copying one matching rectangle into the response.
    per_result: float = 0.1e-6
    #: Posting one response segment (RDMA Write descriptor or socket call).
    response_segment: float = 0.5e-6
    #: Fixed insert cost beyond path traversal (leaf write + MBR updates).
    insert_write: float = 4.0e-6
    #: Splitting one node (R* axis/index selection + redistribution).
    split: float = 10.0e-6
    #: Re-inserting one entry during forced reinsertion.
    reinsert_entry: float = 3.0e-6
    #: Client-side cost of one node intersection check during offloading
    #: (uncontended client core; adds latency only).  Cheaper than the
    #: server's ``node_visit`` because the client skips result copying and
    #: lock handling, but the same order of magnitude — the intersection
    #: scan is the same work.
    client_node_check: float = 2.0e-6
    #: Probing one cuckoo hash bucket (a single cache line of slots; far
    #: cheaper than an R-tree node scan).
    bucket_probe: float = 0.5e-6
    #: Duration of the actual memory mutation per touched node — the torn-
    #: read window.  Most of an insert's CPU time is traversal (reads);
    #: only the final store burst can tear a concurrent one-sided read.
    node_write_window: float = 0.8e-6

    def write_window(self, n_mutated_nodes: int) -> float:
        """Torn-read window for a mutation touching ``n`` nodes."""
        return self.node_write_window * max(1, n_mutated_nodes)

    def search_cost(self, result: SearchResult) -> float:
        """Server CPU seconds to execute one search."""
        return (
            self.request_parse
            + result.nodes_visited * self.node_visit
            + result.count * self.per_result
        )

    def mutation_cost(self, result: MutationResult) -> float:
        """Server CPU seconds to execute one insert/delete."""
        return (
            self.request_parse
            + result.nodes_visited * self.node_visit
            + self.insert_write
            + result.splits * self.split
            + result.reinserted_entries * self.reinsert_entry
        )

    def response_cost(self, n_segments: int) -> float:
        """Server CPU seconds to emit a segmented response."""
        return n_segments * self.response_segment


DEFAULT_COSTS = CostModel()
