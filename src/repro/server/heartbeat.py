"""Server CPU-utilization heartbeats (paper §IV-A).

Every ``Inv`` (10 ms in the paper) the server samples its CPU utilization
over the elapsed window and RDMA-Writes it to every connected client
through the response ring buffer.  Heartbeats are droppable: if a client's
ring has no room (its link is congested), the heartbeat is skipped — the
client-side algorithm deliberately treats a missing heartbeat as "do not
offload", because offloading would add bandwidth to an already saturated
link.

Each heartbeat carries a monotone sequence number.  The client consumes a
heartbeat only when the mailbox sequence advanced past the last one it
read (:meth:`HeartbeatMailbox.consume_fresh`), which makes a genuine
``0.0``-utilization heartbeat distinguishable from "no heartbeat arrived"
— comparing the utilization value against zero cannot tell the two apart.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Tuple

from ..msg.codec import Heartbeat
from ..obs.registry import Counter, MetricsRegistry
from ..sim.kernel import Simulator

#: The paper's heartbeat interval.
DEFAULT_HEARTBEAT_INTERVAL = 10e-3


class HeartbeatMailbox:
    """The client-side ``u_serv`` memory region of Algorithm 1."""

    def __init__(self) -> None:
        self.value = 0.0
        self.seq = -1
        self.updates = 0
        #: Last piggybacked cache-invalidation hint (tree mut_seq
        #: high-water mark); None until a hint-carrying beat lands.
        self.mut_hint: Optional[int] = None
        #: Callbacks fed every invalidation hint as it is delivered (the
        #: offload engine's node cache registers here, so a write storm
        #: flushes stale views without waiting for the next search).
        self._hint_sinks: List[Callable[[int], None]] = []

    def attach_hint_sink(self, sink: Callable[[int], None]) -> None:
        """Register a consumer for piggybacked invalidation hints."""
        self._hint_sinks.append(sink)

    def rdma_write(self, address: int, length: int, payload, now: float):
        """Verbs target: the server's heartbeat write lands here."""
        if not isinstance(payload, Heartbeat):
            raise TypeError(f"mailbox got {type(payload).__name__}")
        self.deliver(payload)

    def deliver(self, heartbeat: Heartbeat) -> None:
        self.value = heartbeat.utilization
        self.seq = heartbeat.seq
        self.updates += 1
        if heartbeat.mut_seq is not None:
            self.mut_hint = heartbeat.mut_seq
            for sink in self._hint_sinks:
                sink(heartbeat.mut_seq)

    def read_and_clear(self) -> float:
        """Algorithm 1 lines 7-10: read ``u_serv`` then memset it to 0."""
        value = self.value
        self.value = 0.0
        return value

    def consume_fresh(self, last_seq: int) -> Optional[Tuple[int, float]]:
        """Consume the heartbeat iff one arrived since ``last_seq``.

        Returns ``(seq, utilization)`` for a fresh heartbeat, or ``None``
        when the mailbox is empty / unchanged — the unambiguous form of
        the paper's "missing heartbeat" signal (a genuine 0.0-utilization
        heartbeat is *fresh*, not missing).

        A sequence *regression* (``seq`` below ``last_seq`` on a mailbox
        that has received at least one beat) means the server restarted
        and its counter reset; the beat is consumed as fresh so the
        client re-synchronizes instead of reading every post-restart
        beat as missing until the counter catches up.
        """
        if self.updates == 0 or self.seq == last_seq:
            return None
        seq = self.seq
        value = self.value
        self.value = 0.0
        return seq, value


class HeartbeatService:
    """The server-side module broadcasting utilization to clients."""

    def __init__(
        self,
        sim: Simulator,
        cpu_window_utilization,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        mut_seq_fn: Optional[Callable[[], int]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.sim = sim
        self.interval = interval
        self._sample = cpu_window_utilization
        #: When set, every beat piggybacks this sampler's value (the
        #: tree's mutation high-water mark) as a client-cache
        #: invalidation hint; None keeps the legacy wire format.
        self._mut_seq_fn = mut_seq_fn
        #: (response_ring, send_fn) per connection; send_fn posts the
        #: actual RDMA Write of a heartbeat into that client's ring.
        self._subscribers: List = []
        self._seq = 0
        self.beats_sent = Counter("heartbeat.beats_sent")
        self.beats_dropped = Counter("heartbeat.beats_dropped")
        self.beats_suppressed = Counter("heartbeat.beats_suppressed")
        self.last_utilization = 0.0
        self._proc = None
        #: Optional fault injector (see repro.faults); when set, beats
        #: inside a HeartbeatBlackout window are silently skipped.
        self.fault_injector = None

    def subscribe(self, response_ring, send_fn) -> None:
        self._subscribers.append((response_ring, send_fn))

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.sim.process(self._run(), name="heartbeat")

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "heartbeat") -> None:
        """Adopt the service counters into ``registry``."""
        registry.adopt(f"{prefix}.beats_sent", self.beats_sent)
        registry.adopt(f"{prefix}.beats_dropped", self.beats_dropped)
        registry.adopt(f"{prefix}.beats_suppressed", self.beats_suppressed)
        registry.expose(f"{prefix}.last_utilization",
                        lambda: self.last_utilization)
        registry.expose(f"{prefix}.seq", lambda: self._seq)

    def _run(self) -> Generator:
        while True:
            yield self.sim.timeout(self.interval)
            if (self.fault_injector is not None
                    and self.fault_injector.heartbeat_suppressed()):
                # Blackout: this tick sends nothing (and, unlike the
                # ring-full drop below, not even samples).  The sequence
                # number does not advance, so clients read the silence as
                # "missing heartbeat" — exactly Algorithm 1's signal.
                self.beats_suppressed += 1
                continue
            utilization = self._sample()
            self.last_utilization = utilization
            self._seq += 1
            mut_seq = (self._mut_seq_fn()
                       if self._mut_seq_fn is not None else None)
            heartbeat = Heartbeat(utilization=utilization, seq=self._seq,
                                  mut_seq=mut_seq)
            for ring, send_fn in self._subscribers:
                if ring.try_reserve(heartbeat):
                    send_fn(heartbeat)
                    self.beats_sent += 1
                else:
                    self.beats_dropped += 1
