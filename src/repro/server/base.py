"""The R-tree server: tree storage, registered memory, request execution.

Owns everything scheme-independent:

* the R\\*-tree, bulk-loaded into chunk-allocated registered memory and
  registered with the NIC **once** (the paper registers the whole tree
  buffer up front to avoid per-access registration cost, §III-B);
* the chunk directory clients use for one-sided reads, plus a small meta
  region exposing the current root chunk id;
* lock-managed, CPU-charged execution of search/insert/delete requests on
  behalf of server threads;
* the write tracker that opens torn-read windows for the versioning model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Sequence, Tuple

from ..hw.host import Host
from ..hw.memory import ChunkAllocator
from ..rtree.bulk import bulk_load
from ..rtree.geometry import Rect
from ..rtree.locks import TreeLockManager
from ..rtree.node import DEFAULT_MAX_ENTRIES
from ..rtree.serialize import (
    NodeView,
    chunk_size,
    garbage_chunk,
    pack_node,
    pack_node_torn,
)
from ..rtree.versioning import SnapshotReader, WriteTracker
from ..sim.kernel import Simulator
from .costs import DEFAULT_COSTS, CostModel

#: Meta region layout: root chunk id (u64) + tree height (u32) + the
#: tree-wide mutation high-water mark (u32, wrapping) in the former pad
#: word — same 16-byte read as before, so validation stays one tiny RTT.
META_REGION_SIZE = 64

#: Chunks are padded to a fixed 4 KB footprint (the paper sizes chunks for
#: full 64-entry nodes; clients always read whole chunks since they cannot
#: know a node's fill level).
OFFLOAD_CHUNK_BYTES = 4096

#: Recent read rects kept per server for load-aware split planning; big
#: enough to smooth one rebalance interval's traffic, small enough that
#: a stale sample ages out within a few intervals.
RECENT_QUERY_WINDOW = 256


@dataclass(frozen=True)
class OffloadDescriptor:
    """Everything a client needs to traverse the tree one-sidedly."""

    tree_rkey: int
    tree_base: int
    chunk_bytes: int
    meta_rkey: int
    meta_base: int
    max_entries: int


@dataclass(frozen=True)
class TreeMeta:
    """Contents of the meta chunk (read via a single tiny RDMA Read).

    ``mut_seq`` is the tree-wide mutation high-water mark
    (:attr:`~repro.rtree.rstar.RStarTree.mut_hwm`) packed into the
    formerly padded word of the 16-byte meta read; -1 only for legacy
    senders that predate the field (the client cache then stays cold).
    """

    root_chunk: int
    height: int
    mut_seq: int = -1


class TreeChunkTarget:
    """RDMA-Read target covering the registered tree region."""

    def __init__(self, allocator: ChunkAllocator, reader: SnapshotReader):
        self._allocator = allocator
        self._reader = reader

    def rdma_read(self, address: int, length: int, now: float) -> NodeView:
        chunk_id = self._allocator.chunk_of(address)
        return self._reader.read_chunk(chunk_id, now)

    def rdma_write(self, address: int, length: int, payload, now: float):
        raise PermissionError(
            "clients never RDMA-Write the tree region (writes go through "
            "the server, §III-B)"
        )


class ByteTreeChunkTarget:
    """Full-fidelity variant: reads return real packed chunk *bytes*.

    A read that overlaps a server mutation returns an image whose
    per-cache-line version numbers genuinely disagree (half old, half
    new); a read of a freed chunk returns recycled-memory garbage.  The
    client must run the actual FaRM validation on the bytes — nothing is
    signalled out of band.  Used to verify that the chunk codec carries
    everything the offloaded traversal needs.

    Packed images are cached per chunk, stamped with the node identity
    and its ``(version, mut_seq)`` pair, so repeated quiescent reads of
    the same node return the same bytes without re-packing.  ``version``
    alone cannot key the cache: the tree mutates *before* the simulated
    write window closes (which is when ``version`` bumps), so ``mut_seq``
    — bumped at the mutation itself — covers that gap.  Keeping the node
    object in the stamp guards against a freed chunk id being recycled
    for a new node whose counters happen to collide.  Torn and garbage
    reads bypass the cache entirely.
    """

    def __init__(self, server: "RTreeServer"):
        self._server = server
        self.reads = 0
        self.torn_reads = 0
        self.cached_reads = 0
        self._cache: Dict[int, Tuple[object, int, int, bytes]] = {}
        self._garbage: Optional[bytes] = None

    def rdma_read(self, address: int, length: int, now: float) -> bytes:
        chunk_id = self._server.allocator.chunk_of(address)
        node = self._server.tree.nodes.get(chunk_id)
        self.reads += 1
        max_entries = self._server.max_entries
        if node is None:
            self.torn_reads += 1
            # Recycled-memory garbage is deterministic per chunk size.
            garbage = self._garbage
            if garbage is None:
                garbage = self._garbage = garbage_chunk(max_entries)
            return garbage
        if node.active_writers > 0:
            self.torn_reads += 1
            # Mid-write image: version numbers straddle the update.
            return pack_node_torn(node, max_entries)
        cached = self._cache.get(chunk_id)
        if (
            cached is not None
            and cached[0] is node
            and cached[1] == node.version
            and cached[2] == node.mut_seq
        ):
            self.cached_reads += 1
            return cached[3]
        data = pack_node(node, max_entries)
        self._cache[chunk_id] = (node, node.version, node.mut_seq, data)
        return data

    def rdma_write(self, address: int, length: int, payload, now: float):
        raise PermissionError(
            "clients never RDMA-Write the tree region (writes go through "
            "the server, §III-B)"
        )


class MetaTarget:
    """RDMA-Read target for the root pointer."""

    def __init__(self, server: "RTreeServer"):
        self._server = server

    def rdma_read(self, address: int, length: int, now: float) -> TreeMeta:
        tree = self._server.tree
        return TreeMeta(root_chunk=tree.root.chunk_id, height=tree.height,
                        mut_seq=tree.mut_hwm)

    def rdma_write(self, address: int, length: int, payload, now: float):
        raise PermissionError("the meta region is read-only for clients")


class RTreeServer:
    """Scheme-independent server state and request execution."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        items: Sequence[Tuple[Rect, int]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        costs: CostModel = DEFAULT_COSTS,
        byte_mode: bool = False,
    ):
        self.sim = sim
        self.host = host
        self.costs = costs
        self.max_entries = max_entries
        self.byte_mode = byte_mode

        # Register one region big enough for the whole tree plus growth,
        # exactly once (paper §III-B).
        self.chunk_bytes = max(OFFLOAD_CHUNK_BYTES, chunk_size(max_entries))
        node_estimate = max(64, 2 * len(items) // max(4, max_entries // 4))
        region_chunks = node_estimate + 4096
        self.tree_region = host.memory.register(
            region_chunks * self.chunk_bytes, name="rtree"
        )
        self.allocator = ChunkAllocator(self.tree_region, self.chunk_bytes)
        self.tree = bulk_load(
            items,
            max_entries=max_entries,
            alloc_chunk=self.allocator.alloc,
            free_chunk=self.allocator.free,
        )
        self.reader = SnapshotReader(self.tree.nodes)
        self.locks = TreeLockManager(sim)
        self.write_tracker = WriteTracker(sim)
        if byte_mode:
            self.byte_target = ByteTreeChunkTarget(self)
            host.memory.bind(self.tree_region.rkey, self.byte_target)
        else:
            self.byte_target = None
            host.memory.bind(
                self.tree_region.rkey,
                TreeChunkTarget(self.allocator, self.reader),
            )
        self.meta_region = host.memory.register(META_REGION_SIZE, name="meta")
        host.memory.bind(self.meta_region.rkey, MetaTarget(self))

        #: CPU-time inflation from busy-poll interference; set to > 1 by the
        #: polling fast-messaging server when connections oversubscribe the
        #: cores (see SchedulerModel.service_inflation).
        self.service_inflation = 1.0

        # Request accounting.
        self.searches_served = 0
        self.inserts_served = 0
        self.deletes_served = 0
        self.updates_served = 0
        #: Bounded ring of recent read rects (search/count/nearest), the
        #: load sample the rebalance controller plans splits from.  Pure
        #: observability: appending charges no CPU and draws no RNG.
        self.recent_queries = deque(maxlen=RECENT_QUERY_WINDOW)

    # -- client bootstrap ----------------------------------------------------

    def offload_descriptor(self) -> OffloadDescriptor:
        """The connection-setup payload sent to offloading clients."""
        return OffloadDescriptor(
            tree_rkey=self.tree_region.rkey,
            tree_base=self.tree_region.base,
            chunk_bytes=self.chunk_bytes,
            meta_rkey=self.meta_region.rkey,
            meta_base=self.meta_region.base,
            max_entries=self.max_entries,
        )

    def chunk_address(self, chunk_id: int) -> int:
        return self.allocator.address_of(chunk_id)

    # -- request execution (CPU-charged, lock-guarded) --------------------------

    def execute_search(self, rect: Rect) -> Generator:
        """Run one search on a server thread; returns [(rect, id), ...]."""
        result = self.tree.search(rect)
        cost = self.costs.search_cost(result) * self.service_inflation

        def body():
            yield from self.host.cpu.execute(cost)

        yield from self.locks.read_guard(result.visited_chunks, body())
        self.searches_served += 1
        self.recent_queries.append(rect)
        return result.matches

    def execute_nearest(self, x: float, y: float, k: int) -> Generator:
        """Run one kNN query on a server thread; matches nearest-first."""
        result = self.tree.nearest(x, y, k)
        cost = self.costs.search_cost(result) * self.service_inflation

        def body():
            yield from self.host.cpu.execute(cost)

        yield from self.locks.read_guard(result.visited_chunks, body())
        self.searches_served += 1
        self.recent_queries.append(Rect(x, y, x, y))
        return result.matches

    def execute_count(self, rect: Rect) -> Generator:
        """Run one aggregate-only search; returns the intersection count.

        Charged like a search minus the per-result copy cost (nothing is
        materialized into the response)."""
        result = self.tree.search(rect)
        cost = (
            self.costs.request_parse
            + result.nodes_visited * self.costs.node_visit
        ) * self.service_inflation

        def body():
            yield from self.host.cpu.execute(cost)

        yield from self.locks.read_guard(result.visited_chunks, body())
        self.searches_served += 1
        self.recent_queries.append(rect)
        return result.count

    def execute_insert(self, rect: Rect, data_id: int) -> Generator:
        """Run one insert on a server thread; returns True."""
        result = self.tree.insert(rect, data_id)
        cost = self.costs.mutation_cost(result) * self.service_inflation
        chunk_ids = [n.chunk_id for n in result.mutated_nodes]

        yield from self.locks.write_guard(
            chunk_ids, self._mutation_body(cost, result.mutated_nodes)
        )
        self.inserts_served += 1
        return True

    def _mutation_body(self, cost: float, mutated_nodes) -> Generator:
        """Charge the mutation's CPU; only the trailing store burst opens
        the torn-read window (traversal is reads and cannot tear anything).
        """
        window = min(cost, self.costs.write_window(len(mutated_nodes)))
        yield from self.host.cpu.execute(cost - window)
        yield from self.write_tracker.write_window(
            mutated_nodes, self.host.cpu.execute(window)
        )

    def execute_update(self, old_rect: Rect, new_rect: Rect,
                       data_id: int) -> Generator:
        """Atomically relocate one rectangle (delete + insert under one
        lock scope); returns False when the old entry was not found."""
        delete_result = self.tree.delete(old_rect, data_id)
        if not delete_result.ok:
            # Nothing changed; still charge the failed lookup.
            cost = (self.costs.request_parse
                    + delete_result.nodes_visited * self.costs.node_visit
                    ) * self.service_inflation
            yield from self.host.cpu.execute(cost)
            return False
        insert_result = self.tree.insert(new_rect, data_id)
        mutated = list(delete_result.mutated_nodes)
        for node in insert_result.mutated_nodes:
            if node not in mutated:
                mutated.append(node)
        cost = (
            self.costs.mutation_cost(delete_result)
            + self.costs.mutation_cost(insert_result)
        ) * self.service_inflation
        chunk_ids = [n.chunk_id for n in mutated]
        yield from self.locks.write_guard(
            chunk_ids, self._mutation_body(cost, mutated)
        )
        self.updates_served += 1
        return True

    def execute_delete(self, rect: Rect, data_id: int) -> Generator:
        """Run one delete on a server thread; returns whether it existed."""
        result = self.tree.delete(rect, data_id)
        cost = self.costs.mutation_cost(result) * self.service_inflation
        chunk_ids = [n.chunk_id for n in result.mutated_nodes]

        yield from self.locks.write_guard(
            chunk_ids, self._mutation_body(cost, result.mutated_nodes)
        )
        self.deletes_served += 1
        return result.ok

    # -- generic request handling (used by both transports) -------------------

    def handle_request(self, request) -> Generator:
        """Execute one wire request; returns the response segments.

        This is the transport-agnostic entry point: the fast-messaging
        workers and the TCP workers both delegate here, so any index
        service exposing ``handle_request`` (B+tree, cuckoo hash, ...)
        plugs into the same communication machinery — the framework
        claim of the paper's §VI.
        """
        # Imported here to avoid a cycle (msg only depends on rtree).
        from ..msg.codec import (
            CountRequest,
            DeleteRequest,
            InsertRequest,
            NearestRequest,
            ResponseSegment,
            SearchRequest,
            segment_results,
        )

        if isinstance(request, SearchRequest):
            matches = yield from self.execute_search(request.rect)
            return segment_results(request.req_id, matches)
        if isinstance(request, NearestRequest):
            matches = yield from self.execute_nearest(
                request.x, request.y, request.k
            )
            return segment_results(request.req_id, matches)
        if isinstance(request, CountRequest):
            count = yield from self.execute_count(request.rect)
            return [ResponseSegment(request.req_id, (), last=True,
                                    count=count)]
        if isinstance(request, InsertRequest):
            ok = yield from self.execute_insert(request.rect,
                                                request.data_id)
            return [ResponseSegment(request.req_id, (), last=True, ok=ok)]
        if isinstance(request, DeleteRequest):
            ok = yield from self.execute_delete(request.rect,
                                                request.data_id)
            return [ResponseSegment(request.req_id, (), last=True, ok=ok)]
        from ..msg.codec import UpdateRequest
        if isinstance(request, UpdateRequest):
            ok = yield from self.execute_update(
                request.old_rect, request.new_rect, request.data_id
            )
            return [ResponseSegment(request.req_id, (), last=True, ok=ok)]
        raise TypeError(f"server got unexpected message {request!r}")

    # -- reporting ------------------------------------------------------------

    @property
    def requests_served(self) -> int:
        return self.searches_served + self.inserts_served + self.deletes_served

    def cpu_utilization(self) -> float:
        return self.host.cpu.utilization()
