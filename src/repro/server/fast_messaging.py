"""Fast messaging: RDMA-Write request/response through ring buffers.

This is the paper's first design (§III-A) plus the event-based enhancement
(§IV-B):

* the client RDMA-Writes a request message into the server's ring buffer;
* a per-connection server thread picks it up —
  - **polling mode** (the FaRM-style baseline): the thread busy-polls the
    ring tail; with more threads than cores the OS scheduler delays the
    poll that would notice the message (the quadratic latency of Fig 7a);
  - **event mode** (Catfish): the client uses RDMA Write *with Immediate
    Data*, the NIC posts a work completion, and the thread sleeps on a
    completion channel until woken (Fig 6b);
* the thread executes the R-tree operation and RDMA-Writes the response
  segments (CONT/END) back into the client's ring buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..hw.host import Host
from ..msg.codec import message_size
from ..msg.ringbuffer import DEFAULT_RING_CAPACITY, RingBuffer
from ..net.fabric import Network
from ..obs.registry import Counter, MetricsRegistry
from ..sim.kernel import Event, Interrupt, Simulator
from ..transport.rdma import CompletionChannel, QpEndpoint, connect
from .base import RTreeServer
from .heartbeat import HeartbeatMailbox

POLLING = "polling"
EVENT = "event"


@dataclass
class FmConnection:
    """Everything one client<->server fast-messaging pair shares."""

    conn_id: int
    client_host: Host
    #: Request ring: lives in server memory, written by the client.
    request_ring: RingBuffer = None
    request_rkey: int = 0
    request_addr: int = 0
    #: Response ring: lives in client memory, written by the server.
    response_ring: RingBuffer = None
    response_rkey: int = 0
    response_addr: int = 0
    #: Heartbeat mailbox (``u_serv``) in client memory.
    mailbox: HeartbeatMailbox = field(default_factory=HeartbeatMailbox)
    client_end: QpEndpoint = None
    server_end: QpEndpoint = None
    server_channel: Optional[CompletionChannel] = None
    use_imm: bool = False
    #: The per-connection server thread (set by ``open_connection``).
    worker_proc: object = None
    #: Fail-stop crash state (see ``FastMessagingServer.crash_worker``).
    worker_down: bool = False
    worker_restart: Optional[Event] = None
    #: True while the worker is executing a request (crash delivery is
    #: deferred to the next request boundary when set).
    worker_busy: bool = False

    # -- client-side send / server-side send helpers ------------------------

    def client_post_request(self, request):
        """Post the RDMA Write delivering ``request`` to the server ring."""
        return self.client_end.post_write(
            self.request_rkey,
            self.request_addr,
            request,
            message_size(request),
            imm=self.conn_id if self.use_imm else None,
        )

    def server_post_response(self, segment):
        """Post the RDMA Write delivering ``segment`` to the client ring."""
        return self.server_end.post_write(
            self.response_rkey,
            self.response_addr,
            segment,
            message_size(segment),
        )


class FastMessagingServer:
    """Per-connection server threads over ring buffers."""

    def __init__(
        self,
        sim: Simulator,
        server: RTreeServer,
        network: Network,
        mode: str = EVENT,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        max_queue_depth: Optional[int] = None,
    ):
        if mode not in (POLLING, EVENT):
            raise ValueError(f"unknown notification mode {mode!r}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.sim = sim
        self.server = server
        self.network = network
        self.mode = mode
        self.ring_capacity = ring_capacity
        #: Overload guard: a consumed request is shed (dropped, counted)
        #: when this many requests are still queued behind it.  None
        #: disables shedding (the seed behaviour).  Clients recover the
        #: shed request via their retry policy.
        self.max_queue_depth = max_queue_depth
        self.connections: List[FmConnection] = []
        self.requests_handled = Counter("server.requests_handled")
        self.requests_shed = Counter("server.requests_shed")
        self.workers_crashed = Counter("server.workers_crashed")
        self.workers_restarted = Counter("server.workers_restarted")

    @property
    def n_connections(self) -> int:
        return len(self.connections)

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "server") -> None:
        """Adopt server-side fast-messaging metrics into ``registry``.

        Ring and completion-channel numbers are pull gauges aggregated
        over every open connection, so late-opened connections are
        included automatically.
        """
        registry.adopt(f"{prefix}.requests_handled", self.requests_handled)
        registry.adopt(f"{prefix}.requests_shed", self.requests_shed)
        registry.adopt(f"{prefix}.workers_crashed", self.workers_crashed)
        registry.adopt(f"{prefix}.workers_restarted", self.workers_restarted)
        registry.expose(f"{prefix}.connections", lambda: self.n_connections)
        registry.expose(
            f"{prefix}.workers_down",
            lambda: sum(1 for c in self.connections if c.worker_down),
        )
        conns = self.connections
        registry.expose(
            f"{prefix}.request_ring_bytes",
            lambda: sum(c.request_ring.bytes_sent for c in conns),
        )
        registry.expose(
            f"{prefix}.response_ring_bytes",
            lambda: sum(c.response_ring.bytes_sent for c in conns),
        )
        registry.expose(
            f"{prefix}.request_ring_high_watermark",
            lambda: max((c.request_ring.high_watermark for c in conns),
                        default=0),
        )
        registry.expose(
            f"{prefix}.response_ring_high_watermark",
            lambda: max((c.response_ring.high_watermark for c in conns),
                        default=0),
        )
        registry.expose(
            f"{prefix}.channel_wakeups",
            lambda: sum(c.server_channel.wakeups for c in conns
                        if c.server_channel is not None),
        )

    def open_connection(self, client_host: Host) -> FmConnection:
        """Bootstrap one client: rings, registered regions, QP, worker."""
        sim = self.sim
        server_host = self.server.host
        conn_id = len(self.connections)
        conn = FmConnection(conn_id=conn_id, client_host=client_host,
                            use_imm=(self.mode == EVENT))

        conn.request_ring = RingBuffer(
            sim, self.ring_capacity, name=f"req-ring-{conn_id}"
        )
        req_region = server_host.memory.register(
            self.ring_capacity, name=f"req-ring-{conn_id}"
        )
        server_host.memory.bind(req_region.rkey, conn.request_ring)
        conn.request_rkey = req_region.rkey
        conn.request_addr = req_region.base

        conn.response_ring = RingBuffer(
            sim, self.ring_capacity, name=f"resp-ring-{conn_id}"
        )
        resp_region = client_host.memory.register(
            self.ring_capacity, name=f"resp-ring-{conn_id}"
        )
        client_host.memory.bind(resp_region.rkey, conn.response_ring)
        conn.response_rkey = resp_region.rkey
        conn.response_addr = resp_region.base

        mailbox_region = client_host.memory.register(64, name=f"hb-{conn_id}")
        client_host.memory.bind(mailbox_region.rkey, conn.mailbox)

        conn.client_end, conn.server_end = connect(
            sim, self.network, client_host, server_host,
            name=f"fm-{conn_id}",
        )
        if self.mode == EVENT:
            conn.server_channel = CompletionChannel(
                sim, name=f"chan-{conn_id}"
            )
            conn.server_end.cq.attach_channel(conn.server_channel)

        self.connections.append(conn)
        if self.mode == POLLING:
            # Every connection adds a busy-polling thread; useful work on
            # oversubscribed cores slows down accordingly.
            self.server.service_inflation = (
                self.server.host.scheduler.service_inflation(
                    self.n_connections
                )
            )
        conn.worker_proc = sim.process(
            self._worker(conn), name=f"fm-worker-{conn_id}"
        )
        return conn

    # -- fail-stop worker crashes (see repro.faults) -------------------------

    def crash_worker(self, conn: FmConnection) -> None:
        """Kill ``conn``'s worker thread (fail-stop) until restarted.

        Delivery is at a request boundary: a worker parked at its idle
        wait is interrupted immediately; one mid-request finishes the
        request in flight first (it holds tree locks and a core slot the
        simulation has no OS to reclaim), then parks.  Requests written
        to the ring while down simply queue; the restart drains them.
        """
        if conn.worker_down:
            return
        conn.worker_down = True
        conn.worker_restart = self.sim.event()
        self.workers_crashed += 1
        # Only the event-mode idle wait is interrupted: a polling worker
        # parked on consume() is left to complete the consume — the
        # request it picks up while down is then shed *with accounting*
        # (interrupting would silently lose the in-flight consume).  A
        # worker that has not run its first step yet needs no interrupt:
        # it reads ``worker_down`` before its first wait.
        if (self.mode == EVENT and not conn.worker_busy
                and conn.worker_proc is not None
                and conn.worker_proc.is_alive
                and conn.worker_proc.has_started):
            conn.worker_proc.interrupt("worker-crash")

    def restart_worker(self, conn: FmConnection) -> None:
        """Bring a crashed worker back; it drains the backlog at once."""
        if not conn.worker_down:
            return
        conn.worker_down = False
        self.workers_restarted += 1
        restart, conn.worker_restart = conn.worker_restart, None
        restart.succeed()

    # -- the server thread ------------------------------------------------------

    def _shed(self, conn: FmConnection) -> bool:
        """Overload guard: True when the consumed request must be dropped.

        Measured *after* consumption: with more than ``max_queue_depth``
        requests still waiting behind this one, the backlog has outrun
        the deadline any client would still be waiting on — executing it
        would waste server time on an answer nobody accepts.
        """
        cap = self.max_queue_depth
        if cap is not None and conn.request_ring.pending_messages >= cap:
            self.requests_shed += 1
            return True
        return False

    def _worker(self, conn: FmConnection) -> Generator:
        scheduler = self.server.host.scheduler
        if self.mode == EVENT:
            while True:
                try:
                    if conn.worker_down:
                        yield conn.worker_restart
                        # Fall through to the drain loop: requests piled
                        # up while the worker was down.  The crash also
                        # abandoned any in-flight channel wait, which may
                        # swallow one notification — the unconditional
                        # drain compensates.
                    else:
                        yield conn.server_channel.wait()
                        yield self.sim.timeout(
                            scheduler.event_wakeup_delay()
                        )
                    # Completions coalesce: while this thread slept (or
                    # was busy handling a request), more writes may have
                    # landed in the ring than notifications will wake us
                    # for.  Drain the ring fully on every wakeup so no
                    # request waits for an unrelated later wakeup.
                    while not conn.worker_down:
                        found, request = conn.request_ring.try_consume()
                        if not found:
                            break
                        if self._shed(conn):
                            continue
                        conn.worker_busy = True
                        try:
                            yield from self._handle(conn, request)
                        finally:
                            conn.worker_busy = False
                        self.requests_handled += 1
                except Interrupt:
                    continue  # crash delivered at the idle wait
        else:
            while True:
                try:
                    if conn.worker_down:
                        yield conn.worker_restart
                        continue
                    request = yield conn.request_ring.consume()
                    # The message is in the ring, but the polling thread
                    # must be scheduled onto a core to notice it.
                    yield self.sim.timeout(
                        scheduler.polling_wakeup_delay(self.n_connections)
                    )
                    if conn.worker_down:
                        # Crashed between consume and dispatch: the
                        # request dies with the thread (fail-stop).
                        self.requests_shed += 1
                        continue
                    if self._shed(conn):
                        continue
                    conn.worker_busy = True
                    try:
                        yield from self._handle(conn, request)
                    finally:
                        conn.worker_busy = False
                    self.requests_handled += 1
                except Interrupt:
                    continue

    def _handle(self, conn: FmConnection, request) -> Generator:
        segments = yield from self.server.handle_request(request)
        yield from self.server.host.cpu.execute(
            self.server.costs.response_cost(len(segments))
        )
        for segment in segments:
            yield from conn.response_ring.reserve(segment)
            yield conn.server_post_response(segment)
