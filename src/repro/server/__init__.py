"""Server-side components: tree server, schemes, heartbeats, costs."""

from .base import (
    MetaTarget,
    OffloadDescriptor,
    RTreeServer,
    TreeChunkTarget,
    TreeMeta,
)
from .costs import DEFAULT_COSTS, CostModel
from .fast_messaging import (
    EVENT,
    POLLING,
    FastMessagingServer,
    FmConnection,
)
from .heartbeat import (
    DEFAULT_HEARTBEAT_INTERVAL,
    HeartbeatMailbox,
    HeartbeatService,
)
from .tcp_server import TcpRTreeServer

__all__ = [
    "MetaTarget",
    "OffloadDescriptor",
    "RTreeServer",
    "TreeChunkTarget",
    "TreeMeta",
    "DEFAULT_COSTS",
    "CostModel",
    "EVENT",
    "POLLING",
    "FastMessagingServer",
    "FmConnection",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "HeartbeatMailbox",
    "HeartbeatService",
    "TcpRTreeServer",
]
