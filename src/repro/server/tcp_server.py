"""TCP/IP R-tree server — the paper's socket baseline.

One server thread per connection: recv request, execute the R-tree
operation, send the response back.  All the kernel CPU costs of the socket
path are charged by :class:`~repro.transport.tcp.TcpConnection`.
"""

from __future__ import annotations

from typing import Generator, List

from ..msg.codec import ResponseSegment, message_size
from ..sim.kernel import Simulator
from ..transport.tcp import TcpConnection
from .base import RTreeServer


class TcpRTreeServer:
    """Socket request loop on top of :class:`RTreeServer`."""

    def __init__(self, sim: Simulator, server: RTreeServer):
        self.sim = sim
        self.server = server
        self.connections: List[TcpConnection] = []
        self.requests_handled = 0

    def accept(self, conn: TcpConnection) -> None:
        """Register a connection and start its worker thread."""
        self.connections.append(conn)
        self.sim.process(
            self._worker(conn), name=f"tcp-worker-{len(self.connections)}"
        )

    def _worker(self, conn: TcpConnection) -> Generator:
        while True:
            message = yield conn.server_recv()
            yield from self._handle(conn, message.payload)
            self.requests_handled += 1

    def _handle(self, conn: TcpConnection, request) -> Generator:
        segments = yield from self.server.handle_request(request)
        # TCP is a byte stream: coalesce into one send, no CONT/END
        # segmentation needed.
        results = tuple(r for seg in segments for r in seg.results)
        response = ResponseSegment(
            segments[0].req_id, results, last=True, ok=segments[-1].ok,
            count=segments[-1].count,
        )
        yield from conn.server_send(response, message_size(response))
