"""Catfish: adaptive RDMA-enabled R-tree (ICDCS 2019) — full reproduction.

The package reproduces the paper's entire system on a discrete-event
simulation substrate (see DESIGN.md for the substitution rationale):

* :mod:`repro.rtree` — the R\\*-tree with FaRM-style versioning and locks;
* :mod:`repro.sim` / :mod:`repro.hw` / :mod:`repro.net` — the simulation
  substrate: event kernel, CPUs, NICs, links, fabric profiles;
* :mod:`repro.transport` — TCP/IP and RDMA verbs models;
* :mod:`repro.msg` — ring buffers and the message codec;
* :mod:`repro.server` / :mod:`repro.client` — fast messaging, RDMA
  offloading, and the adaptive Catfish client (Algorithm 1);
* :mod:`repro.workloads` — the paper's workload generators, including a
  synthetic rea02;
* :mod:`repro.cluster` — experiment assembly and metrics;
* :mod:`repro.shard` — sharded multi-server deployment: STR cluster
  partitioning, the scatter-gather spatial router with partial-failure
  semantics, and oracle verification (see docs/architecture.md);
* :mod:`repro.obs` — metrics registry, trace spans and JSON export
  (see docs/observability.md);
* :mod:`repro.traffic` — open-loop million-user traffic: aggregated
  clients, connection multiplexing, tail-latency-under-load harness
  (see docs/architecture.md, traffic layer).

Quickstart::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        scheme="catfish", fabric="ib-100g",
        n_clients=16, requests_per_client=200,
        scale="0.00001", dataset_size=20_000,
    ))
    print(result.throughput_kops, result.mean_latency_us)
"""

from .client import (
    AdaptiveParams,
    CatfishSession,
    ClientStats,
    FmSession,
    OffloadEngine,
    OffloadSession,
    Request,
    TcpSession,
)
from .cluster import (
    ExperimentConfig,
    ExperimentRunner,
    RunResult,
    SCHEMES,
    run_experiment,
    scheme_spec,
)
from .obs import (
    MetricsRegistry,
    Tracer,
    load_metrics_json,
    snapshot_document,
    write_metrics_json,
)
from .rtree import RStarTree, Rect, bulk_load
from .shard import (
    PartialResult,
    ScatterGatherRouter,
    ShardMap,
    ShardedExperimentRunner,
    partition_str,
    run_sharded_experiment,
)
from .server import (
    CostModel,
    FastMessagingServer,
    HeartbeatService,
    RTreeServer,
    TcpRTreeServer,
)
from .sim import Simulator
from .traffic import TrafficConfig
from .traffic.harness import (
    TrafficResult,
    TrafficRunner,
    rate_sweep,
    run_traffic,
)
from .workloads import (
    generate_rea02,
    generate_rea02_queries,
    make_workload,
    uniform_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveParams",
    "CatfishSession",
    "ClientStats",
    "FmSession",
    "OffloadEngine",
    "OffloadSession",
    "Request",
    "TcpSession",
    "ExperimentConfig",
    "ExperimentRunner",
    "RunResult",
    "SCHEMES",
    "run_experiment",
    "scheme_spec",
    "MetricsRegistry",
    "Tracer",
    "load_metrics_json",
    "snapshot_document",
    "write_metrics_json",
    "RStarTree",
    "Rect",
    "bulk_load",
    "PartialResult",
    "ScatterGatherRouter",
    "ShardMap",
    "ShardedExperimentRunner",
    "partition_str",
    "run_sharded_experiment",
    "CostModel",
    "FastMessagingServer",
    "HeartbeatService",
    "RTreeServer",
    "TcpRTreeServer",
    "Simulator",
    "TrafficConfig",
    "TrafficResult",
    "TrafficRunner",
    "rate_sweep",
    "run_traffic",
    "generate_rea02",
    "generate_rea02_queries",
    "make_workload",
    "uniform_dataset",
    "__version__",
]
