"""A learning mode selector — the paper's "machine learning" future work.

§V-B: when the server stays overloaded, Algorithm 1's heuristic keeps
bouncing clients back to fast messaging; the paper points at runtime
learning ("a recent study which uses machine learning methods to select
the best configuration at the runtime") as the fix.

:class:`BanditSession` is the minimal such learner: an ε-greedy two-armed
bandit over {fast messaging, RDMA offloading} driven purely by *observed
per-mode request latency* with exponential forgetting.  It needs no
heartbeats at all — the reward signal is the client's own latencies — and
under sustained server saturation it parks on offloading instead of
probing back, exactly the behaviour the paper found Algorithm 1 lacking.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from ..sim.kernel import Simulator
from .base import ClientStats, Request

FAST_MESSAGING = "fm"
OFFLOADING = "offload"


class LatencyEstimate:
    """EWMA of one arm's latency, optimistic until first observed."""

    def __init__(self, alpha: float):
        self.alpha = alpha
        self.value: Optional[float] = None
        self.observations = 0

    def update(self, sample: float) -> None:
        self.observations += 1
        if self.value is None:
            self.value = sample
        else:
            self.value = self.alpha * sample + (1 - self.alpha) * self.value


class BanditSession:
    """ε-greedy latency bandit over the two access methods."""

    def __init__(
        self,
        sim: Simulator,
        fm,
        engine,
        stats: ClientStats,
        epsilon: float = 0.1,
        alpha: float = 0.3,
        rng: Optional[random.Random] = None,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.sim = sim
        self.fm = fm
        self.engine = engine
        self.stats = stats
        self.epsilon = epsilon
        self.rng = rng or random.Random(0)
        self.estimates = {
            FAST_MESSAGING: LatencyEstimate(alpha),
            OFFLOADING: LatencyEstimate(alpha),
        }
        self.explorations = 0
        self.mode_counts = {FAST_MESSAGING: 0, OFFLOADING: 0}

    # -- arm selection ----------------------------------------------------------

    def _choose_mode(self) -> str:
        fm_est = self.estimates[FAST_MESSAGING]
        off_est = self.estimates[OFFLOADING]
        # Try each arm once before exploiting.
        if fm_est.value is None:
            return FAST_MESSAGING
        if off_est.value is None:
            return OFFLOADING
        if self.rng.random() < self.epsilon:
            self.explorations += 1
            return self.rng.choice((FAST_MESSAGING, OFFLOADING))
        return (FAST_MESSAGING if fm_est.value <= off_est.value
                else OFFLOADING)

    def _is_offloadable(self, request) -> bool:
        from .base import READ_OPS
        return request.op in READ_OPS

    def _offload(self, request) -> Generator:
        from .offload_client import dispatch_read
        result = yield from dispatch_read(self.engine, request, self.fm)
        return result

    # -- execution -----------------------------------------------------------------

    def execute(self, request: Request) -> Generator:
        if not self._is_offloadable(request):
            result = yield from self.fm.execute(request)
            return result
        mode = self._choose_mode()
        self.mode_counts[mode] += 1
        start = self.sim.now
        if mode == OFFLOADING:
            result = yield from self._offload(request)
        else:
            result = yield from self.fm.execute(request)
        self.estimates[mode].update(self.sim.now - start)
        return result
