"""A learning mode selector — the paper's "machine learning" future work.

§V-B: when the server stays overloaded, Algorithm 1's heuristic keeps
bouncing clients back to fast messaging; the paper points at runtime
learning ("a recent study which uses machine learning methods to select
the best configuration at the runtime") as the fix.

The ε-greedy learner itself lives in
:class:`~repro.runtime.policy.BanditPolicy`; this module keeps the
historical :class:`BanditSession` facade on top of the generic
:class:`~repro.runtime.session.PolicySession` — which is how the bandit
gained tracer, metrics and circuit-breaker support for free, on the
sharded runner too (it previously lacked all three).
"""

from __future__ import annotations

import random
from typing import Optional

from ..runtime.policy import (
    FAST_MESSAGING,
    OFFLOADING,
    BanditPolicy,
    LatencyEstimate,
)
from ..runtime.session import PolicySession
from ..sim.kernel import Simulator
from .base import ClientStats

__all__ = [
    "FAST_MESSAGING",
    "OFFLOADING",
    "BanditSession",
    "LatencyEstimate",
]

#: Attributes forwarded to the wrapped :class:`BanditPolicy`: the arm
#: state and the introspection counters.
_POLICY_ATTRS = frozenset({
    "epsilon", "rng", "estimates", "explorations", "mode_counts",
    "offload_failovers", "breaker_demotions",
})


class BanditSession(PolicySession):
    """ε-greedy latency bandit over the two access methods."""

    trace_component = "bandit"

    def __init__(
        self,
        sim: Simulator,
        fm,
        engine,
        stats: ClientStats,
        epsilon: float = 0.1,
        alpha: float = 0.3,
        rng: Optional[random.Random] = None,
        tracer=None,
        breaker=None,
    ):
        policy = BanditPolicy(epsilon=epsilon, alpha=alpha, rng=rng)
        super().__init__(sim, fm, engine, stats, policy,
                         tracer=tracer, breaker=breaker)

    def _choose_mode(self) -> str:
        """Expose arm selection for composers (cf. KvBanditSession)."""
        return self.policy._choose_mode()

    # Forward the learner state so pre-refactor call sites (tests read
    # ``estimates``/``mode_counts``, composers drive ``_choose_mode``)
    # keep working.

    def __getattr__(self, name):
        policy = self.__dict__.get("policy")
        if policy is not None and name in _POLICY_ATTRS:
            return getattr(policy, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name, value):
        if name in _POLICY_ATTRS and "policy" in self.__dict__:
            setattr(self.policy, name, value)
        else:
            object.__setattr__(self, name, value)
