"""RDMA offloading: client-side R-tree traversal over one-sided reads.

The paper's second design (§III-B) plus the multi-issue enhancement
(§IV-C):

* the client fetches the root chunk with an RDMA Read, intersects the
  query against the node's MBRs, and recursively fetches every
  intersecting child — the server CPU is never involved;
* **single-issue** (the FaRM-style baseline) fetches one node per RTT;
* **multi-issue** (Catfish) posts RDMA Reads for *all* intersecting
  children at once, pipelining the RTTs on the NICs and the wire, and
  starts checking whichever node returns first;
* every fetched node is validated with the version mechanism; a torn
  snapshot is re-read.  A node whose level does not match its parent's
  expectation reveals a stale root (the root split since the client cached
  it), which triggers a meta refresh and a search restart.

Writes are *never* offloaded: insert/delete always travel the fast
messaging path so the server's lock manager serializes them (§III-B).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..obs.registry import Counter, MetricsRegistry
from ..obs.trace import NULL_SPAN, NULL_TRACER
from ..rtree.geometry import Rect
from ..rtree.serialize import NodeView, view_from_bytes
from ..rtree.versioning import validate_snapshot
from ..server.base import OffloadDescriptor, TreeMeta
from ..server.costs import CostModel
from ..sim.kernel import Simulator
from ..sim.resources import Store
from ..transport.rdma import QpEndpoint
from .base import OP_SEARCH, ClientStats, Request
from .fm_client import FmSession

#: Bytes of a meta read (root pointer + height).
META_READ_SIZE = 16


class OffloadError(Exception):
    """A search could not complete after the configured restarts."""


class OffloadEngine:
    """One-sided tree traversal with retry/restart handling."""

    def __init__(
        self,
        sim: Simulator,
        qp: QpEndpoint,
        descriptor: OffloadDescriptor,
        costs: CostModel,
        stats: ClientStats,
        multi_issue: bool = True,
        max_read_retries: int = 8,
        max_search_restarts: int = 8,
        retry_backoff: float = 1e-6,
        tracer=None,
    ):
        self.sim = sim
        self.qp = qp
        self.desc = descriptor
        self.costs = costs
        self.stats = stats
        self.multi_issue = multi_issue
        self.max_read_retries = max_read_retries
        self.max_search_restarts = max_search_restarts
        self.retry_backoff = retry_backoff
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._cached_root: Optional[int] = None
        self._cached_height: Optional[int] = None
        self._span = NULL_SPAN
        self.meta_reads = Counter("offload.meta_reads")
        self.stale_root_detections = Counter("offload.stale_root_detections")
        self.chunks_fetched = Counter("offload.chunks_fetched")

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "offload") -> None:
        """Adopt the one-sided-traversal counters into ``registry``."""
        registry.adopt(f"{prefix}.meta_reads", self.meta_reads)
        registry.adopt(f"{prefix}.stale_root_detections",
                       self.stale_root_detections)
        registry.adopt(f"{prefix}.chunks_fetched", self.chunks_fetched)

    # -- low-level reads -----------------------------------------------------

    def _chunk_address(self, chunk_id: int) -> int:
        return self.desc.tree_base + chunk_id * self.desc.chunk_bytes

    def _read_meta(self) -> Generator:
        """Fetch the root pointer from the server's meta region."""
        self._span.annotate("meta_read")
        meta: TreeMeta = yield self.qp.post_read(
            self.desc.meta_rkey, self.desc.meta_base, META_READ_SIZE
        )
        self.meta_reads += 1
        return meta

    def _apply_meta(self, meta: TreeMeta) -> bool:
        """Update the root cache; True if the cached root was stale."""
        stale = (
            meta.root_chunk != self._cached_root
            or meta.height != self._cached_height
        )
        if stale and self._cached_root is not None:
            self.stale_root_detections += 1
        self._cached_root = meta.root_chunk
        self._cached_height = meta.height
        return stale

    def _read_valid(
        self, chunk_id: int, expected_level: int
    ) -> Generator:
        """Fetch one chunk, re-reading torn snapshots; None on failure.

        The server serves either :class:`NodeView` snapshots (fast path)
        or raw chunk bytes (full-fidelity byte mode); the byte path runs
        the real decode + per-cache-line version comparison.
        """
        span = self._span
        for attempt in range(self.max_read_retries):
            span.annotate("issue", chunk=chunk_id, level=expected_level,
                          attempt=attempt)
            data = yield self.qp.post_read(
                self.desc.tree_rkey,
                self._chunk_address(chunk_id),
                self.desc.chunk_bytes,
            )
            self.chunks_fetched += 1
            if isinstance(data, (bytes, bytearray)):
                view = view_from_bytes(data, self.desc.max_entries)
                ok = view is not None
            else:
                view = data
                ok = validate_snapshot(view)
            if ok and view.level == expected_level:
                span.annotate("validate", chunk=chunk_id, ok=True)
                return view
            self.stats.torn_retries += 1
            span.annotate("retry", chunk=chunk_id, attempt=attempt,
                          torn=not ok)
            yield self.sim.timeout(self.retry_backoff * (attempt + 1))
        return None

    # -- search ------------------------------------------------------------------

    def search(self, query: Rect) -> Generator:
        """Traverse the tree one-sidedly; returns [(rect, data_id), ...].

        Every search validates the cached root pointer against the meta
        region: a root split would otherwise leave the old root looking
        perfectly valid (same chunk, same level) while missing the new
        sibling's subtree.  Multi-issue overlaps the meta read with the
        optimistic root read, so validation costs no extra round trip;
        single-issue (the baseline) pays it sequentially — one more of the
        "multiple RTTs" the paper attributes to offloading.
        """
        self.stats.offloaded_requests += 1
        span = self._span = self.tracer.span("offload", "search")
        try:
            for _restart in range(self.max_search_restarts):
                if self.multi_issue:
                    matches = yield from self._search_multi_issue(query)
                else:
                    matches = yield from self._search_single_issue(query)
                if matches is not None:
                    self.stats.results_received += len(matches)
                    span.end(restarts=_restart, results=len(matches))
                    return matches
                # Stale root or persistent torn reads: retraverse.
                self.stats.search_restarts += 1
                span.annotate("restart", attempt=_restart + 1)
        finally:
            self._span = NULL_SPAN
        span.end(error="restarts-exhausted")
        raise OffloadError(
            f"search did not complete after {self.max_search_restarts} restarts"
        )

    def count(self, query: Rect) -> Generator:
        """Aggregate-only offloaded search: traverse, count, ship nothing
        beyond the chunks themselves."""
        matches = yield from self.search(query)
        return len(matches)

    def nearest(self, x: float, y: float, k: int = 1) -> Generator:
        """Offloaded kNN: best-first branch-and-bound over one-sided reads.

        Inherently sequential (the next chunk to fetch depends on the
        heap top), so each expansion costs a round trip — kNN is the
        worst case for offloading and the best case for fast messaging,
        which the adaptive client will discover via its latencies.
        """
        import heapq
        import itertools as _it

        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.stats.offloaded_requests += 1
        for _restart in range(self.max_search_restarts):
            meta = yield from self._read_meta()
            self._apply_meta(meta)
            counter = _it.count()
            heap = [(0.0, next(counter), "chunk",
                     (self._cached_root, self._cached_height - 1))]
            matches: List[Tuple[Rect, int]] = []
            failed = False
            while heap and len(matches) < k:
                _dist, _seq, kind, payload = heapq.heappop(heap)
                if kind == "entry":
                    matches.append(payload)
                    continue
                chunk_id, level = payload
                view = yield from self._read_valid(chunk_id, level)
                if view is None:
                    failed = True
                    break
                yield self.sim.timeout(self._check_cost())
                for rect, ref in view.entries:
                    dist = rect.min_dist2_point(x, y)
                    if view.is_leaf:
                        heapq.heappush(heap, (dist, next(counter), "entry",
                                              (rect, ref)))
                    else:
                        heapq.heappush(heap, (dist, next(counter), "chunk",
                                              (ref, level - 1)))
            if not failed:
                self.stats.results_received += len(matches)
                return matches
            self.stats.search_restarts += 1
        raise OffloadError(
            f"nearest() did not complete after {self.max_search_restarts} "
            f"restarts"
        )

    def _check_cost(self) -> float:
        return self.costs.client_node_check

    def _search_single_issue(self, query: Rect) -> Generator:
        """Baseline traversal: one outstanding RDMA Read at a time."""
        meta = yield from self._read_meta()
        self._apply_meta(meta)
        matches: List[Tuple[Rect, int]] = []
        stack = [(self._cached_root, self._cached_height - 1)]
        while stack:
            chunk_id, level = stack.pop()
            view = yield from self._read_valid(chunk_id, level)
            if view is None:
                return None
            yield self.sim.timeout(self._check_cost())
            if view.is_leaf:
                matches.extend(view.intersecting_entries(query))
            else:
                for ref in view.intersecting_refs(query):
                    stack.append((ref, level - 1))
        return matches

    def _search_multi_issue(self, query: Rect) -> Generator:
        """Catfish traversal: fetch all intersecting children at once.

        The meta read flies together with the optimistic root read; if it
        reveals a root change the attempt is abandoned and restarted from
        the fresh root.  On the cold-start path (no cached root yet) the
        bootstrap meta read *is* the validation — issuing a second,
        concurrent meta fetch would pay an extra RTT for a value fetched
        one RTT ago, so it is skipped.
        """
        cold_start = self._cached_root is None
        if cold_start:
            meta = yield from self._read_meta()
            self._apply_meta(meta)

        matches: List[Tuple[Rect, int]] = []
        arrived: Store = Store(self.sim)
        inflight = 0
        failed = False

        def fetch(chunk_id: int, level: int) -> Generator:
            view = yield from self._read_valid(chunk_id, level)
            arrived.put(("node", view))

        def fetch_meta() -> Generator:
            meta = yield from self._read_meta()
            arrived.put(("meta", meta))

        def issue(chunk_id: int, level: int) -> None:
            nonlocal inflight
            inflight += 1
            self.sim.process(fetch(chunk_id, level), name="multi-issue-read")

        if not cold_start:
            inflight += 1
            self.sim.process(fetch_meta(), name="multi-issue-meta")
        issue(self._cached_root, self._cached_height - 1)
        while inflight:
            kind, payload = yield arrived.get()
            inflight -= 1
            if kind == "meta":
                if self._apply_meta(payload):
                    failed = True  # traversal began at a stale root
                continue
            view = payload
            if view is None:
                failed = True
                continue  # drain remaining in-flight reads
            if failed:
                continue
            yield self.sim.timeout(self._check_cost())
            if view.is_leaf:
                matches.extend(view.intersecting_entries(query))
            else:
                for ref in view.intersecting_refs(query):
                    issue(ref, view.level - 1)
        return None if failed else matches


class OffloadSession:
    """The paper's "RDMA offloading" scheme: one-sided reads, ring-buffer
    writes."""

    def __init__(self, engine: OffloadEngine, fm: FmSession,
                 stats: ClientStats):
        self.engine = engine
        self.fm = fm
        self.stats = stats

    def execute(self, request: Request) -> Generator:
        result = yield from dispatch_read(self.engine, request, self.fm)
        return result


def dispatch_read(engine: OffloadEngine, request: Request, fm) -> Generator:
    """Route a request to the right one-sided operation (or to fast
    messaging for writes).  Shared by the offload and adaptive sessions."""
    from .base import OP_COUNT, OP_NEAREST

    if request.op == OP_SEARCH:
        result = yield from engine.search(request.rect)
    elif request.op == OP_COUNT:
        result = yield from engine.count(request.rect)
    elif request.op == OP_NEAREST:
        cx, cy = request.rect.center()
        result = yield from engine.nearest(cx, cy, request.k)
    else:
        result = yield from fm.execute(request)
    return result
