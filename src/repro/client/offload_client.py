"""RDMA offloading: client-side R-tree traversal over one-sided reads.

The paper's second design (§III-B) plus the multi-issue enhancement
(§IV-C):

* the client fetches the root chunk with an RDMA Read, intersects the
  query against the node's MBRs, and recursively fetches every
  intersecting child — the server CPU is never involved;
* **single-issue** (the FaRM-style baseline) fetches one node per RTT;
* **multi-issue** (Catfish) posts RDMA Reads for *all* intersecting
  children at once, pipelining the RTTs on the NICs and the wire, and
  starts checking whichever node returns first;
* every fetched node is validated with the version mechanism; a torn
  snapshot is re-read.  A node whose level does not match its parent's
  expectation reveals a stale root (the root split since the client cached
  it), which triggers a meta refresh and a search restart.

Writes are *never* offloaded: insert/delete always travel the fast
messaging path so the server's lock manager serializes them (§III-B).

An optional client-side :class:`~repro.client.node_cache.NodeCache`
(RDMAbox-style) serves repeated upper-level fetches locally: internal
views are cached under the tree's mutation high-water mark, concurrent
fetches of the same chunk coalesce into one in-flight read
(single-flight), and distinct same-round multi-issue reads are
doorbell-batched through one :meth:`QpEndpoint.post_read_batch`.  Leaf
chunks are always re-read and re-validated — the FaRM version check on
fresh leaf reads is the safety net under concurrent writes.  With no
cache attached (the default) every code path is byte-identical to the
pre-cache engine.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..obs.registry import Counter, MetricsRegistry
from ..obs.trace import NULL_SPAN, NULL_TRACER
from ..rtree import batch as _batch
from ..rtree.geometry import Rect
from ..rtree.serialize import NodeView, view_from_bytes
from ..rtree.versioning import validate_snapshot
from ..server.base import OffloadDescriptor, TreeMeta
from ..server.costs import CostModel
from ..sim.kernel import Simulator
from ..sim.resources import Store
from ..transport.rdma import QpEndpoint
from .base import OP_SEARCH, ClientStats, Request
from .fm_client import FmSession
from .node_cache import NodeCache

#: Bytes of a meta read (root pointer + height + mutation mark).
META_READ_SIZE = 16


class OffloadError(Exception):
    """A search could not complete after the configured restarts."""


class OffloadEngine:
    """One-sided tree traversal with retry/restart handling."""

    def __init__(
        self,
        sim: Simulator,
        qp: QpEndpoint,
        descriptor: OffloadDescriptor,
        costs: CostModel,
        stats: ClientStats,
        multi_issue: bool = True,
        max_read_retries: int = 8,
        max_search_restarts: int = 8,
        retry_backoff: float = 1e-6,
        tracer=None,
        cache: Optional[NodeCache] = None,
    ):
        self.sim = sim
        self.qp = qp
        self.desc = descriptor
        self.costs = costs
        self.stats = stats
        self.multi_issue = multi_issue
        self.max_read_retries = max_read_retries
        self.max_search_restarts = max_search_restarts
        self.retry_backoff = retry_backoff
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._cached_root: Optional[int] = None
        self._cached_height: Optional[int] = None
        self._span = NULL_SPAN
        self.meta_reads = Counter("offload.meta_reads")
        self.stale_root_detections = Counter("offload.stale_root_detections")
        self.chunks_fetched = Counter("offload.chunks_fetched")
        self.cache: Optional[NodeCache] = None
        #: Single-flight table: chunk id -> follower events sharing the
        #: leader's in-flight read.  Only allocated with a cache attached
        #: so the cache-less engine stays byte-identical to the seed.
        self._inflight_reads: Optional[Dict[int, List]] = None
        if cache is not None:
            self.attach_cache(cache)

    def attach_cache(self, cache: NodeCache) -> None:
        """Enable the client-side node cache (and read coalescing)."""
        self.cache = cache
        self._inflight_reads = {}

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "offload") -> None:
        """Adopt the one-sided-traversal counters into ``registry``."""
        registry.adopt(f"{prefix}.meta_reads", self.meta_reads)
        registry.adopt(f"{prefix}.stale_root_detections",
                       self.stale_root_detections)
        registry.adopt(f"{prefix}.chunks_fetched", self.chunks_fetched)
        if self.cache is not None:
            self.cache.register_metrics(registry, prefix="cache")

    # -- low-level reads -----------------------------------------------------

    def _chunk_address(self, chunk_id: int) -> int:
        return self.desc.tree_base + chunk_id * self.desc.chunk_bytes

    def _read_meta(self) -> Generator:
        """Fetch the root pointer from the server's meta region."""
        self._span.annotate("meta_read")
        meta: TreeMeta = yield self.qp.post_read(
            self.desc.meta_rkey, self.desc.meta_base, META_READ_SIZE
        )
        self.meta_reads += 1
        return meta

    def _apply_meta(self, meta: TreeMeta) -> bool:
        """Update the root cache; True if the cached root was stale."""
        stale = (
            meta.root_chunk != self._cached_root
            or meta.height != self._cached_height
        )
        if stale and self._cached_root is not None:
            self.stale_root_detections += 1
        self._cached_root = meta.root_chunk
        self._cached_height = meta.height
        return stale

    def _note_meta_hwm(self, meta: TreeMeta) -> bool:
        """Feed the meta read's mutation mark to the cache; True if it
        advanced (cached views fetched under an older mark were dropped).
        """
        if self.cache is None or meta.mut_seq < 0:
            return False
        return self.cache.note_server_hwm(meta.mut_seq)

    def _post_chunk_read(self, chunk_id: int):
        return self.qp.post_read(
            self.desc.tree_rkey,
            self._chunk_address(chunk_id),
            self.desc.chunk_bytes,
        )

    def _fetch_chunk(self, chunk_id: int) -> Generator:
        """One raw chunk fetch; coalesces with an in-flight read.

        With a cache attached, concurrent fetches of the same chunk
        (multi-issue re-reads, concurrent searches sharing this engine)
        share one RDMA Read via the single-flight table: the leader
        posts, followers wait on it and receive the same raw data.
        """
        inflight = self._inflight_reads
        if inflight is None:
            data = yield self._post_chunk_read(chunk_id)
            self.chunks_fetched += 1
            return data
        waiters = inflight.get(chunk_id)
        if waiters is not None:
            event = self.sim.event()
            waiters.append(event)
            if self.cache is not None:
                self.cache.coalesced_reads += 1
            data = yield event
            return data
        inflight[chunk_id] = []
        try:
            data = yield self._post_chunk_read(chunk_id)
            self.chunks_fetched += 1
        except BaseException as exc:
            for event in inflight.pop(chunk_id):
                event.fail(exc)
            raise
        for event in inflight.pop(chunk_id):
            event.succeed(data)
        return data

    def _await_batched(self, chunk_id: int, read_event) -> Generator:
        """Consume a doorbell-batched read, feeding any followers."""
        inflight = self._inflight_reads
        try:
            data = yield read_event
        except BaseException as exc:
            if inflight is not None:
                for event in inflight.pop(chunk_id, ()):
                    event.fail(exc)
            raise
        if inflight is not None:
            for event in inflight.pop(chunk_id, ()):
                event.succeed(data)
        return data

    def _read_valid(
        self, chunk_id: int, expected_level: int, first_read=None
    ) -> Generator:
        """Fetch one chunk, re-reading torn snapshots; None on failure.

        The server serves either :class:`NodeView` snapshots (fast path)
        or raw chunk bytes (full-fidelity byte mode); the byte path runs
        the real decode + per-cache-line version comparison.

        ``first_read`` optionally supplies an already-posted (doorbell-
        batched) read event to consume as attempt 0; retries always post
        their own reads.
        """
        span = self._span
        cache = self.cache
        for attempt in range(self.max_read_retries):
            span.annotate("issue", chunk=chunk_id, level=expected_level,
                          attempt=attempt)
            # Stamp captured before the fetch: if the high-water mark
            # moves while the read is in flight, the store below is
            # skipped rather than mis-stamping pre-mutation content.
            stamp = cache.server_hwm if cache is not None else None
            if first_read is not None:
                data = yield from self._await_batched(chunk_id, first_read)
                first_read = None
            else:
                data = yield from self._fetch_chunk(chunk_id)
            if isinstance(data, (bytes, bytearray)):
                view = view_from_bytes(data, self.desc.max_entries)
                ok = view is not None
            else:
                view = data
                ok = validate_snapshot(view)
            if ok and view.level == expected_level:
                span.annotate("validate", chunk=chunk_id, ok=True)
                if cache is not None:
                    cache.store(view, stamp=stamp)
                return view
            if ok:
                # Valid image at the wrong level: a recycled chunk or a
                # stale root, not a torn snapshot — keep the diagnosis
                # streams separate.
                self.stats.level_mismatch_retries += 1
            else:
                self.stats.torn_retries += 1
            span.annotate("retry", chunk=chunk_id, attempt=attempt,
                          torn=not ok)
            if attempt < self.max_read_retries - 1:
                # No backoff after the final attempt: the caller is about
                # to restart (or fail) anyway, and the largest backoff of
                # the schedule would be pure added latency.
                yield self.sim.timeout(self.retry_backoff * (attempt + 1))
        return None

    # -- search ------------------------------------------------------------------

    def search(self, query: Rect) -> Generator:
        """Traverse the tree one-sidedly; returns [(rect, data_id), ...].

        Every search validates the cached root pointer against the meta
        region: a root split would otherwise leave the old root looking
        perfectly valid (same chunk, same level) while missing the new
        sibling's subtree.  Multi-issue overlaps the meta read with the
        optimistic root read, so validation costs no extra round trip;
        single-issue (the baseline) pays it sequentially — one more of the
        "multiple RTTs" the paper attributes to offloading.
        """
        self.stats.offloaded_requests += 1
        span = self._span = self.tracer.span("offload", "search")
        ended = False
        error: Optional[str] = None
        try:
            for _restart in range(self.max_search_restarts):
                if self.multi_issue:
                    matches = yield from self._search_multi_issue(query)
                else:
                    matches = yield from self._search_single_issue(query)
                if matches is not None:
                    self.stats.results_received += len(matches)
                    span.end(restarts=_restart, results=len(matches))
                    ended = True
                    return matches
                # Stale root or persistent torn reads: retraverse.
                self.stats.search_restarts += 1
                span.annotate("restart", attempt=_restart + 1)
            error = "restarts-exhausted"
            raise OffloadError(
                f"search did not complete after {self.max_search_restarts} "
                f"restarts"
            )
        except BaseException as exc:
            # An escaping exception (e.g. an injected fault) must still
            # end the span — a leaked span pins its trace ring slot.
            if error is None:
                error = type(exc).__name__
            raise
        finally:
            self._span = NULL_SPAN
            if not ended:
                span.end(error=error if error is not None else "unknown")

    def count(self, query: Rect) -> Generator:
        """Aggregate-only offloaded search: traverse, count, ship nothing
        beyond the chunks themselves."""
        matches = yield from self.search(query)
        return len(matches)

    # -- batched search ------------------------------------------------------

    def search_batch(self, queries: List[Rect]) -> Generator:
        """One shared one-sided traversal for a group of range queries.

        Returns one match list per query, set-identical to running
        :meth:`search` once per query (ordering follows the shared
        frontier: level wave by level wave, nodes in discovery order).
        The amortization is the point: each tree node of interest is
        fetched **once per batch** — one RDMA Read (or one cache hit)
        serves every query that reaches the node — and each wave's
        misses go out pipelined (doorbell-batched when the cache's
        single-flight table is attached).  One meta read validates the
        whole batch; any stale root / torn-read failure restarts the
        whole batch, mirroring :meth:`search`.
        """
        n = len(queries)
        self.stats.offloaded_requests += n
        if n == 0:
            return []
        span = self._span = self.tracer.span("offload", "search_batch")
        ended = False
        error: Optional[str] = None
        try:
            for _restart in range(self.max_search_restarts):
                results = yield from self._batch_attempt(queries)
                if results is not None:
                    total = sum(len(r) for r in results)
                    self.stats.results_received += total
                    span.end(restarts=_restart, queries=n, results=total)
                    ended = True
                    return results
                self.stats.search_restarts += 1
                span.annotate("restart", attempt=_restart + 1)
            error = "restarts-exhausted"
            raise OffloadError(
                f"search_batch did not complete after "
                f"{self.max_search_restarts} restarts"
            )
        except BaseException as exc:
            if error is None:
                error = type(exc).__name__
            raise
        finally:
            self._span = NULL_SPAN
            if not ended:
                span.end(error=error if error is not None else "unknown")

    def _batch_attempt(self, queries: List[Rect]) -> Generator:
        """One batched traversal attempt; None => restart the batch.

        The meta read is sequential (as in the single-issue path), so
        the mutation high-water mark is synchronized before any cache
        hit is served — hits are exact as of batch start, no mid-flight
        stale-abort bookkeeping needed.
        """
        meta = yield from self._read_meta()
        self._apply_meta(meta)
        self._note_meta_hwm(meta)
        qb = _batch.QueryBatch(queries)
        results: List[List[Tuple[Rect, int]]] = [[] for _ in queries]
        frontier = [(self._cached_root, self._cached_height - 1, qb.all_sel)]
        while frontier:
            views = yield from self._fetch_round(
                [(chunk_id, level) for chunk_id, level, _q in frontier]
            )
            if views is None:
                return None
            next_frontier = []
            for (chunk_id, level, qsel), view in zip(frontier, views):
                # One node check serves the whole interest set — the
                # (Q x E) matrix below is a single kernel evaluation.
                yield self.sim.timeout(self._check_cost())
                entries = view.entries
                count = len(entries)
                source = _batch.view_scan_source(view)
                if view.is_leaf:
                    qlist = _batch.QueryBatch.sel_list(qsel)
                    gete = entries.__getitem__
                    for row, ent_idxs in _batch.batch_leaf_hits(
                        source, count, qb, qsel
                    ):
                        results[qlist[row]].extend(map(gete, ent_idxs))
                else:
                    for e_idx, sub in _batch.batch_child_sets(
                        source, count, qb, qsel
                    ):
                        next_frontier.append(
                            (entries[e_idx][1], level - 1, sub)
                        )
            frontier = next_frontier
        return results

    def _fetch_round(self, pairs: List[Tuple[int, int]]) -> Generator:
        """Fetch one frontier wave; list of views, or None on any failure.

        Cache hits are served locally, chunks already in flight join the
        leader single-flight, and the remaining misses are posted
        concurrently — through one doorbell when ≥2 and the single-
        flight table exists (cache attached), else as pipelined
        individual reads (multi-issue) or sequentially (single-issue).
        Chunk ids within a wave are distinct by construction: every tree
        node hangs off exactly one parent entry, and merged interest
        sets mean each parent was expanded once.
        """
        views: List[Optional[NodeView]] = [None] * len(pairs)
        span = self._span
        cache = self.cache
        if not self.multi_issue:
            for i, (chunk_id, level) in enumerate(pairs):
                view: Optional[NodeView] = None
                if cache is not None and level > 0:
                    view = cache.lookup(chunk_id)
                    if view is not None:
                        span.annotate("cache_hit", chunk=chunk_id,
                                      level=level)
                if view is None:
                    view = yield from self._read_valid(chunk_id, level)
                if view is None:
                    return None
                views[i] = view
            return views

        arrived: Store = Store(self.sim)
        inflight = 0

        def fetch(i: int, chunk_id: int, level: int,
                  first_read=None) -> Generator:
            view = yield from self._read_valid(chunk_id, level, first_read)
            arrived.put((i, view))

        inflight_reads = self._inflight_reads
        to_post: List[Tuple[int, int, int]] = []
        for i, (chunk_id, level) in enumerate(pairs):
            view = None
            if cache is not None and level > 0:
                view = cache.lookup(chunk_id)
            if view is not None:
                span.annotate("cache_hit", chunk=chunk_id, level=level)
                views[i] = view
            elif inflight_reads is not None and chunk_id in inflight_reads:
                # Single-flight: _read_valid's fetch joins the leader.
                inflight += 1
                self.sim.process(fetch(i, chunk_id, level),
                                 name="batch-read")
            else:
                to_post.append((i, chunk_id, level))
        if len(to_post) >= 2 and inflight_reads is not None:
            events = self.qp.post_read_batch([
                (self.desc.tree_rkey, self._chunk_address(chunk_id),
                 self.desc.chunk_bytes)
                for _i, chunk_id, _level in to_post
            ])
            for (i, chunk_id, level), event in zip(to_post, events):
                inflight_reads[chunk_id] = []
                self.chunks_fetched += 1
                inflight += 1
                self.sim.process(
                    fetch(i, chunk_id, level, first_read=event),
                    name="batch-read",
                )
        else:
            for i, chunk_id, level in to_post:
                inflight += 1
                self.sim.process(fetch(i, chunk_id, level),
                                 name="batch-read")
        failed = False
        while inflight:
            i, view = yield arrived.get()
            inflight -= 1
            if view is None:
                failed = True
            else:
                views[i] = view
        return None if failed else views

    def nearest(self, x: float, y: float, k: int = 1) -> Generator:
        """Offloaded kNN: best-first branch-and-bound over one-sided reads.

        Inherently sequential (the next chunk to fetch depends on the
        heap top), so each expansion costs a round trip — kNN is the
        worst case for offloading and the best case for fast messaging,
        which the adaptive client will discover via its latencies.
        Traced and counted with full :meth:`search` parity.
        """
        import heapq
        import itertools as _it

        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.stats.offloaded_requests += 1
        span = self._span = self.tracer.span("offload", "nearest")
        ended = False
        error: Optional[str] = None
        try:
            for _restart in range(self.max_search_restarts):
                meta = yield from self._read_meta()
                self._apply_meta(meta)
                self._note_meta_hwm(meta)
                counter = _it.count()
                heap = [(0.0, next(counter), "chunk",
                         (self._cached_root, self._cached_height - 1))]
                matches: List[Tuple[Rect, int]] = []
                failed = False
                while heap and len(matches) < k:
                    _dist, _seq, kind, payload = heapq.heappop(heap)
                    if kind == "entry":
                        matches.append(payload)
                        continue
                    chunk_id, level = payload
                    view: Optional[NodeView] = None
                    if self.cache is not None and level > 0:
                        view = self.cache.lookup(chunk_id)
                        if view is not None:
                            span.annotate("cache_hit", chunk=chunk_id,
                                          level=level)
                    if view is None:
                        view = yield from self._read_valid(chunk_id, level)
                    if view is None:
                        failed = True
                        break
                    yield self.sim.timeout(self._check_cost())
                    dists = _batch.view_min_dist2(view, x, y)
                    for (rect, ref), dist in zip(view.entries, dists):
                        if view.is_leaf:
                            heapq.heappush(heap, (dist, next(counter),
                                                  "entry", (rect, ref)))
                        else:
                            heapq.heappush(heap, (dist, next(counter),
                                                  "chunk", (ref, level - 1)))
                if not failed:
                    self.stats.results_received += len(matches)
                    span.end(restarts=_restart, results=len(matches))
                    ended = True
                    return matches
                self.stats.search_restarts += 1
                span.annotate("restart", attempt=_restart + 1)
            error = "restarts-exhausted"
            raise OffloadError(
                f"nearest() did not complete after "
                f"{self.max_search_restarts} restarts"
            )
        except BaseException as exc:
            if error is None:
                error = type(exc).__name__
            raise
        finally:
            self._span = NULL_SPAN
            if not ended:
                span.end(error=error if error is not None else "unknown")

    def _check_cost(self) -> float:
        return self.costs.client_node_check

    def _search_single_issue(self, query: Rect) -> Generator:
        """Baseline traversal: one outstanding RDMA Read at a time."""
        meta = yield from self._read_meta()
        self._apply_meta(meta)
        self._note_meta_hwm(meta)
        matches: List[Tuple[Rect, int]] = []
        stack = [(self._cached_root, self._cached_height - 1)]
        while stack:
            chunk_id, level = stack.pop()
            view: Optional[NodeView] = None
            if self.cache is not None and level > 0:
                # The sequential meta read above already synchronized the
                # high-water mark, so a hit is exact as of search start.
                view = self.cache.lookup(chunk_id)
            if view is None:
                view = yield from self._read_valid(chunk_id, level)
            if view is None:
                return None
            yield self.sim.timeout(self._check_cost())
            if view.is_leaf:
                matches.extend(view.intersecting_entries(query))
            else:
                for ref in view.intersecting_refs(query):
                    stack.append((ref, level - 1))
        return matches

    def _search_multi_issue(self, query: Rect) -> Generator:
        """Catfish traversal: fetch all intersecting children at once.

        The meta read flies together with the optimistic root read; if it
        reveals a root change the attempt is abandoned and restarted from
        the fresh root.  On the cold-start path (no cached root yet) the
        bootstrap meta read *is* the validation — issuing a second,
        concurrent meta fetch would pay an extra RTT for a value fetched
        one RTT ago, so it is skipped.

        With a cache attached the same meta read also validates every
        cache hit: if it reveals the mutation mark advanced after hits
        were already served (they described a pre-mutation tree), the
        attempt is abandoned exactly like a stale root.  Distinct missing
        chunks of one expansion round are posted through a single
        doorbell (``post_read_batch``).
        """
        cache = self.cache
        cold_start = self._cached_root is None
        if cold_start:
            meta = yield from self._read_meta()
            self._apply_meta(meta)
            self._note_meta_hwm(meta)

        matches: List[Tuple[Rect, int]] = []
        arrived: Store = Store(self.sim)
        inflight = 0
        failed = False
        cache_hits_used = 0

        def fetch(chunk_id: int, level: int, first_read=None) -> Generator:
            view = yield from self._read_valid(chunk_id, level, first_read)
            arrived.put(("node", view))

        def fetch_meta() -> Generator:
            meta = yield from self._read_meta()
            arrived.put(("meta", meta))

        def issue(chunk_id: int, level: int) -> None:
            nonlocal inflight
            inflight += 1
            self.sim.process(fetch(chunk_id, level), name="multi-issue-read")

        def issue_all(pairs: List[Tuple[int, int]]) -> None:
            """Expand one round: cache hits served locally, in-flight
            chunks coalesced, the remaining misses doorbell-batched."""
            nonlocal inflight, cache_hits_used
            inflight_reads = self._inflight_reads
            if cache is None or inflight_reads is None:
                for chunk_id, level in pairs:
                    issue(chunk_id, level)
                return
            to_post: List[Tuple[int, int]] = []
            for chunk_id, level in pairs:
                view = cache.lookup(chunk_id) if level > 0 else None
                if view is not None:
                    cache_hits_used += 1
                    inflight += 1
                    arrived.put(("node", view))
                elif chunk_id in inflight_reads:
                    # Single-flight: _fetch_chunk joins the leader.
                    issue(chunk_id, level)
                else:
                    to_post.append((chunk_id, level))
            if not to_post:
                return
            if len(to_post) == 1:
                issue(*to_post[0])
                return
            events = self.qp.post_read_batch([
                (self.desc.tree_rkey, self._chunk_address(chunk_id),
                 self.desc.chunk_bytes)
                for chunk_id, _level in to_post
            ])
            for (chunk_id, level), event in zip(to_post, events):
                inflight_reads[chunk_id] = []
                self.chunks_fetched += 1
                inflight += 1
                self.sim.process(fetch(chunk_id, level, first_read=event),
                                 name="multi-issue-read")

        if not cold_start:
            inflight += 1
            self.sim.process(fetch_meta(), name="multi-issue-meta")
        issue_all([(self._cached_root, self._cached_height - 1)])
        while inflight:
            kind, payload = yield arrived.get()
            inflight -= 1
            if kind == "meta":
                stale_root = self._apply_meta(payload)
                hwm_advanced = self._note_meta_hwm(payload)
                if stale_root:
                    failed = True  # traversal began at a stale root
                elif hwm_advanced and cache_hits_used:
                    # Hits already served this attempt were stamped under
                    # an older mark than the tree this search observes.
                    failed = True
                continue
            view = payload
            if view is None:
                failed = True
                continue  # drain remaining in-flight reads
            if failed:
                continue
            yield self.sim.timeout(self._check_cost())
            if view.is_leaf:
                matches.extend(view.intersecting_entries(query))
            else:
                issue_all([(ref, view.level - 1)
                           for ref in view.intersecting_refs(query)])
        return None if failed else matches


class OffloadSession:
    """The paper's "RDMA offloading" scheme: one-sided reads, ring-buffer
    writes."""

    def __init__(self, engine: OffloadEngine, fm: FmSession,
                 stats: ClientStats):
        self.engine = engine
        self.fm = fm
        self.stats = stats

    def execute(self, request: Request) -> Generator:
        result = yield from dispatch_read(self.engine, request, self.fm)
        return result


def dispatch_read(engine: OffloadEngine, request: Request, fm) -> Generator:
    """Route a request to the right one-sided operation (or to fast
    messaging for writes).  Shared by the offload and adaptive sessions."""
    from .base import OP_COUNT, OP_NEAREST

    if request.op == OP_SEARCH:
        result = yield from engine.search(request.rect)
    elif request.op == OP_COUNT:
        result = yield from engine.count(request.rect)
    elif request.op == OP_NEAREST:
        cx, cy = request.rect.center()
        result = yield from engine.nearest(cx, cy, request.k)
    else:
        result = yield from fm.execute(request)
    return result
