"""Client-side resilience: request deadlines, retries, circuit breaking.

Catfish's hybrid design gives a client two independent paths to the same
data (fast messaging and one-sided offloading), but the seed reproduction
had no way to *survive* a misbehaving path: a full ring blocked forever, a
lost response stalled the client for good, and an ``OffloadError`` storm
simply propagated.  This module supplies the three mechanisms the fault
model (``repro.faults``) demands:

* :class:`RetryPolicy` — per-request deadline plus jittered
  exponential-backoff retry budget for :class:`~repro.client.fm_client.FmSession`;
* :class:`RequestTimeoutError` — raised when the budget is exhausted;
* :class:`CircuitBreaker` — closed/open/half-open failover state for the
  adaptive client: after repeated offload failures it routes everything
  through fast messaging and periodically probes the offload path for
  recovery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..obs.registry import Counter, MetricsRegistry
from ..sim.kernel import Simulator
from .base import READ_OPS


class RequestTimeoutError(Exception):
    """A request's deadline/retry budget was exhausted without a response."""


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + retry tunables for fast-messaging requests.

    One *attempt* is: reserve ring space (bounded by
    :attr:`reserve_timeout_s`), post the write, then wait up to
    :attr:`deadline_s` for the complete response.  A failed attempt backs
    off ``backoff_base_s * backoff_factor**attempt``, jittered by
    ``+/- backoff_jitter`` relative, before the next try.

    Writes are not retried unless :attr:`retry_writes` is set: a timed-out
    insert may have executed on the server (the response, not the request,
    may be what got delayed), and blindly re-sending would double-apply
    it.  Reads are idempotent, so they always get the full budget.
    """

    deadline_s: float = 2e-3
    max_attempts: int = 4
    backoff_base_s: float = 50e-6
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    retry_writes: bool = False
    #: Bound on the ring-space wait per attempt; None means "use
    #: ``deadline_s``" (the reservation is part of the attempt).
    reserve_timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.deadline_s <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline_s}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.backoff_jitter}"
            )

    @property
    def reserve_timeout(self) -> float:
        return (self.reserve_timeout_s if self.reserve_timeout_s is not None
                else self.deadline_s)

    def attempts_for(self, op: str) -> int:
        """Retry budget for ``op`` (writes get one shot by default)."""
        if op in READ_OPS or self.retry_writes:
            return self.max_attempts
        return 1

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Jittered exponential delay before attempt ``attempt + 1``."""
        base = self.backoff_base_s * self.backoff_factor ** attempt
        if self.backoff_jitter:
            base *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return base


# Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerParams:
    """Circuit-breaker tunables for the adaptive client's offload path."""

    #: Consecutive failures (from CLOSED) that trip the breaker.
    failure_threshold: int = 3
    #: Initial OPEN hold before the first recovery probe.
    cooldown_s: float = 2e-3
    #: Cooldown growth per failed probe (capped by ``max_cooldown_s``).
    cooldown_factor: float = 2.0
    max_cooldown_s: float = 50e-3

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s <= 0 or self.max_cooldown_s < self.cooldown_s:
            raise ValueError("need 0 < cooldown_s <= max_cooldown_s")
        if self.cooldown_factor < 1.0:
            raise ValueError(
                f"cooldown_factor must be >= 1, got {self.cooldown_factor}"
            )


class CircuitBreaker:
    """Fail over from offloading after repeated errors; probe for recovery.

    State machine (queried via :meth:`allow` before every offload):

    * **closed** — offloading allowed.  ``failure_threshold`` consecutive
      failures trip it open.
    * **open** — offloading short-circuited (the adaptive client falls
      back to fast messaging).  After the cooldown elapses the next
      ``allow()`` transitions to half-open.
    * **half-open** — one probe request is let through.  Success closes
      the breaker (and resets the cooldown); failure re-opens it with the
      cooldown grown by ``cooldown_factor``.
    """

    def __init__(self, sim: Simulator,
                 params: BreakerParams = BreakerParams()):
        self.sim = sim
        self.params = params
        self.state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._cooldown = params.cooldown_s
        self.trips = Counter("breaker.trips")
        self.probes = Counter("breaker.probes")
        self.recoveries = Counter("breaker.recoveries")
        self.short_circuits = Counter("breaker.short_circuits")

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "breaker") -> None:
        """Adopt the breaker counters (and a live state gauge)."""
        registry.adopt(f"{prefix}.trips", self.trips)
        registry.adopt(f"{prefix}.probes", self.probes)
        registry.adopt(f"{prefix}.recoveries", self.recoveries)
        registry.adopt(f"{prefix}.short_circuits", self.short_circuits)
        registry.expose(f"{prefix}.open",
                        lambda: 0 if self.state == CLOSED else 1)

    def allow(self) -> bool:
        """Whether the next offload may proceed (may move OPEN→HALF_OPEN)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.sim.now - self._opened_at >= self._cooldown:
                self.state = HALF_OPEN
                self.probes += 1
                return True
            self.short_circuits += 1
            return False
        # HALF_OPEN: the probe's outcome has not been recorded yet.  Each
        # client session is synchronous, so at most one request is in
        # flight — letting it through keeps probing live.
        self.probes += 1
        return True

    def record_success(self) -> None:
        if self.state != CLOSED:
            self.recoveries += 1
            self._cooldown = self.params.cooldown_s
        self.state = CLOSED
        self._failures = 0

    def record_failure(self) -> None:
        self._failures += 1
        if self.state == HALF_OPEN:
            # Failed probe: back off harder before the next one.
            self._cooldown = min(self._cooldown * self.params.cooldown_factor,
                                 self.params.max_cooldown_s)
            self._open()
        elif (self.state == CLOSED
              and self._failures >= self.params.failure_threshold):
            self._open()

    def _open(self) -> None:
        self.state = OPEN
        self._opened_at = self.sim.now
        self.trips += 1
