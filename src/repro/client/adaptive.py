"""The Catfish adaptive client — Algorithm 1 of the paper.

The decision rule itself lives in
:class:`~repro.runtime.policy.Algorithm1Policy` (see its docstring for
the back-off algorithm) and the execution skeleton in
:class:`~repro.runtime.session.PolicySession`; this module keeps the
historical :class:`CatfishSession` facade — same constructor, same
attribute surface (``r_busy``/``r_off``/counters are forwarded to the
policy), same trace component — so tests, subclasses (B+tree, cuckoo)
and dashboards are unaffected by the runtime-layer refactor.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..obs.registry import MetricsRegistry
from ..runtime.policy import AdaptiveParams, Algorithm1Policy
from ..runtime.session import PolicySession
from ..sim.kernel import Simulator
from .base import ClientStats
from .fm_client import FmSession
from .offload_client import OffloadEngine
from .predictors import most_recent
from .resilience import CircuitBreaker

#: The paper's default ``predUtil`` — kept as a public alias of the
#: canonical :func:`repro.client.predictors.most_recent`.
most_recent_utilization = most_recent

__all__ = ["AdaptiveParams", "CatfishSession", "most_recent_utilization"]

#: Attributes forwarded to the wrapped :class:`Algorithm1Policy`: the
#: Algorithm 1 state, its tunables and the introspection counters.
_POLICY_ATTRS = frozenset({
    "params", "rng", "pred_util", "stale_after_missing",
    "r_busy", "r_off", "_t0", "_last_seq", "_missing_streak",
    "busy_observations", "backoff_extensions",
    "heartbeats_consumed", "heartbeats_missing",
    "decisions_offload", "decisions_fm",
    "stale_resets", "offload_failovers",
})


class CatfishSession(PolicySession):
    """Adaptive per-request scheme selection (Algorithm 1)."""

    trace_component = "adaptive"

    def __init__(
        self,
        sim: Simulator,
        fm: FmSession,
        engine: OffloadEngine,
        stats: ClientStats,
        params: AdaptiveParams = AdaptiveParams(),
        rng: Optional[random.Random] = None,
        pred_util: Callable[[float], float] = most_recent_utilization,
        tracer=None,
        breaker: Optional[CircuitBreaker] = None,
        stale_after_missing: Optional[int] = None,
    ):
        policy = Algorithm1Policy(
            sim,
            # A callable so a session whose fast-messaging endpoint is
            # swapped (failover tests) never strands the policy on a
            # stale mailbox.
            lambda: self.fm.mailbox,
            params=params,
            rng=rng,
            pred_util=pred_util,
            stale_after_missing=stale_after_missing,
        )
        super().__init__(sim, fm, engine, stats, policy,
                         tracer=tracer, breaker=breaker)

    # Forward the Algorithm 1 state so pre-refactor call sites (tests
    # seed ``rng``/``_t0``, metrics read the counters) keep working.

    def __getattr__(self, name):
        policy = self.__dict__.get("policy")
        if policy is not None and name in _POLICY_ATTRS:
            return getattr(policy, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name, value):
        if name in _POLICY_ATTRS and "policy" in self.__dict__:
            setattr(self.policy, name, value)
        else:
            object.__setattr__(self, name, value)

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "adaptive") -> None:
        """Adopt the Algorithm 1 counters into ``registry``."""
        super().register_metrics(registry, prefix=prefix)
