"""The Catfish adaptive client — Algorithm 1 of the paper.

Each client autonomously decides, per search, between fast messaging and
RDMA offloading using a binary-exponential-back-off-style rule:

* the server's heartbeat (CPU utilization) lands in the client's
  ``u_serv`` mailbox at most every ``Inv``;
* when the predicted utilization exceeds threshold ``T`` (95%), the
  client offloads its next ``n`` searches, ``n`` drawn uniformly from the
  current back-off window ``[(r_busy-1)*N, r_busy*N)`` — randomization
  de-synchronizes the clients so they do not all stampede back to the
  server at once;
* consecutive busy observations extend the window without upper bound;
* **a missing heartbeat means "do not offload"**: the likely cause is a
  saturated server link, and offloading consumes *more* bandwidth.  The
  client tells "missing" apart from "fresh heartbeat reporting 0.0
  utilization" by the mailbox sequence number, not by the value — a
  server that is genuinely idle still counts as a (non-busy)
  observation;
* writes (insert/delete) always use fast messaging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..obs.registry import Counter, MetricsRegistry
from ..obs.trace import NULL_TRACER
from ..sim.kernel import Simulator
from .base import ClientStats, Request
from .fm_client import FmSession
from .offload_client import OffloadEngine, OffloadError
from .resilience import CircuitBreaker


def most_recent_utilization(u_serv: float) -> float:
    """The paper's default ``predUtil``: use the latest value as-is."""
    return u_serv


@dataclass(frozen=True)
class AdaptiveParams:
    """The tunables of Algorithm 1 (paper defaults: N=8, T=95%, Inv=10ms)."""

    N: int = 8
    T: float = 0.95
    Inv: float = 10e-3

    def __post_init__(self):
        if self.N < 1:
            raise ValueError(f"N must be >= 1, got {self.N}")
        if not 0.0 < self.T <= 1.0:
            raise ValueError(f"T must be in (0, 1], got {self.T}")
        if self.Inv <= 0:
            raise ValueError(f"Inv must be > 0, got {self.Inv}")


class CatfishSession:
    """Adaptive per-request scheme selection (Algorithm 1)."""

    def __init__(
        self,
        sim: Simulator,
        fm: FmSession,
        engine: OffloadEngine,
        stats: ClientStats,
        params: AdaptiveParams = AdaptiveParams(),
        rng: Optional[random.Random] = None,
        pred_util: Callable[[float], float] = most_recent_utilization,
        tracer=None,
        breaker: Optional[CircuitBreaker] = None,
        stale_after_missing: Optional[int] = None,
    ):
        self.sim = sim
        self.fm = fm
        self.engine = engine
        self.stats = stats
        self.params = params
        self.rng = rng or random.Random(0)
        self.pred_util = pred_util
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional offload circuit breaker: when set, an OffloadError is
        #: recorded and the request falls over to fast messaging instead
        #: of propagating; a tripped breaker short-circuits offloading
        #: until a recovery probe succeeds.  When None, errors propagate
        #: (the seed behaviour).
        self.breaker = breaker
        #: When set, this many consecutive missing-heartbeat observations
        #: mark the utilization picture "stale": any remaining offload
        #: budget (granted under now-unverifiable information) is
        #: cancelled until a fresh heartbeat arrives.
        self.stale_after_missing = stale_after_missing
        # Algorithm 1 state.
        self.r_busy = 0
        self.r_off = 0
        self._t0 = sim.now
        self._last_seq = -1
        self._missing_streak = 0
        # Introspection counters.
        self.busy_observations = Counter("adaptive.busy_observations")
        self.backoff_extensions = Counter("adaptive.backoff_extensions")
        self.heartbeats_consumed = Counter("adaptive.heartbeats_consumed")
        self.heartbeats_missing = Counter("adaptive.heartbeats_missing")
        self.decisions_offload = Counter("adaptive.decisions_offload")
        self.decisions_fm = Counter("adaptive.decisions_fm")
        self.stale_resets = Counter("adaptive.stale_resets")
        self.offload_failovers = Counter("adaptive.offload_failovers")

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "adaptive") -> None:
        """Adopt the Algorithm 1 counters into ``registry``."""
        registry.adopt(f"{prefix}.busy_observations",
                       self.busy_observations)
        registry.adopt(f"{prefix}.backoff_extensions",
                       self.backoff_extensions)
        registry.adopt(f"{prefix}.heartbeats_consumed",
                       self.heartbeats_consumed)
        registry.adopt(f"{prefix}.heartbeats_missing",
                       self.heartbeats_missing)
        registry.adopt(f"{prefix}.decisions_offload", self.decisions_offload)
        registry.adopt(f"{prefix}.decisions_fm", self.decisions_fm)
        registry.adopt(f"{prefix}.stale_resets", self.stale_resets)
        registry.adopt(f"{prefix}.offload_failovers", self.offload_failovers)
        registry.expose(f"{prefix}.r_busy", lambda: self.r_busy)
        registry.expose(f"{prefix}.r_off", lambda: self.r_off)
        if self.breaker is not None:
            self.breaker.register_metrics(registry, prefix=f"{prefix}.breaker")

    # -- Algorithm 1 -----------------------------------------------------------

    def _decide(self) -> bool:
        """One pass of lines 5-23; True means offload this search."""
        params = self.params
        utilization = 0.0
        now = self.sim.now
        mailbox = self.fm.mailbox
        # Lines 7-11: consume a heartbeat if at least Inv elapsed and one
        # actually arrived.  Freshness is the mailbox *sequence number*
        # advancing, never the value being nonzero: a fresh heartbeat
        # reporting exactly 0.0 utilization is a real (non-busy)
        # observation, while an unchanged seq means "missing heartbeat",
        # which deliberately reads as "do not offload".
        if now - self._t0 > params.Inv:
            fresh = mailbox.consume_fresh(self._last_seq)
            if fresh is not None:
                self._last_seq, raw = fresh
                utilization = self.pred_util(raw)
                self._t0 = now
                self.heartbeats_consumed += 1
                self._missing_streak = 0
            else:
                self.heartbeats_missing += 1
                self._missing_streak += 1
                stale = self.stale_after_missing
                if (stale is not None and self._missing_streak >= stale
                        and (self.r_off or self.r_busy)):
                    # The heartbeat has been silent for `stale` whole
                    # intervals (blackout / saturated link / dropped
                    # beats): the busy picture the current back-off
                    # window was granted under is no longer verifiable.
                    # Cancel the remaining offload budget — "missing
                    # means do not offload" now also applies to budget
                    # granted *before* the silence began.
                    self.r_off = 0
                    self.r_busy = 0
                    self.stale_resets += 1
        # Lines 12-17: extend or reset the back-off window.
        if utilization > params.T and self.r_off <= self.r_busy * params.N:
            self.r_busy += 1
            self.r_off = (
                self.rng.randrange(params.N)
                + (self.r_busy - 1) * params.N
            )
            self.busy_observations += 1
            if self.r_busy > 1:
                self.backoff_extensions += 1
        else:
            self.r_busy = 0
        # Lines 18-23: drain the offload budget.
        if self.r_off > 0:
            self.r_off -= 1
            return True
        return False

    # -- request execution ----------------------------------------------------------

    def _is_offloadable(self, request) -> bool:
        """Only reads may bypass the server (writes need its locks)."""
        from .base import READ_OPS
        return request.op in READ_OPS

    def _offload(self, request) -> Generator:
        """Execute one offloadable request via one-sided reads.

        Subclasses for other link-based structures (B+tree, cuckoo —
        paper §VI) override this and ``_is_offloadable``; the back-off
        algorithm itself is structure-agnostic.
        """
        from .offload_client import dispatch_read
        result = yield from dispatch_read(self.engine, request, self.fm)
        return result

    def execute(self, request: Request) -> Generator:
        """Run one request, choosing the access method adaptively."""
        span = self.tracer.span("adaptive", request.op)
        if not self._is_offloadable(request):
            # Writes always go to the server through the ring buffer.
            span.annotate("decide", path="fast-messaging", reason="write")
            result = yield from self.fm.execute(request)
            span.end(path="fast-messaging")
            return result
        if self._decide():
            breaker = self.breaker
            if breaker is not None and not breaker.allow():
                # Offload path tripped: route through the server until a
                # recovery probe succeeds.
                self.decisions_fm += 1
                span.annotate("decide", path="fast-messaging",
                              reason="breaker-open")
                result = yield from self.fm.execute(request)
                span.end(path="fast-messaging")
                return result
            self.decisions_offload += 1
            span.annotate("decide", path="offload", r_busy=self.r_busy,
                          r_off=self.r_off)
            if breaker is None:
                # Seed behaviour: offload failures propagate.
                result = yield from self._offload(request)
                span.end(path="offload")
                return result
            try:
                result = yield from self._offload(request)
            except OffloadError:
                # Torn-read/restart storm: record it and fail over — the
                # server-side path serves the same request under locks.
                breaker.record_failure()
                self.offload_failovers += 1
                span.annotate("failover", reason="offload-error",
                              breaker=breaker.state)
                result = yield from self.fm.execute(request)
                span.end(path="fm-failover")
                return result
            breaker.record_success()
            span.end(path="offload")
        else:
            self.decisions_fm += 1
            span.annotate("decide", path="fast-messaging",
                          r_busy=self.r_busy)
            result = yield from self.fm.execute(request)
            span.end(path="fast-messaging")
        return result
