"""The Catfish adaptive client — Algorithm 1 of the paper.

Each client autonomously decides, per search, between fast messaging and
RDMA offloading using a binary-exponential-back-off-style rule:

* the server's heartbeat (CPU utilization) lands in the client's
  ``u_serv`` mailbox at most every ``Inv``;
* when the predicted utilization exceeds threshold ``T`` (95%), the
  client offloads its next ``n`` searches, ``n`` drawn uniformly from the
  current back-off window ``[(r_busy-1)*N, r_busy*N)`` — randomization
  de-synchronizes the clients so they do not all stampede back to the
  server at once;
* consecutive busy observations extend the window without upper bound;
* **a missing heartbeat means "do not offload"**: the likely cause is a
  saturated server link, and offloading consumes *more* bandwidth;
* writes (insert/delete) always use fast messaging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..sim.kernel import Simulator
from .base import ClientStats, Request
from .fm_client import FmSession
from .offload_client import OffloadEngine


def most_recent_utilization(u_serv: float) -> float:
    """The paper's default ``predUtil``: use the latest value as-is."""
    return u_serv


@dataclass(frozen=True)
class AdaptiveParams:
    """The tunables of Algorithm 1 (paper defaults: N=8, T=95%, Inv=10ms)."""

    N: int = 8
    T: float = 0.95
    Inv: float = 10e-3

    def __post_init__(self):
        if self.N < 1:
            raise ValueError(f"N must be >= 1, got {self.N}")
        if not 0.0 < self.T <= 1.0:
            raise ValueError(f"T must be in (0, 1], got {self.T}")
        if self.Inv <= 0:
            raise ValueError(f"Inv must be > 0, got {self.Inv}")


class CatfishSession:
    """Adaptive per-request scheme selection (Algorithm 1)."""

    def __init__(
        self,
        sim: Simulator,
        fm: FmSession,
        engine: OffloadEngine,
        stats: ClientStats,
        params: AdaptiveParams = AdaptiveParams(),
        rng: Optional[random.Random] = None,
        pred_util: Callable[[float], float] = most_recent_utilization,
    ):
        self.sim = sim
        self.fm = fm
        self.engine = engine
        self.stats = stats
        self.params = params
        self.rng = rng or random.Random(0)
        self.pred_util = pred_util
        # Algorithm 1 state.
        self.r_busy = 0
        self.r_off = 0
        self._t0 = sim.now
        # Introspection counters.
        self.busy_observations = 0
        self.backoff_extensions = 0

    # -- Algorithm 1 -----------------------------------------------------------

    def _decide(self) -> bool:
        """One pass of lines 5-23; True means offload this search."""
        params = self.params
        utilization = 0.0
        now = self.sim.now
        mailbox = self.fm.mailbox
        # Lines 7-11: only consume a heartbeat if at least Inv elapsed and
        # one actually arrived (u_serv != 0); otherwise U stays 0, which
        # deliberately reads as "not busy" when heartbeats are missing.
        if now - self._t0 > params.Inv and mailbox.value != 0.0:
            utilization = self.pred_util(mailbox.read_and_clear())
            self._t0 = now
        # Lines 12-17: extend or reset the back-off window.
        if utilization > params.T and self.r_off <= self.r_busy * params.N:
            self.r_busy += 1
            self.r_off = (
                self.rng.randrange(params.N)
                + (self.r_busy - 1) * params.N
            )
            self.busy_observations += 1
            if self.r_busy > 1:
                self.backoff_extensions += 1
        else:
            self.r_busy = 0
        # Lines 18-23: drain the offload budget.
        if self.r_off > 0:
            self.r_off -= 1
            return True
        return False

    # -- request execution ----------------------------------------------------------

    def _is_offloadable(self, request) -> bool:
        """Only reads may bypass the server (writes need its locks)."""
        from .base import READ_OPS
        return request.op in READ_OPS

    def _offload(self, request) -> Generator:
        """Execute one offloadable request via one-sided reads.

        Subclasses for other link-based structures (B+tree, cuckoo —
        paper §VI) override this and ``_is_offloadable``; the back-off
        algorithm itself is structure-agnostic.
        """
        from .offload_client import dispatch_read
        result = yield from dispatch_read(self.engine, request, self.fm)
        return result

    def execute(self, request: Request) -> Generator:
        """Run one request, choosing the access method adaptively."""
        if not self._is_offloadable(request):
            # Writes always go to the server through the ring buffer.
            result = yield from self.fm.execute(request)
            return result
        if self._decide():
            result = yield from self._offload(request)
        else:
            result = yield from self.fm.execute(request)
        return result
