"""Client-side scaffolding shared by all access schemes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..obs.registry import Counter, LatencyView, MetricsRegistry
from ..rtree.geometry import Rect
from ..sim.monitor import LatencyRecorder

# Request kinds produced by workload generators.
OP_SEARCH = "search"
OP_INSERT = "insert"
OP_DELETE = "delete"
OP_NEAREST = "nearest"
OP_COUNT = "count"
OP_UPDATE = "update"

#: Operations that only read the tree (offloadable per §III-B).
READ_OPS = (OP_SEARCH, OP_NEAREST, OP_COUNT)


@dataclass(frozen=True)
class Request:
    """One client request, scheme-independent.

    ``rect`` is the query rectangle (for nearest: a point rect around the
    query point); ``k`` is the neighbour count for nearest queries.
    """

    op: str
    rect: Rect
    data_id: Optional[int] = None
    k: Optional[int] = None
    #: For updates: the replacement rectangle (``rect`` is the old one).
    new_rect: Optional[Rect] = None

    def __post_init__(self):
        if self.op not in (OP_SEARCH, OP_INSERT, OP_DELETE, OP_NEAREST,
                           OP_COUNT, OP_UPDATE):
            raise ValueError(f"unknown op {self.op!r}")
        if self.op in (OP_INSERT, OP_DELETE, OP_UPDATE) and (
            self.data_id is None
        ):
            raise ValueError(f"{self.op} request needs a data_id")
        if self.op == OP_NEAREST and (self.k is None or self.k < 1):
            raise ValueError("nearest request needs k >= 1")
        if self.op == OP_UPDATE and self.new_rect is None:
            raise ValueError("update request needs new_rect")


#: The counter fields of :class:`ClientStats`, in registration order.
CLIENT_COUNTER_FIELDS = (
    "requests_sent",
    "fast_messaging_requests",
    "offloaded_requests",
    "torn_retries",
    "level_mismatch_retries",
    "search_restarts",
    "results_received",
    # Resilience counters (deadlines/retries/duplicate suppression — see
    # docs/robustness.md).
    "request_timeouts",
    "request_retries",
    "ring_full_timeouts",
    "duplicates_suppressed",
    "unexpected_messages",
)


@dataclass
class ClientStats:
    """Everything one client session records while running.

    The counters are :class:`~repro.obs.registry.Counter` objects — they
    behave exactly like ints (``stats.torn_retries += 1`` and comparisons
    keep working) while a :class:`~repro.obs.registry.MetricsRegistry`
    can adopt them via :meth:`register_into` and observe live values.
    """

    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    search_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    requests_sent: Counter = field(default_factory=Counter)
    fast_messaging_requests: Counter = field(default_factory=Counter)
    offloaded_requests: Counter = field(default_factory=Counter)
    torn_retries: Counter = field(default_factory=Counter)
    #: Valid-but-wrong-level reads (recycled chunk / stale root) — a
    #: different failure than a torn snapshot, counted separately so the
    #: two diagnoses don't blur into one number.
    level_mismatch_retries: Counter = field(default_factory=Counter)
    search_restarts: Counter = field(default_factory=Counter)
    results_received: Counter = field(default_factory=Counter)
    #: Attempts abandoned because the response deadline expired.
    request_timeouts: Counter = field(default_factory=Counter)
    #: Re-sends after a timed-out or ring-full attempt.
    request_retries: Counter = field(default_factory=Counter)
    #: Bounded ring reservations that expired (RingBufferFullError).
    ring_full_timeouts: Counter = field(default_factory=Counter)
    #: Response segments of abandoned attempts, dropped on arrival.
    duplicates_suppressed: Counter = field(default_factory=Counter)
    #: Messages of an unknown type dropped by the receiver.
    unexpected_messages: Counter = field(default_factory=Counter)

    @property
    def offload_fraction(self) -> float:
        total = self.fast_messaging_requests + self.offloaded_requests
        return self.offloaded_requests / total if total else 0.0

    def register_into(self, registry: MetricsRegistry,
                      prefix: str = "client") -> None:
        """Adopt every counter (and latency percentile views) into
        ``registry`` under ``prefix``."""
        for name in CLIENT_COUNTER_FIELDS:
            registry.adopt(f"{prefix}.{name}", getattr(self, name))
        registry.adopt(
            f"{prefix}.latency_us",
            LatencyView(self.latency, scale=1e6, unit="us"),
        )
        registry.adopt(
            f"{prefix}.search_latency_us",
            LatencyView(self.search_latency, scale=1e6, unit="us"),
        )


class RequestIdAllocator:
    """Monotonic request ids, one stream per client."""

    def __init__(self, client_id: int):
        # Partition the id space so ids are globally unique and traceable.
        self._counter = itertools.count(client_id << 32)

    def next_id(self) -> int:
        return next(self._counter)
