"""Client-side scaffolding shared by all access schemes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..rtree.geometry import Rect
from ..sim.monitor import LatencyRecorder

# Request kinds produced by workload generators.
OP_SEARCH = "search"
OP_INSERT = "insert"
OP_DELETE = "delete"
OP_NEAREST = "nearest"
OP_COUNT = "count"
OP_UPDATE = "update"

#: Operations that only read the tree (offloadable per §III-B).
READ_OPS = (OP_SEARCH, OP_NEAREST, OP_COUNT)


@dataclass(frozen=True)
class Request:
    """One client request, scheme-independent.

    ``rect`` is the query rectangle (for nearest: a point rect around the
    query point); ``k`` is the neighbour count for nearest queries.
    """

    op: str
    rect: Rect
    data_id: Optional[int] = None
    k: Optional[int] = None
    #: For updates: the replacement rectangle (``rect`` is the old one).
    new_rect: Optional[Rect] = None

    def __post_init__(self):
        if self.op not in (OP_SEARCH, OP_INSERT, OP_DELETE, OP_NEAREST,
                           OP_COUNT, OP_UPDATE):
            raise ValueError(f"unknown op {self.op!r}")
        if self.op in (OP_INSERT, OP_DELETE, OP_UPDATE) and (
            self.data_id is None
        ):
            raise ValueError(f"{self.op} request needs a data_id")
        if self.op == OP_NEAREST and (self.k is None or self.k < 1):
            raise ValueError("nearest request needs k >= 1")
        if self.op == OP_UPDATE and self.new_rect is None:
            raise ValueError("update request needs new_rect")


@dataclass
class ClientStats:
    """Everything one client session records while running."""

    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    search_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    requests_sent: int = 0
    fast_messaging_requests: int = 0
    offloaded_requests: int = 0
    torn_retries: int = 0
    search_restarts: int = 0
    results_received: int = 0

    @property
    def offload_fraction(self) -> float:
        total = self.fast_messaging_requests + self.offloaded_requests
        return self.offloaded_requests / total if total else 0.0


class RequestIdAllocator:
    """Monotonic request ids, one stream per client."""

    def __init__(self, client_id: int):
        # Partition the id space so ids are globally unique and traceable.
        self._counter = itertools.count(client_id << 32)

    def next_id(self) -> int:
        return next(self._counter)
