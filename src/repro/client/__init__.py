"""Client-side access schemes: TCP, fast messaging, offloading, Catfish."""

from .adaptive import AdaptiveParams, CatfishSession, most_recent_utilization
from .bandit import BanditSession, LatencyEstimate
from .predictors import (
    EwmaPredictor,
    TrendPredictor,
    make_predictor,
    most_recent,
)
from .base import (
    OP_DELETE,
    OP_INSERT,
    OP_SEARCH,
    ClientStats,
    Request,
    RequestIdAllocator,
)
from .fm_client import FmSession
from .offload_client import OffloadEngine, OffloadError, OffloadSession
from .tcp_client import TcpSession

__all__ = [
    "AdaptiveParams",
    "CatfishSession",
    "most_recent_utilization",
    "BanditSession",
    "LatencyEstimate",
    "EwmaPredictor",
    "TrendPredictor",
    "make_predictor",
    "most_recent",
    "OP_DELETE",
    "OP_INSERT",
    "OP_SEARCH",
    "ClientStats",
    "Request",
    "RequestIdAllocator",
    "FmSession",
    "OffloadEngine",
    "OffloadError",
    "OffloadSession",
    "TcpSession",
]
