"""Client-side cache of internal R-tree node snapshots (RDMAbox-style).

The offload path re-fetches the same upper tree levels on every
one-sided search, paying a round trip for chunks whose content has not
changed since the last search.  This module caches internal
:class:`~repro.rtree.serialize.NodeView` snapshots client-side so a
repeated traversal serves the upper levels from local memory and only
pays RTTs for the leaf level (which is always re-read — the FaRM-style
version validation on fresh leaf reads is the correctness safety net).

Consistency model
-----------------
Every cached view is stamped with the server's tree-wide *mutation
high-water mark* (``RStarTree.mut_hwm``, bumped on every structural
mutation) in effect when the view was fetched.  The mark reaches the
client through two channels:

* the meta read every search already performs (the ``TreeMeta`` pad
  word now carries it), which makes it *exact at search start*: a hit
  is served only when its stamp equals the mark the current search
  observed, so a cached view is indistinguishable from a fresh read
  taken at search start — the same quiescence guarantee the server's
  own ``(node, version, mut_seq)`` snapshot caches give;
* heartbeat piggybacking (:class:`~repro.msg.codec.Heartbeat` carries
  the mark), applied on mailbox delivery, so a write storm flushes
  stale upper levels between searches without any extra round trips.

Under a write-heavy phase the mark advances continuously, every lookup
misses, and the engine behaves exactly as if the cache were absent —
correct, just not faster.  Under the read-mostly phases the cache is
built for, the upper levels pin and each search saves their RTTs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..obs.registry import Counter, MetricsRegistry
from ..rtree.serialize import NodeView

#: ``server_hwm`` value before any meta read / heartbeat hint arrived.
HWM_UNKNOWN = -1


@dataclass(frozen=True)
class NodeCacheConfig:
    """Tunables for the client-side node cache (disabled by default).

    ``max_nodes`` bounds client memory; the upper levels of even a
    large tree are small (fanout 64: height-4 holds the whole non-leaf
    structure in a few hundred nodes), so the default comfortably pins
    them while LRU evicts cold subtrees under pressure.
    """

    enabled: bool = True
    max_nodes: int = 512

    def __post_init__(self):
        if self.max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {self.max_nodes}")


class NodeCache:
    """LRU cache of internal node views keyed by chunk id + HWM stamp."""

    def __init__(self, config: Optional[NodeCacheConfig] = None):
        self.config = config if config is not None else NodeCacheConfig()
        #: chunk_id -> (view, hwm stamp at fetch time), LRU-ordered.
        self._entries: "OrderedDict[int, Tuple[NodeView, int]]" = (
            OrderedDict()
        )
        #: Latest tree-wide mutation high-water mark this client knows.
        self.server_hwm = HWM_UNKNOWN
        self.hits = Counter("cache.hits")
        self.misses = Counter("cache.misses")
        self.invalidations = Counter("cache.invalidations")
        self.coalesced_reads = Counter("cache.coalesced_reads")
        self.stores = Counter("cache.stores")
        self.evictions = Counter("cache.evictions")
        self.hint_flushes = Counter("cache.hint_flushes")

    def __len__(self) -> int:
        return len(self._entries)

    # -- high-water-mark tracking -----------------------------------------

    def note_server_hwm(self, hwm: int) -> bool:
        """Learn the server's mutation mark; True if it advanced.

        Advancing the mark invalidates every entry stamped under an
        older one (they may describe a pre-mutation tree).  Fed by both
        meta reads (exact, per search) and heartbeat hints (push,
        between searches).
        """
        if hwm <= self.server_hwm:
            return False
        self.server_hwm = hwm
        if self._entries:
            stale = [cid for cid, (_v, stamp) in self._entries.items()
                     if stamp != hwm]
            for cid in stale:
                del self._entries[cid]
            self.invalidations += len(stale)
        return True

    def apply_hint(self, hwm: int) -> None:
        """A heartbeat-piggybacked invalidation hint (mailbox delivery)."""
        if self.note_server_hwm(hwm):
            self.hint_flushes += 1

    # -- lookup / store -----------------------------------------------------

    def lookup(self, chunk_id: int) -> Optional[NodeView]:
        """The cached view of ``chunk_id``, or None (counted) on a miss.

        Only entries stamped with the *current* high-water mark are
        served; a stale stamp means a mutation intervened and the view
        can no longer stand in for a fresh read.
        """
        entry = self._entries.get(chunk_id)
        if entry is None:
            self.misses += 1
            return None
        view, stamp = entry
        if stamp != self.server_hwm:
            del self._entries[chunk_id]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(chunk_id)
        self.hits += 1
        return view

    def store(self, view: NodeView, stamp: Optional[int] = None) -> bool:
        """Cache a validated *internal* view; True if stored.

        Leaves are never cached (every hit's traversal re-reads and
        re-validates its leaves — the safety net), and nothing is
        stored before the first high-water mark is known: an unstamped
        entry could not be invalidated correctly.

        ``stamp`` is the high-water mark the fetcher knew *before
        posting* its read; if the mark moved while the read was in
        flight the view may describe a pre-mutation tree, so it is not
        cached at all rather than mis-stamped as current.
        """
        if stamp is None:
            stamp = self.server_hwm
        if view.is_leaf or view.torn or stamp == HWM_UNKNOWN:
            return False
        if stamp != self.server_hwm:
            return False
        self._entries[view.chunk_id] = (view, self.server_hwm)
        self._entries.move_to_end(view.chunk_id)
        if len(self._entries) > self.config.max_nodes:
            self._entries.popitem(last=False)
            self.evictions += 1
        self.stores += 1
        return True

    def invalidate_all(self) -> None:
        """Drop every entry (e.g. after an offload descriptor change)."""
        count = len(self._entries)
        self._entries.clear()
        self.invalidations += count

    # -- metrics -------------------------------------------------------------

    def register_metrics(self, registry: MetricsRegistry,
                         prefix: str = "cache") -> None:
        """Adopt the cache counters into ``registry``."""
        registry.adopt(f"{prefix}.hits", self.hits)
        registry.adopt(f"{prefix}.misses", self.misses)
        registry.adopt(f"{prefix}.invalidations", self.invalidations)
        registry.adopt(f"{prefix}.coalesced_reads", self.coalesced_reads)
        registry.adopt(f"{prefix}.stores", self.stores)
        registry.adopt(f"{prefix}.evictions", self.evictions)
        registry.adopt(f"{prefix}.hint_flushes", self.hint_flushes)
        registry.expose(f"{prefix}.resident_nodes", lambda: len(self))
        registry.expose(f"{prefix}.server_hwm", lambda: self.server_hwm)
