"""Utilization predictors for Algorithm 1's ``predUtil`` hook.

The paper uses the most recent heartbeat value as the prediction and
explicitly flags smarter prediction as future work (§VI: "the server can
periodically predict the overloading period ... In this way, clients can
make a more accurate decision").  These client-side predictors implement
that future work without protocol changes — they only post-process the
heartbeat stream:

* :func:`most_recent` — the paper's default (identity);
* :class:`EwmaPredictor` — exponentially weighted moving average, damping
  one-off spikes so clients don't stampede off a momentarily busy server;
* :class:`TrendPredictor` — first-order extrapolation, reacting *before*
  the server actually saturates when utilization is climbing.
"""

from __future__ import annotations


def most_recent(u_serv: float) -> float:
    """The paper's default: predict with the latest reading."""
    return u_serv


class EwmaPredictor:
    """Exponentially weighted moving average of the heartbeat stream."""

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._estimate: float = 0.0
        self._seen_any = False

    def __call__(self, u_serv: float) -> float:
        if not self._seen_any:
            self._estimate = u_serv
            self._seen_any = True
        else:
            self._estimate = (
                self.alpha * u_serv + (1.0 - self.alpha) * self._estimate
            )
        return self._estimate

    def reset(self) -> None:
        self._seen_any = False
        self._estimate = 0.0


class TrendPredictor:
    """Linear extrapolation: ``u + gain * (u - previous)``, clamped.

    A rising utilization curve predicts *above* the latest reading, so
    clients start offloading one heartbeat earlier; a falling curve
    predicts below, so they return to fast messaging sooner.
    """

    def __init__(self, gain: float = 1.0):
        if gain < 0.0:
            raise ValueError(f"gain must be >= 0, got {gain}")
        self.gain = gain
        self._previous: float = 0.0
        self._seen_any = False

    def __call__(self, u_serv: float) -> float:
        if not self._seen_any:
            self._seen_any = True
            prediction = u_serv
        else:
            prediction = u_serv + self.gain * (u_serv - self._previous)
        self._previous = u_serv
        return min(max(prediction, 0.0), 1.0)

    def reset(self) -> None:
        self._seen_any = False
        self._previous = 0.0


PREDICTORS = {
    "latest": lambda: most_recent,
    "ewma": EwmaPredictor,
    "trend": TrendPredictor,
}


def make_predictor(name: str):
    """Instantiate a predictor by registry name."""
    try:
        factory = PREDICTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; known: {sorted(PREDICTORS)}"
        ) from None
    return factory()
