"""Fast-messaging client (paper §III-A).

Sends requests with RDMA Write into the server's ring buffer and collects
CONT/END response segments from its own ring buffer.  A background receiver
process demultiplexes the response ring: heartbeats go to the ``u_serv``
mailbox (Algorithm 1), response segments go to the in-flight request.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..msg.codec import (
    CountRequest,
    DeleteRequest,
    Heartbeat,
    InsertRequest,
    NearestRequest,
    ResponseSegment,
    SearchRequest,
)
from ..rtree.geometry import Rect
from ..server.fast_messaging import FmConnection
from ..sim.kernel import Simulator
from ..sim.resources import Store
from .base import (
    OP_COUNT,
    OP_DELETE,
    OP_INSERT,
    OP_NEAREST,
    OP_SEARCH,
    OP_UPDATE,
    ClientStats,
    Request,
    RequestIdAllocator,
)


class FmSession:
    """One client's fast-messaging endpoint."""

    def __init__(
        self,
        sim: Simulator,
        conn: FmConnection,
        client_id: int,
        stats: ClientStats,
    ):
        self.sim = sim
        self.conn = conn
        self.stats = stats
        self._ids = RequestIdAllocator(client_id)
        self._segments: Store = Store(sim)
        self.heartbeats_seen = 0
        sim.process(self._receiver(), name=f"fm-recv-{client_id}")

    @property
    def mailbox(self):
        """The ``u_serv`` heartbeat mailbox (used by the adaptive client)."""
        return self.conn.mailbox

    def _receiver(self) -> Generator:
        """Continuously drain the response ring, routing by message type."""
        while True:
            message = yield self.conn.response_ring.consume()
            if isinstance(message, Heartbeat):
                self.conn.mailbox.deliver(message)
                self.heartbeats_seen += 1
            elif isinstance(message, ResponseSegment):
                self._segments.put(message)
            else:
                raise TypeError(f"client got unexpected message {message!r}")

    # -- request execution -----------------------------------------------------

    def execute(self, request: Request) -> Generator:
        """Run one request through fast messaging; returns the results."""
        self.stats.fast_messaging_requests += 1
        if request.op == OP_SEARCH:
            wire = SearchRequest(self._ids.next_id(), request.rect)
        elif request.op == OP_NEAREST:
            cx, cy = request.rect.center()
            wire = NearestRequest(self._ids.next_id(), cx, cy, request.k)
        elif request.op == OP_COUNT:
            wire = CountRequest(self._ids.next_id(), request.rect)
        elif request.op == OP_INSERT:
            wire = InsertRequest(self._ids.next_id(), request.rect,
                                 request.data_id)
        elif request.op == OP_DELETE:
            wire = DeleteRequest(self._ids.next_id(), request.rect,
                                 request.data_id)
        elif request.op == OP_UPDATE:
            from ..msg.codec import UpdateRequest
            wire = UpdateRequest(self._ids.next_id(), request.rect,
                                 request.new_rect, request.data_id)
        else:  # pragma: no cover - Request validates op
            raise ValueError(request.op)

        # Ring-buffer flow control, then the actual RDMA Write (w/ IMM in
        # event mode).  The client continues once the write is acknowledged.
        yield from self.conn.request_ring.reserve(wire)
        yield self.conn.client_post_request(wire)

        results: List[Tuple[Rect, int]] = []
        count: Optional[int] = None
        while True:
            segment: ResponseSegment = yield self._segments.get()
            if segment.req_id != wire.req_id:
                raise RuntimeError(
                    f"segment for {segment.req_id} while awaiting "
                    f"{wire.req_id} (clients are synchronous)"
                )
            results.extend(segment.results)
            if segment.count is not None:
                count = segment.count
            if segment.last:
                break
        if request.op == OP_COUNT:
            self.stats.results_received += count or 0
            return count
        self.stats.results_received += len(results)
        return results

    def search(self, rect: Rect) -> Generator:
        result = yield from self.execute(Request(OP_SEARCH, rect))
        return result
