"""Fast-messaging client (paper §III-A).

Sends requests with RDMA Write into the server's ring buffer and collects
CONT/END response segments from its own ring buffer.  A background receiver
process demultiplexes the response ring: heartbeats go to the ``u_serv``
mailbox (Algorithm 1), response segments go to the in-flight request.
Messages of an unknown type are counted and dropped — a malformed message
must not kill the client process.

With a :class:`~repro.client.resilience.RetryPolicy` attached, every
request gets a deadline and a jittered exponential-backoff retry budget:
a timed-out attempt is *abandoned* (its request id is remembered so
late-arriving segments are suppressed as duplicates, never delivered) and
the request is re-sent under a fresh id.  Ring reservations become
bounded waits (``reserve_within``) so a wedged server cannot block the
client forever.  Without a policy the original always-blocking behaviour
is preserved bit-for-bit — the resilience layer costs nothing unless
requested.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional, Set, Tuple

from ..msg.codec import (
    CountRequest,
    DeleteRequest,
    Heartbeat,
    InsertRequest,
    NearestRequest,
    ResponseSegment,
    SearchRequest,
)
from ..msg.ringbuffer import RingBufferFullError
from ..rtree.geometry import Rect
from ..server.fast_messaging import FmConnection
from ..sim.kernel import Simulator, any_of
from ..sim.resources import Store
from .base import (
    OP_COUNT,
    OP_DELETE,
    OP_INSERT,
    OP_NEAREST,
    OP_SEARCH,
    OP_UPDATE,
    ClientStats,
    Request,
    RequestIdAllocator,
)
from .resilience import RequestTimeoutError, RetryPolicy

#: Internal marker: an attempt expired before its END segment arrived.
_TIMED_OUT = object()


class FmSession:
    """One client's fast-messaging endpoint."""

    def __init__(
        self,
        sim: Simulator,
        conn: FmConnection,
        client_id: int,
        stats: ClientStats,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.conn = conn
        self.stats = stats
        self.retry = retry
        self.rng = rng or random.Random(client_id)
        self._ids = RequestIdAllocator(client_id)
        self._segments: Store = Store(sim)
        #: Request ids whose attempt was abandoned (deadline expired);
        #: their late segments are suppressed, not delivered.
        self._abandoned: Set[int] = set()
        self.heartbeats_seen = 0
        sim.process(self._receiver(), name=f"fm-recv-{client_id}")

    @property
    def mailbox(self):
        """The ``u_serv`` heartbeat mailbox (used by the adaptive client)."""
        return self.conn.mailbox

    def _receiver(self) -> Generator:
        """Continuously drain the response ring, routing by message type."""
        while True:
            message = yield self.conn.response_ring.consume()
            if isinstance(message, Heartbeat):
                self.conn.mailbox.deliver(message)
                self.heartbeats_seen += 1
            elif isinstance(message, ResponseSegment):
                if message.req_id in self._abandoned:
                    # Late answer to a timed-out attempt: swallow it here
                    # so it can never be mistaken for the current
                    # request's response.  Forget the id once the END
                    # segment has passed.
                    self.stats.duplicates_suppressed += 1
                    if message.last:
                        self._abandoned.discard(message.req_id)
                    continue
                self._segments.put(message)
            else:
                # Unknown message type: drop and count, never crash the
                # receiver (a dead receiver wedges the whole client).
                self.stats.unexpected_messages += 1

    # -- request execution -----------------------------------------------------

    def _make_wire(self, request: Request):
        """Encode ``request`` under a fresh request id."""
        if request.op == OP_SEARCH:
            return SearchRequest(self._ids.next_id(), request.rect)
        if request.op == OP_NEAREST:
            cx, cy = request.rect.center()
            return NearestRequest(self._ids.next_id(), cx, cy, request.k)
        if request.op == OP_COUNT:
            return CountRequest(self._ids.next_id(), request.rect)
        if request.op == OP_INSERT:
            return InsertRequest(self._ids.next_id(), request.rect,
                                 request.data_id)
        if request.op == OP_DELETE:
            return DeleteRequest(self._ids.next_id(), request.rect,
                                 request.data_id)
        if request.op == OP_UPDATE:
            from ..msg.codec import UpdateRequest
            return UpdateRequest(self._ids.next_id(), request.rect,
                                 request.new_rect, request.data_id)
        raise ValueError(request.op)  # pragma: no cover - Request validates

    def execute(self, request: Request) -> Generator:
        """Run one request through fast messaging; returns the results."""
        self.stats.fast_messaging_requests += 1
        policy = self.retry
        if policy is None:
            result = yield from self._execute_blocking(request)
            return result
        attempts = policy.attempts_for(request.op)
        for attempt in range(attempts):
            wire = self._make_wire(request)
            try:
                yield from self.conn.request_ring.reserve_within(
                    wire, policy.reserve_timeout
                )
            except RingBufferFullError:
                self.stats.ring_full_timeouts += 1
                if attempt + 1 >= attempts:
                    raise RequestTimeoutError(
                        f"{request.op}: request ring still full after "
                        f"{attempts} bounded reservation(s)"
                    ) from None
                self.stats.request_retries += 1
                yield self.sim.timeout(policy.backoff_s(attempt, self.rng))
                continue
            yield self.conn.client_post_request(wire)
            outcome = yield from self._collect(request, wire,
                                               policy.deadline_s)
            if outcome is not _TIMED_OUT:
                return outcome
            self.stats.request_timeouts += 1
            if attempt + 1 < attempts:
                self.stats.request_retries += 1
                yield self.sim.timeout(policy.backoff_s(attempt, self.rng))
        raise RequestTimeoutError(
            f"{request.op} got no response within {attempts} attempt(s) "
            f"of {policy.deadline_s * 1e6:.0f} us each"
        )

    def _collect(self, request: Request, wire,
                 deadline_s: float) -> Generator:
        """Gather segments for ``wire`` until END, or ``_TIMED_OUT``."""
        sim = self.sim
        deadline = sim.now + deadline_s
        results: List[Tuple[Rect, int]] = []
        count: Optional[int] = None
        while True:
            get = self._segments.get()
            if get.triggered:
                segment = yield get
            else:
                remaining = deadline - sim.now
                if remaining <= 0:
                    get.cancel()
                    self._abandoned.add(wire.req_id)
                    return _TIMED_OUT
                yield any_of(sim, (get, sim.timeout(remaining)))
                if not get.triggered:
                    get.cancel()
                    self._abandoned.add(wire.req_id)
                    return _TIMED_OUT
                segment = get.value
            if segment.req_id != wire.req_id:
                # A stale segment that reached the store before its
                # attempt was abandoned.  Suppress it exactly like the
                # receiver would have.
                self.stats.duplicates_suppressed += 1
                if segment.last:
                    self._abandoned.discard(segment.req_id)
                continue
            results.extend(segment.results)
            if segment.count is not None:
                count = segment.count
            if segment.last:
                break
        return self._finish(request, results, count)

    def _execute_blocking(self, request: Request) -> Generator:
        """The no-policy path: block on the ring, wait unboundedly.

        Kept separate (and identical to the pre-resilience behaviour, a
        strict mismatch still being an error) so fault-free experiments
        pay nothing for the retry machinery.
        """
        wire = self._make_wire(request)
        # Ring-buffer flow control, then the actual RDMA Write (w/ IMM in
        # event mode).  The client continues once the write is acknowledged.
        yield from self.conn.request_ring.reserve(wire)
        yield self.conn.client_post_request(wire)

        results: List[Tuple[Rect, int]] = []
        count: Optional[int] = None
        while True:
            segment: ResponseSegment = yield self._segments.get()
            if segment.req_id != wire.req_id:
                raise RuntimeError(
                    f"segment for {segment.req_id} while awaiting "
                    f"{wire.req_id} (clients are synchronous)"
                )
            results.extend(segment.results)
            if segment.count is not None:
                count = segment.count
            if segment.last:
                break
        return self._finish(request, results, count)

    def _finish(self, request: Request, results, count):
        if request.op == OP_COUNT:
            self.stats.results_received += count or 0
            return count
        self.stats.results_received += len(results)
        return results

    def search(self, rect: Rect) -> Generator:
        result = yield from self.execute(Request(OP_SEARCH, rect))
        return result
