"""TCP/IP client session — the paper's socket baseline."""

from __future__ import annotations

from typing import Generator, List, Tuple

from ..msg.codec import (
    CountRequest,
    DeleteRequest,
    InsertRequest,
    NearestRequest,
    SearchRequest,
    message_size,
)
from ..rtree.geometry import Rect
from ..sim.kernel import Simulator
from ..transport.tcp import TcpConnection
from .base import (
    OP_COUNT,
    OP_DELETE,
    OP_INSERT,
    OP_NEAREST,
    OP_SEARCH,
    ClientStats,
    Request,
    RequestIdAllocator,
)


class TcpSession:
    """Synchronous request/response over one TCP connection."""

    def __init__(
        self,
        sim: Simulator,
        conn: TcpConnection,
        client_id: int,
        stats: ClientStats,
    ):
        self.sim = sim
        self.conn = conn
        self.stats = stats
        self._ids = RequestIdAllocator(client_id)

    def execute(self, request: Request) -> Generator:
        """Run one request; returns the matches (searches) or ack (writes)."""
        self.stats.fast_messaging_requests += 1  # server-side execution
        if request.op == OP_SEARCH:
            wire = SearchRequest(self._ids.next_id(), request.rect)
        elif request.op == OP_NEAREST:
            cx, cy = request.rect.center()
            wire = NearestRequest(self._ids.next_id(), cx, cy, request.k)
        elif request.op == OP_COUNT:
            wire = CountRequest(self._ids.next_id(), request.rect)
        elif request.op == OP_INSERT:
            wire = InsertRequest(self._ids.next_id(), request.rect,
                                 request.data_id)
        elif request.op == OP_DELETE:
            wire = DeleteRequest(self._ids.next_id(), request.rect,
                                 request.data_id)
        elif request.op == "update":
            from ..msg.codec import UpdateRequest
            wire = UpdateRequest(self._ids.next_id(), request.rect,
                                 request.new_rect, request.data_id)
        else:  # pragma: no cover - Request validates op
            raise ValueError(request.op)
        yield from self.conn.client_send(wire, message_size(wire))
        message = yield self.conn.client_recv()
        response = message.payload
        if response.req_id != wire.req_id:
            raise RuntimeError(
                f"response for {response.req_id} while awaiting {wire.req_id}"
            )
        if request.op == OP_COUNT:
            self.stats.results_received += response.count or 0
            return response.count
        results: List[Tuple[Rect, int]] = list(response.results)
        self.stats.results_received += len(results)
        return results
