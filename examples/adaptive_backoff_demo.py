#!/usr/bin/env python3
"""Watch Algorithm 1 switch a client between access methods in real time.

Builds one Catfish deployment and injects a square-wave background load
on the server's cores: idle -> saturated -> idle.  A probe client runs
throughout; the demo prints a timeline of the server utilization it saw
in heartbeats and the fraction of its searches it offloaded in each
window — the catfish turning its body as the water changes.
"""

from repro.client import (
    AdaptiveParams,
    CatfishSession,
    ClientStats,
    OffloadEngine,
    Request,
)
from repro.client.fm_client import FmSession
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import EVENT, FastMessagingServer, HeartbeatService, RTreeServer
from repro.sim import Simulator
from repro.workloads import uniform_dataset


def main():
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=4)
    net.attach_server(server_host)
    server = RTreeServer(sim, server_host, uniform_dataset(10_000, seed=1),
                         max_entries=32)
    fm_server = FastMessagingServer(sim, server, net, mode=EVENT)
    heartbeats = HeartbeatService(
        sim, server_host.cpu.window_utilization, interval=0.2e-3
    )

    client_host = Host(sim, "probe", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = FmSession(sim, conn, 0, stats)
    heartbeats.subscribe(conn.response_ring,
                         lambda hb: conn.server_post_response(hb))
    engine = OffloadEngine(sim, conn.client_end,
                           server.offload_descriptor(), server.costs, stats)
    session = CatfishSession(
        sim, fm, engine, stats,
        params=AdaptiveParams(N=8, T=0.9, Inv=0.2e-3),
    )
    heartbeats.start()

    def background_load(start, duration):
        """Saturate every server core for [start, start+duration)."""
        def burner():
            yield sim.timeout(start)
            while sim.now < start + duration:
                yield from server_host.cpu.execute(0.1e-3)
        for _ in range(server_host.cpu.capacity):
            sim.process(burner())

    # idle [0, 5ms) -> saturated [5ms, 15ms) -> idle again
    background_load(start=5e-3, duration=10e-3)

    timeline = []

    def probe():
        query = Rect(0.4, 0.4, 0.401, 0.401)
        window_start, window_offloads, window_total = 0.0, 0, 0
        while sim.now < 25e-3:
            before = stats.offloaded_requests
            yield from session.execute(Request("search", query))
            window_total += 1
            window_offloads += stats.offloaded_requests - before
            if sim.now - window_start >= 1e-3:
                timeline.append((sim.now, window_offloads, window_total))
                window_start, window_offloads, window_total = sim.now, 0, 0
            yield sim.timeout(20e-6)

    done = sim.process(probe())
    sim.run_until_triggered(done)

    print("time(ms)  server-load  offloaded-searches")
    for t, offloads, total in timeline:
        phase = "SATURATED" if 5e-3 <= t <= 15.5e-3 else "idle"
        bar = "#" * offloads + "." * (total - offloads)
        print(f"{t * 1e3:7.1f}   {phase:>9}   {bar} ({offloads}/{total})")

    print(f"\nheartbeats delivered: {fm.heartbeats_seen}, "
          f"busy observations: {session.busy_observations}, "
          f"back-off extensions: {session.backoff_extensions}")
    print("offloading concentrates inside the saturated window and "
          "drains away once\nthe heartbeats show the server recovered — "
          "Algorithm 1 in action.")


if __name__ == "__main__":
    main()
