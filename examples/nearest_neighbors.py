#!/usr/bin/env python3
"""Nearest-neighbour and aggregate queries over every access path.

"Find the 5 nearest gas stations" is the other half of the paper's Fig 1
scenario.  This example runs kNN and count-only queries through the
library's three paths and shows their different characters:

* server-side (fast messaging): one RTT regardless of k;
* offloaded kNN: best-first search is inherently sequential — one RTT per
  expanded node — the worst case for offloading;
* count-only responses carry a single integer: wide aggregates that would
  saturate the link as full searches become almost free.
"""

import random

from repro.client import ClientStats, OffloadEngine
from repro.client.base import OP_COUNT, OP_NEAREST, Request
from repro.client.fm_client import FmSession
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import EVENT, FastMessagingServer, RTreeServer
from repro.sim import Simulator
from repro.workloads import uniform_dataset


def main():
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=8)
    net.attach_server(server_host)
    stations = uniform_dataset(25_000, seed=11)
    server = RTreeServer(sim, server_host, stations, max_entries=32)
    fm_server = FastMessagingServer(sim, server, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = FmSession(sim, conn, 0, stats)
    engine = OffloadEngine(sim, conn.client_end,
                           server.offload_descriptor(), server.costs, stats)
    rng = random.Random(12)

    def timed(gen_fn, n=100):
        def runner():
            t0 = sim.now
            out = None
            for _ in range(n):
                out = yield from gen_fn()
            return (sim.now - t0) / n, out

        p = sim.process(runner())
        sim.run_until_triggered(p)
        return p.value

    print("25k gas stations, one client on simulated 100G InfiniBand\n")

    # -- kNN --------------------------------------------------------------
    print("k nearest stations (k=5):")
    here = (rng.random(), rng.random())
    fm_lat, fm_out = timed(lambda: fm.execute(
        Request(OP_NEAREST, Rect.point(*here), k=5)))
    off_lat, off_out = timed(lambda: engine.nearest(*here, k=5))
    print(f"  fast messaging: {fm_lat * 1e6:7.2f} us   "
          f"offloaded: {off_lat * 1e6:7.2f} us")
    assert len(fm_out) == len(off_out) == 5
    print("  -> best-first kNN expands one node per round trip when "
          "offloaded; the\n     two paths tie for one idle client, but "
          "the offloaded one costs zero\n     server CPU — the adaptive "
          "client gets to pick per load.\n")

    # -- count ------------------------------------------------------------
    wide = Rect(0.1, 0.1, 0.9, 0.9)  # ~16k matching stations
    print(f"how many stations inside a wide region?")
    cnt_lat, count = timed(lambda: fm.execute(Request(OP_COUNT, wide)), n=30)
    search_lat, matches = timed(lambda: fm.execute(
        Request("search", wide)), n=30)
    print(f"  count-only: {cnt_lat * 1e6:8.2f} us  (answer: {count})")
    print(f"  full search: {search_lat * 1e6:7.2f} us  "
          f"({len(matches)} rectangles shipped)")
    print("  -> the aggregate answer fits in one cache line: no result "
          "copying on the\n     server, no hundreds of KB of response "
          "traffic on the wire.")


if __name__ == "__main__":
    main()
