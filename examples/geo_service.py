#!/usr/bin/env python3
"""A "nearby restaurants" back-end — the paper's Figure 1 scenario.

Front-end web servers receive "find restaurants near me" requests and
forward small-scope spatial queries to an R-tree back-end.  This example
builds that back-end three ways — TCP/1GbE, FaRM-style fast messaging and
Catfish — and ramps up the number of front-end clients to show where each
design saturates.

This is the CPU-bound workload of the paper's Fig 2(b)/Fig 10(a): tiny
result sets, so the server link stays idle while server cores melt.
"""

import random

from repro import ExperimentConfig, run_experiment
from repro.rtree import Rect


def build_city_pois(n=30_000, seed=7):
    """Points of interest clustered around a few 'city centres'."""
    rng = random.Random(seed)
    centres = [(rng.random(), rng.random()) for _ in range(12)]
    items = []
    for i in range(n):
        cx, cy = centres[rng.randrange(len(centres))]
        x = min(max(rng.gauss(cx, 0.05), 0.0), 0.999)
        y = min(max(rng.gauss(cy, 0.05), 0.0), 0.999)
        size = rng.uniform(1e-5, 1e-4)
        items.append((Rect(x, y, x + size, y + size), i))
    return items


def main():
    pois = build_city_pois()
    print(f"serving {len(pois)} points of interest")
    print(f"{'clients':>8} {'scheme':>16} {'fabric':>8} {'Kops':>8} "
          f"{'mean_us':>9} {'p99_us':>9} {'offload':>8}")

    for n_clients in (8, 24, 48):
        for scheme, fabric in (
            ("tcp", "eth-1g"),
            ("fast-messaging", "ib-100g"),
            ("catfish", "ib-100g"),
        ):
            result = run_experiment(ExperimentConfig(
                scheme=scheme,
                fabric=fabric,
                n_clients=n_clients,
                requests_per_client=80,
                scale="0.0005",   # "walking distance" queries
                dataset=pois,
                server_cores=8,
                heartbeat_interval=0.5e-3,
                seed=1,
            ))
            print(f"{n_clients:>8} {scheme:>16} {fabric:>8} "
                  f"{result.throughput_kops:>8.1f} "
                  f"{result.mean_latency_us:>9.1f} "
                  f"{result.p99_latency_us:>9.1f} "
                  f"{result.offload_fraction * 100:>7.1f}%")
        print()

    print("Note how Catfish tracks fast messaging while the server has "
          "CPU headroom,\nthen peels searches off to client-side "
          "traversal as the cores saturate.")


if __name__ == "__main__":
    main()
