#!/usr/bin/env python3
"""Hurricane-path property monitoring — the paper's large-scope scenario.

"How many properties would be impaired in the area a hurricane will
pass?"  Queries cover a large fraction of the map, so every request drags
hundreds of rectangles back to the client: the *bandwidth-intensive*
regime of the paper's Fig 2(a)/Fig 10(b).

The example shows two things:

1. on 1 GbE the server link saturates long before the CPU — exactly the
   motivation measurement of the paper;
2. on InfiniBand, RDMA offloading is the *wrong* tool here (fetching tree
   chunks costs far more bandwidth than the response), and Catfish
   correctly stays on fast messaging.
"""

from repro import ExperimentConfig, run_experiment
from repro.workloads import uniform_dataset


def main():
    properties = uniform_dataset(30_000, max_edge=5e-4, seed=3)
    print(f"monitoring {len(properties)} properties")

    print("\n--- 1. The 1 GbE bottleneck (paper Fig 2a) ---")
    print(f"{'clients':>8} {'Kops':>8} {'cpu':>7} {'link':>7}")
    for n_clients in (4, 8, 16, 32):
        result = run_experiment(ExperimentConfig(
            scheme="tcp",
            fabric="eth-1g",
            n_clients=n_clients,
            requests_per_client=40,
            scale="0.08",  # hurricane-sized areas
            dataset=properties,
            seed=2,
        ))
        print(f"{n_clients:>8} {result.throughput_kops:>8.1f} "
              f"{result.server_cpu_utilization * 100:>6.1f}% "
              f"{result.server_bandwidth_utilization * 100:>6.1f}%")
    print("the link hits 100% while the CPU idles -> faster NICs, not "
          "more cores,\nare what this workload needs")

    print("\n--- 2. Offloading is wrong for wide queries (Fig 10b) ---")
    print(f"{'scheme':>18} {'Kops':>8} {'mean_us':>9} {'offload':>8} "
          f"{'gbps':>7}")
    for scheme in ("fast-messaging-event", "rdma-offloading", "catfish"):
        result = run_experiment(ExperimentConfig(
            scheme=scheme,
            fabric="ib-100g",
            n_clients=32,
            requests_per_client=60,
            scale="0.08",
            dataset=properties,
            server_cores=28,
            heartbeat_interval=0.5e-3,
            seed=2,
        ))
        print(f"{scheme:>18} {result.throughput_kops:>8.1f} "
              f"{result.mean_latency_us:>9.1f} "
              f"{result.offload_fraction * 100:>7.1f}% "
              f"{result.server_bandwidth_gbps:>7.2f}")
    print("offloading drags whole 4 KB tree chunks per node while the "
          "answer itself\nis smaller — Catfish notices the idle CPU and "
          "keeps the searches server-side")


if __name__ == "__main__":
    main()
