#!/usr/bin/env python3
"""Quickstart: build an R-tree, run one Catfish experiment, read results.

Runs in a few seconds.  Two parts:

1. the R*-tree as a plain library (no simulation) — insert, search,
   delete;
2. a full client-server experiment on the simulated 100 Gb InfiniBand
   fabric comparing Catfish with the fast-messaging baseline.
"""

from repro import ExperimentConfig, RStarTree, Rect, run_experiment


def part1_plain_rtree():
    print("=" * 64)
    print("Part 1 — the R*-tree as a library")
    print("=" * 64)

    tree = RStarTree(max_entries=16)
    # A few shops around town (unit-square coordinates).
    shops = {
        1: Rect(0.20, 0.30, 0.21, 0.31),
        2: Rect(0.22, 0.29, 0.23, 0.30),
        3: Rect(0.80, 0.80, 0.82, 0.81),
        4: Rect(0.50, 0.50, 0.51, 0.52),
    }
    for shop_id, rect in shops.items():
        tree.insert(rect, shop_id)

    nearby = tree.search(Rect(0.15, 0.25, 0.30, 0.35))
    print(f"shops near the town centre: {sorted(nearby.data_ids)}")
    print(f"tree height: {tree.height}, nodes: {tree.node_count}")

    tree.delete(shops[2], 2)
    nearby = tree.search(Rect(0.15, 0.25, 0.30, 0.35))
    print(f"after closing shop 2:       {sorted(nearby.data_ids)}")


def part2_catfish_experiment():
    print()
    print("=" * 64)
    print("Part 2 — Catfish vs fast messaging on simulated InfiniBand")
    print("=" * 64)

    shared = dict(
        fabric="ib-100g",
        n_clients=32,
        requests_per_client=100,
        scale="0.0001",          # small-scope searches: CPU-intensive
        dataset_size=20_000,
        server_cores=8,          # easy to saturate for the demo
        heartbeat_interval=0.5e-3,  # short demo: heartbeat often
        seed=42,
    )
    fm = run_experiment(ExperimentConfig(scheme="fast-messaging", **shared))
    catfish = run_experiment(ExperimentConfig(scheme="catfish", **shared))

    print(f"{'scheme':>16} {'Kops':>8} {'mean latency':>13} "
          f"{'server CPU':>11} {'offloaded':>10}")
    for r in (fm, catfish):
        print(f"{r.scheme:>16} {r.throughput_kops:>8.1f} "
              f"{r.mean_latency_us:>11.1f}us "
              f"{r.server_cpu_utilization * 100:>10.1f}% "
              f"{r.offload_fraction * 100:>9.1f}%")
    speedup = catfish.throughput_kops / fm.throughput_kops
    print(f"\nCatfish speedup over fast messaging: {speedup:.2f}x")


if __name__ == "__main__":
    part1_plain_rtree()
    part2_catfish_experiment()
