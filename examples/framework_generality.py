#!/usr/bin/env python3
"""Catfish as a framework (paper §VI): R-tree, B+tree and cuckoo hashing.

"Catfish is a framework for accessing link-based data structures over
RDMA, such as B+tree and Cuckoo hashing, and R-tree."  This example runs
all three behind the *same* ring buffers, verbs layer and Algorithm 1
client, and contrasts their offloading profiles:

* R-tree search   — a few RTTs, wide fan-out (multi-issue shines);
* B+tree get      — height RTTs down one path; scans go level-wise;
* cuckoo get      — exactly one RTT (both candidate buckets in parallel).
"""

import random

from repro.btree import (
    BTreeOffloadEngine,
    BTreeService,
    KvFmSession,
    KvRequest,
    OP_GET,
)
from repro.client import ClientStats, OffloadEngine
from repro.cuckoo import CuckooOffloadEngine, CuckooService
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import EVENT, FastMessagingServer, RTreeServer
from repro.sim import Simulator
from repro.workloads import uniform_dataset


def run_structure(name):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=8)
    net.attach_server(server_host)
    rng = random.Random(1)
    keys = rng.sample(range(10**6), 20_000)

    if name == "r-tree":
        service = RTreeServer(sim, server_host,
                              uniform_dataset(20_000, seed=1))
    elif name == "b+tree":
        service = BTreeService(sim, server_host,
                               [(k, k + 1) for k in keys])
    else:
        service = CuckooService(sim, server_host,
                                [(k, k + 1) for k in keys],
                                n_buckets=16_384)

    fm_server = FastMessagingServer(sim, service, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()

    if name == "r-tree":
        engine = OffloadEngine(sim, conn.client_end,
                               service.offload_descriptor(),
                               service.costs, stats)

        def one_op():
            x = rng.random() * 0.99
            result = yield from engine.search(
                Rect(x, x, min(x + 0.002, 1.0), min(x + 0.002, 1.0)))
            return result
        reads_done = lambda: engine.chunks_fetched + engine.meta_reads
    elif name == "b+tree":
        engine = BTreeOffloadEngine(sim, conn.client_end,
                                    service.offload_descriptor(),
                                    service.costs, stats)

        def one_op():
            result = yield from engine.get(rng.choice(keys))
            return result
        reads_done = lambda: engine.chunks_fetched + engine.meta_reads
    else:
        engine = CuckooOffloadEngine(sim, conn.client_end,
                                     service.descriptor(),
                                     service.costs, stats)

        def one_op():
            result = yield from engine.get(rng.choice(keys))
            return result
        reads_done = lambda: engine.buckets_fetched

    n_ops = 300

    def client():
        t0 = sim.now
        for _ in range(n_ops):
            yield from one_op()
        return (sim.now - t0) / n_ops

    p = sim.process(client())
    sim.run_until_triggered(p)
    mean_latency_us = p.value * 1e6
    reads_per_op = reads_done() / n_ops
    server_cpu = server_host.cpu.total_work_seconds
    return mean_latency_us, reads_per_op, server_cpu


def main():
    print("One client, 20k items each, all reads offloaded one-sidedly:\n")
    print(f"{'structure':>10} {'mean_us':>9} {'reads/op':>9} "
          f"{'server_cpu_s':>13}")
    for name in ("r-tree", "b+tree", "cuckoo"):
        latency, reads, cpu = run_structure(name)
        print(f"{name:>10} {latency:>9.2f} {reads:>9.2f} {cpu:>13.6f}")
    print("\nSame framework, three structures: the cuckoo GET needs a "
          "single round trip\n(both candidate buckets fetched "
          "concurrently), the trees pay one wave per level —\nand none "
          "of them consume a single server CPU cycle.")


if __name__ == "__main__":
    main()
