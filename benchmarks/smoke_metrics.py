"""Smoke check for the metrics export pipeline.

Runs one short adaptive experiment end to end, writes the
``catfish-metrics/v1`` artifact, reads it back and asserts the fields
every downstream consumer (figure scripts, CI dashboards) depends on:
non-zero request counts, latency percentiles and heartbeat stats.

Usable both ways::

    PYTHONPATH=src python benchmarks/smoke_metrics.py [out.json]
    PYTHONPATH=src python -m pytest benchmarks/smoke_metrics.py
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro import ExperimentConfig, load_metrics_json, run_experiment
from repro.obs import SCHEMA, write_metrics_json


def run_smoke(path: str) -> dict:
    """Run a short catfish experiment and round-trip its metrics JSON."""
    result = run_experiment(ExperimentConfig(
        scheme="catfish",
        fabric="ib-100g",
        n_clients=4,
        requests_per_client=100,
        workload_kind="hybrid",
        dataset_size=5_000,
        heartbeat_interval=0.1e-3,
        collect_timeline=True,
        trace=True,
        seed=1,
    ))
    write_metrics_json(path, result.metrics)
    return load_metrics_json(path)


def check_document(doc: dict) -> None:
    assert doc["schema"] == SCHEMA, doc.get("schema")
    metrics = doc["metrics"]

    # Request counters: every request accounted for, none lost.
    requests = metrics["client.requests_sent"]["value"]
    assert requests == 400, requests
    split = (metrics["client.fast_messaging_requests"]["value"]
             + metrics["client.offloaded_requests"]["value"])
    assert split == requests, (split, requests)

    # Latency percentiles present, positive and ordered, and the
    # histogram carries its driver-loop tag (closed-loop drivers here;
    # the traffic layer emits "open" sojourn histograms).
    lat = metrics["client.latency_us"]
    assert lat["count"] == requests
    assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["p999"], lat
    assert lat["loop"] == "closed", lat

    # Heartbeat stats: the service ran and clients consumed beats.
    assert metrics["heartbeat.beats_sent"]["value"] > 0
    assert metrics["adaptive.heartbeats_consumed"]["value"] > 0

    # Server-side accounting and the sim-clock series.
    assert metrics["server.requests_handled"]["value"] > 0
    assert len(metrics["series.cpu_utilization"]["points"]) > 0

    # Trace spans were recorded and bounded-ring accounting holds.
    trace = doc["trace"]
    assert trace["total_events"] > 0
    assert trace["dropped_events"] >= 0
    assert trace["events"], "trace events truncated to nothing"


def test_metrics_smoke(tmp_path):
    doc = run_smoke(str(tmp_path / "metrics.json"))
    check_document(doc)


def main(argv) -> int:
    if len(argv) > 1:
        path = argv[1]
    else:
        path = os.path.join(tempfile.gettempdir(), "catfish_smoke.json")
    doc = run_smoke(path)
    check_document(doc)
    n = len(doc["metrics"])
    print(f"ok: {n} metrics, {doc['trace']['total_events']} trace events "
          f"-> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
