"""Paper Fig 2 — motivation: where are the bottlenecks on TCP/1GbE?

Reproduces the two panels: server CPU utilization and consumed server
bandwidth vs the number of clients, for a large-scope workload (paper
scale 0.01, bandwidth-intensive) and a small-scope workload (paper scale
0.00001, CPU-intensive).

Expected shape: at the large scale the server link saturates (bandwidth
utilization -> 1) while the CPU stays lightly used; at the small scale
CPU utilization is the high/limiting resource while bandwidth stays well
below saturation.
"""

from conftest import preset, print_figure, run_point

CLIENTS = (2, 4, 8, 16, 32)


def _sweep(paper_scale):
    rows = []
    for n in CLIENTS:
        result = run_point(
            scheme="tcp",
            fabric="eth-1g",
            n_clients=n,
            paper_scale=paper_scale,
        )
        rows.append([
            str(n),
            f"{result.server_cpu_utilization:.3f}",
            f"{result.server_bandwidth_gbps:.3f}",
            f"{result.server_bandwidth_utilization:.3f}",
            f"{result.throughput_kops:.1f}",
        ])
    return rows


def test_fig02a_bandwidth_bound(benchmark):
    """Panel (a): scale 0.01 — bandwidth saturates before the CPU."""
    rows = benchmark.pedantic(
        lambda: _sweep("0.01"), rounds=1, iterations=1
    )
    print_figure(
        "Fig 2(a)  TCP/1GbE, scale 0.01 (bandwidth-intensive)",
        ["clients", "cpu_util", "gbps", "bw_util", "kops"],
        rows,
    )
    last = rows[-1]
    cpu_util, bw_util = float(last[1]), float(last[3])
    assert bw_util > 0.5, "the server link should approach saturation"
    assert bw_util > cpu_util, "bandwidth, not CPU, must be the bottleneck"


def test_fig02b_cpu_bound(benchmark):
    """Panel (b): scale 0.00001 — CPU is the scarce resource."""
    rows = benchmark.pedantic(
        lambda: _sweep("0.00001"), rounds=1, iterations=1
    )
    print_figure(
        "Fig 2(b)  TCP/1GbE, scale 0.00001 (CPU-intensive)",
        ["clients", "cpu_util", "gbps", "bw_util", "kops"],
        rows,
    )
    last = rows[-1]
    cpu_util, bw_util = float(last[1]), float(last[3])
    assert cpu_util > bw_util, "CPU, not bandwidth, must be the bottleneck"
    assert bw_util < 0.9, "bandwidth must not saturate in the CPU-bound case"
