"""Ablation — the paper's future-work ideas, implemented and measured.

§V-B observes that under *constant* overload Algorithm 1 keeps bouncing
clients back to fast messaging (it must probe to learn the server is
still busy) and suggests (a) smarter utilization prediction (§VI) and
(b) learned mode selection.  This bench compares, at a sustained
CPU-saturating operating point:

* ``catfish``        — Algorithm 1 with the paper's predUtil (latest);
* ``catfish-ewma``   — damped prediction;
* ``catfish-trend``  — extrapolating prediction;
* ``catfish-bandit`` — ε-greedy latency bandit (no heartbeats at all).
"""

from conftest import preset, print_figure, run_point

VARIANTS = ("catfish", "catfish-ewma", "catfish-trend", "catfish-bandit")


def test_ablation_future_work_selectors(benchmark):
    p = preset()
    n = p.client_sweep[-1]

    def run():
        return {
            scheme: run_point(
                scheme=scheme,
                fabric="ib-100g",
                n_clients=n,
                paper_scale="0.00001",
                seed=9,
                server_cores=14,  # sustained saturation
            )
            for scheme in VARIANTS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [scheme,
         f"{r.throughput_kops:.1f}",
         f"{r.mean_latency_us:.1f}",
         f"{r.offload_fraction * 100:.1f}%",
         f"{r.server_cpu_utilization * 100:.1f}%",
         str(r.heartbeats_sent)]
        for scheme, r in results.items()
    ]
    print_figure(
        f"Ablation  mode-selection policies under sustained overload "
        f"({n} clients, 14 cores)",
        ["policy", "kops", "mean_us", "offload", "cpu", "beats"],
        rows,
    )
    base = results["catfish"]
    bandit = results["catfish-bandit"]
    # The bandit needs no heartbeats yet stays competitive (within 25%)
    # or better — the paper's conjecture that learning can replace the
    # heuristic under sustained overload.
    assert bandit.heartbeats_sent == 0
    assert bandit.throughput_kops > base.throughput_kops * 0.75
    # All policies keep the scheme functional.
    for r in results.values():
        assert r.total_requests == n * p.requests_per_client
