"""Smoke check for the fault-injection chaos harness.

Runs two representative scenarios at reduced load — one active-fault
scenario (``worker-crash``) and one passive-fault scenario
(``link-loss``) — and asserts the properties the full ``repro chaos``
sweep is built on: every invariant green, the fault demonstrably fired,
and the outcome fingerprint replays bit-identically at a fixed seed.

Usable both ways::

    PYTHONPATH=src python benchmarks/smoke_chaos.py
    PYTHONPATH=src python -m pytest benchmarks/smoke_chaos.py
"""

from __future__ import annotations

import sys

from repro.faults import run_scenario

#: Reduced load: same structure as the default sweep, a few times faster.
FAST = dict(n_clients=2, requests_per_client=150, dataset_size=1000)

SCENARIOS = ("worker-crash", "link-loss")


def run_smoke(name: str, seed: int = 0):
    report = run_scenario(name, seed=seed, **FAST)
    assert report.ok, (name, report.failures)
    assert report.completed == report.issued, (report.completed,
                                               report.issued)
    # The scenario's fault actually injected (not a vacuous pass).
    fired = [n for n, ok, _d in report.invariants
             if n.startswith("fault-fired:")]
    assert fired, "scenario declares no fault-fired checks"
    # Deterministic replay: the harness is seed-stable end to end.
    again = run_scenario(name, seed=seed, **FAST)
    assert report.fingerprint() == again.fingerprint(), name
    return report


def test_chaos_smoke_worker_crash():
    report = run_smoke("worker-crash")
    assert report.counters["workers-crashed"] >= 1
    assert report.counters["workers-restarted"] >= 1


def test_chaos_smoke_link_loss():
    report = run_smoke("link-loss")
    # Losses surface as retransmit latency, not client-visible retries.
    assert report.counters["packets-dropped"] >= 1
    assert report.mismatches == 0


def main(argv) -> int:
    for name in SCENARIOS:
        report = run_smoke(name)
        print(f"ok: {name} seed={report.seed} issued={report.issued} "
              f"retries={report.retries} "
              f"fingerprint={report.fingerprint()}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
