"""Ablation — skewed access patterns aggravate the bottlenecks.

The paper's introduction: "such bottlenecks will be further aggravated by
skew access patterns in real workloads [4]".  This bench compares the
uniform hybrid workload against one whose searches cluster on Zipf
hotspots (colliding with the corner-skewed insert stream) and checks the
aggravation is visible in the mechanisms that mediate it:

* on the server path: read/write lock contention -> higher latency;
* on the offload path: torn-read retries go up.
"""

from conftest import preset, print_figure, run_point


def _pair(scheme, workload, seed=12):
    p = preset()
    return run_point(
        scheme=scheme,
        fabric="ib-100g",
        n_clients=p.client_sweep[-1],
        paper_scale="0.00001",
        workload_kind=workload,
        insert_fraction=0.2,
        seed=seed,
    )


def test_ablation_skew_aggravates_bottlenecks(benchmark):
    def run():
        out = {}
        for scheme in ("fast-messaging-event", "rdma-offloading",
                       "catfish"):
            out[(scheme, "uniform")] = _pair(scheme, "hybrid")
            out[(scheme, "skewed")] = _pair(scheme, "hybrid-skewed")
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (scheme, kind), r in results.items():
        rows.append([
            scheme,
            kind,
            f"{r.throughput_kops:.1f}",
            f"{r.mean_latency_us:.1f}",
            str(r.torn_retries),
        ])
    print_figure(
        "Ablation  uniform vs Zipf-hotspot hybrid (20% inserts)",
        ["scheme", "searches", "kops", "mean_us", "torn"],
        rows,
    )
    # Offloading clients collide with the skewed insert stream more often.
    assert (results[("rdma-offloading", "skewed")].torn_retries
            >= results[("rdma-offloading", "uniform")].torn_retries)
    # Catfish still completes everything under skew.
    skew_catfish = results[("catfish", "skewed")]
    p = preset()
    assert skew_catfish.total_requests == (
        p.client_sweep[-1] * p.requests_per_client
    )
