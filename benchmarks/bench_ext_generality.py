"""Framework generality (paper §VI) — B+tree and cuckoo over Catfish.

Not a paper figure: the paper *claims* the framework generalizes to other
link-based structures; this bench demonstrates it quantitatively.

1. Offload profile per structure (reads per op, one-sided latency).
2. A miniature Fig-10-style comparison for the B+tree: fast messaging vs
   always-offload vs the adaptive client, under a CPU-saturating GET
   storm.
"""

import random

from conftest import print_figure

from repro import AdaptiveParams
from repro.btree import (
    BTreeOffloadEngine,
    BTreeService,
    KvCatfishSession,
    KvFmSession,
    KvOffloadSession,
    KvRequest,
    OP_GET,
)
from repro.client import ClientStats
from repro.cuckoo import CuckooOffloadEngine, CuckooService
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.server import EVENT, FastMessagingServer, HeartbeatService
from repro.sim import Simulator, all_of


def _offload_profile(structure, n_items=20_000, n_ops=200):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=8)
    net.attach_server(server_host)
    rng = random.Random(1)
    keys = rng.sample(range(10**6), n_items)
    items = [(k, k + 1) for k in keys]

    if structure == "b+tree":
        service = BTreeService(sim, server_host, items)
        fm_server = FastMessagingServer(sim, service, net, mode=EVENT)
        conn = fm_server.open_connection(Host(sim, "c", IB_100G, cores=2))
        stats = ClientStats()
        engine = BTreeOffloadEngine(sim, conn.client_end,
                                    service.offload_descriptor(),
                                    service.costs, stats)
        reads = lambda: engine.chunks_fetched + engine.meta_reads
    else:
        service = CuckooService(sim, server_host, items, n_buckets=16_384)
        fm_server = FastMessagingServer(sim, service, net, mode=EVENT)
        conn = fm_server.open_connection(Host(sim, "c", IB_100G, cores=2))
        stats = ClientStats()
        engine = CuckooOffloadEngine(sim, conn.client_end,
                                     service.descriptor(),
                                     service.costs, stats)
        reads = lambda: engine.buckets_fetched

    def client():
        t0 = sim.now
        for _ in range(n_ops):
            yield from engine.get(rng.choice(keys))
        return (sim.now - t0) / n_ops

    p = sim.process(client())
    sim.run_until_triggered(p)
    return {
        "latency_us": p.value * 1e6,
        "reads_per_op": reads() / n_ops,
        "server_cpu": server_host.cpu.total_work_seconds,
    }


def test_offload_profiles(benchmark):
    def run():
        return {s: _offload_profile(s) for s in ("b+tree", "cuckoo")}

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name,
         f"{p['latency_us']:.2f}",
         f"{p['reads_per_op']:.2f}",
         f"{p['server_cpu']:.6f}"]
        for name, p in profiles.items()
    ]
    print_figure(
        "Ext  one-sided access profile per structure (1 client)",
        ["structure", "mean_us", "reads/op", "server_cpu_s"],
        rows,
    )
    # Cuckoo is a single round trip: 2 reads, well under the tree latency.
    assert profiles["cuckoo"]["reads_per_op"] == 2.0
    assert profiles["cuckoo"]["latency_us"] < profiles["b+tree"]["latency_us"]
    # Offloading never touches the server CPU, whatever the structure.
    assert all(p["server_cpu"] == 0.0 for p in profiles.values())


def _btree_cluster(scheme, n_clients=24, n_ops=120, n_items=20_000):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=4)
    net.attach_server(server_host)
    rng = random.Random(2)
    keys = rng.sample(range(10**6), n_items)
    service = BTreeService(sim, server_host, [(k, k + 1) for k in keys])
    fm_server = FastMessagingServer(sim, service, net, mode=EVENT)
    heartbeats = HeartbeatService(
        sim, server_host.cpu.window_utilization, interval=0.2e-3
    )

    all_stats = []
    drivers = []
    for i in range(n_clients):
        host = Host(sim, f"c{i}", IB_100G, cores=2)
        conn = fm_server.open_connection(host)
        stats = ClientStats()
        fm = KvFmSession(sim, conn, i, stats)
        heartbeats.subscribe(conn.response_ring,
                             lambda hb, c=conn: c.server_post_response(hb))
        engine = BTreeOffloadEngine(sim, conn.client_end,
                                    service.offload_descriptor(),
                                    service.costs, stats)
        if scheme == "fast-messaging":
            session = fm
        elif scheme == "offload":
            session = KvOffloadSession(engine, fm, stats)
        else:
            session = KvCatfishSession(
                sim, fm, engine, stats,
                params=AdaptiveParams(N=8, T=0.95, Inv=0.2e-3),
                rng=random.Random(100 + i),
            )
        crng = random.Random(200 + i)

        def driver(session=session, crng=crng, stats=stats):
            for _ in range(n_ops):
                t0 = sim.now
                yield from session.execute(
                    KvRequest(OP_GET, key=crng.choice(keys)))
                stats.latency.record(sim.now - t0)
                stats.requests_sent += 1

        drivers.append(sim.process(driver()))
        all_stats.append(stats)
    heartbeats.start()
    sim.run_until_triggered(all_of(sim, drivers))
    total = sum(s.requests_sent for s in all_stats)
    kops = total / sim.now / 1e3
    mean_us = (sum(sum(s.latency.samples) for s in all_stats)
               / total * 1e6)
    offloaded = sum(s.offloaded_requests for s in all_stats)
    return {"kops": kops, "mean_us": mean_us,
            "offload": offloaded / total}


def test_btree_catfish_beats_baselines(benchmark):
    def run():
        return {s: _btree_cluster(s)
                for s in ("fast-messaging", "offload", "catfish")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{r['kops']:.1f}", f"{r['mean_us']:.1f}",
         f"{r['offload'] * 100:.1f}%"]
        for name, r in results.items()
    ]
    print_figure(
        "Ext  B+tree GETs, 24 clients on a 4-core server",
        ["scheme", "kops", "mean_us", "offload"],
        rows,
    )
    assert results["catfish"]["kops"] > results["fast-messaging"]["kops"]
    assert 0.0 < results["catfish"]["offload"] < 1.0
