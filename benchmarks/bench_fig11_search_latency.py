"""Paper Fig 11 — latency, 100% search workloads.

Same experiment grid as Fig 10 (the session cache shares the runs);
reports the mean request latency per scheme.  Expected shape: both TCP
baselines have order-of-magnitude higher latency (kernel path), fast
messaging degrades sharply with load, RDMA offloading stays flat and low,
and Catfish tracks the best of both.
"""

import pytest

from bench_fig10_search_throughput import (
    PAPER_SCALES,
    SCHEME_FABRICS,
    headers,
    rows_from,
    sweep,
)
from conftest import preset, print_figure


@pytest.mark.parametrize("paper_scale", PAPER_SCALES)
def test_fig11_latency(benchmark, paper_scale):
    grid = benchmark.pedantic(
        lambda: sweep(paper_scale), rounds=1, iterations=1
    )
    print_figure(
        f"Fig 11  mean search latency (us), scale {paper_scale}",
        headers(),
        rows_from(grid, lambda r: r.mean_latency_us),
    )
    max_clients = preset().client_sweep[-1]

    def latency(scheme, fabric):
        return grid[(scheme, fabric, max_clients)].mean_latency_us

    catfish = latency("catfish", "ib-100g")
    fm = latency("fast-messaging", "ib-100g")
    tcp1g = latency("tcp", "eth-1g")
    tcp40g = latency("tcp", "eth-40g")

    # Catfish must beat fast messaging and both TCP baselines.
    assert catfish < fm
    assert catfish < tcp1g
    assert catfish < tcp40g
    # TCP over 1 GbE is the worst (paper: up to 24.46x over Catfish).
    assert tcp1g > 2 * catfish
