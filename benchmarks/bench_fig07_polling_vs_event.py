"""Paper Fig 7 — polling- vs event-based fast messaging under
oversubscription.

The paper runs 80-320 client connections against 28 server cores (ratios
2.9x-11.4x) and finds: polling latency grows ~quadratically (203 us at 80
clients -> 3712 us at 320, 18x), event-based grows ~linearly (152 us ->
680 us, 4.5x).  The preset shrinks client counts and cores together so the
oversubscription ratios match the paper's exactly.
"""

from conftest import preset, print_figure, run_point


def _sweep(scheme, paper_scale):
    p = preset()
    rows = []
    latencies = []
    for n in p.fig7_sweep:
        result = run_point(
            scheme=scheme,
            fabric="ib-100g",
            n_clients=n,
            paper_scale=paper_scale,
            server_cores=p.fig7_cores,
        )
        rows.append([
            str(n),
            f"{result.mean_latency_us:.1f}",
            f"{result.p99_latency_us:.1f}",
            f"{result.throughput_kops:.1f}",
        ])
        latencies.append(result.mean_latency_us)
    return rows, latencies


def test_fig07a_small_scale(benchmark):
    """Scale 0.00001 (the CPU-bound panel the paper highlights)."""
    def run():
        polling = _sweep("fast-messaging", "0.00001")
        event = _sweep("fast-messaging-event", "0.00001")
        return polling, event

    (poll_rows, poll_lat), (event_rows, event_lat) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_figure(
        "Fig 7(a)  polling-based fast messaging, scale 0.00001",
        ["clients", "mean_us", "p99_us", "kops"], poll_rows,
    )
    print_figure(
        "Fig 7(a)  event-based fast messaging, scale 0.00001",
        ["clients", "mean_us", "p99_us", "kops"], event_rows,
    )
    # Event-based beats polling at every oversubscribed point.
    assert all(e < p for p, e in zip(poll_lat, event_lat))
    # Polling degrades super-linearly: 4x the clients, >> 4x the latency
    # growth relative to event-based.
    poll_growth = poll_lat[-1] / poll_lat[0]
    event_growth = event_lat[-1] / event_lat[0]
    assert poll_growth > event_growth


def test_fig07b_large_scale(benchmark):
    """Scale 0.01 (the bandwidth-heavier panel)."""
    def run():
        polling = _sweep("fast-messaging", "0.01")
        event = _sweep("fast-messaging-event", "0.01")
        return polling, event

    (poll_rows, poll_lat), (event_rows, event_lat) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_figure(
        "Fig 7(b)  polling-based fast messaging, scale 0.01",
        ["clients", "mean_us", "p99_us", "kops"], poll_rows,
    )
    print_figure(
        "Fig 7(b)  event-based fast messaging, scale 0.01",
        ["clients", "mean_us", "p99_us", "kops"], event_rows,
    )
    assert all(e < p for p, e in zip(poll_lat, event_lat))
