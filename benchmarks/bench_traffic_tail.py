"""Tail latency under open-loop load: the repro.traffic acceptance run.

Four claims, all beyond the paper's closed-loop figures:

1. **Saturation curve** — sweeping the offered rate over one deployment,
   achieved throughput tracks offered (within tolerance) until the
   service saturates, then plateaus while the mux sheds the excess at
   its queue-depth watermark; sojourn percentiles stay ordered
   (p50 <= p95 <= p99 <= p99.9) and bounded by the watermark queue.
2. **Flash crowd** — the ``flash-crowd`` chaos scenario is green: the
   mux watermark and the server overload guard both shed during the
   spike, shedding stops afterwards, throughput recovers, and the whole
   run replays to a bit-identical fingerprint.
3. **Sharded** — the same open-loop harness drives a K=4 sharded
   deployment through scatter-gather routers; conservation holds and
   achieved tracks offered at a sub-saturation rate.
4. **Million users** — >= 2^20 virtual users (64 aggregates x 16384)
   run in bounded wall-clock: aggregation cost scales with *arrivals*,
   not with the user population.

Usable both ways::

    PYTHONPATH=src python benchmarks/bench_traffic_tail.py [--smoke]
    PYTHONPATH=src python -m pytest benchmarks/bench_traffic_tail.py
"""

from __future__ import annotations

import sys
import time

from repro import ExperimentConfig
from repro.faults import run_scenario
from repro.traffic import TrafficConfig
from repro.traffic.harness import TrafficResult, rate_sweep, run_traffic

#: Below saturation, achieved must stay within this fraction of offered.
TRACKING_TOLERANCE = 0.15
#: Above saturation, achieved must stop growing: the top rate's achieved
#: throughput may exceed the knee's by at most this factor.
PLATEAU_FACTOR = 1.25
#: The million-user stage must finish within this wall-clock budget.
MILLION_USER_WALL_S = 30.0

#: Offered rates (arrivals/s).  The 4-session deployment below
#: saturates around ~300k/s, so the sweep brackets the knee.
SWEEP_RATES = (50_000.0, 150_000.0, 600_000.0, 1_200_000.0)
SWEEP_SUBSATURATED = 2  # first N rates must track offered


def _base_config(**traffic_kw) -> ExperimentConfig:
    traffic = TrafficConfig(
        kind="poisson",
        duration_s=2e-3,
        n_aggregates=4,
        users_per_aggregate=1000,
        sessions=4,
        queue_watermark=64,
        window=256,
        **traffic_kw,
    )
    return ExperimentConfig(
        scheme="fast-messaging-event",
        fabric="ib-100g",
        dataset_size=2_000,
        seed=0,
        traffic=traffic,
    )


def _check_conservation(result: TrafficResult) -> None:
    accounted = (result.completed + result.failed
                 + result.shed_client_total)
    assert accounted == result.arrivals, (
        f"{result.arrivals} arrivals != {result.completed} completed + "
        f"{result.failed} failed + {result.shed_client_total} shed"
    )


def run_sweep_stage(smoke: bool = False) -> list:
    # The sweep is cheap even at full size (milliseconds of simulated
    # time per point); smoke keeps all four rates so the knee/plateau
    # pair is always present.
    results = rate_sweep(_base_config(), list(SWEEP_RATES))
    for result in results:
        _check_conservation(result)
        assert (result.sojourn_p50_us <= result.sojourn_p95_us
                <= result.sojourn_p99_us <= result.sojourn_p999_us), (
            "sojourn percentiles out of order", result.row())
    # Sub-saturated points track the offered rate.
    for result in results[:SWEEP_SUBSATURATED]:
        ratio = result.achieved_rps / result.offered_rps
        assert abs(1.0 - ratio) <= TRACKING_TOLERANCE, (
            f"offered {result.offered_rps:.0f}/s but achieved "
            f"{result.achieved_rps:.0f}/s (off by {abs(1 - ratio):.0%})"
        )
    # The top rate is past the knee: achieved has plateaued and the
    # watermark is visibly shedding the excess.
    knee, top = results[-2], results[-1]
    assert top.achieved_rps <= knee.achieved_rps * PLATEAU_FACTOR, (
        f"no plateau: {knee.achieved_rps:.0f} -> {top.achieved_rps:.0f}"
    )
    assert top.shed_watermark > knee.shed_watermark >= 0
    assert top.shed_client_total > 0
    return results


def run_flash_crowd_stage(seed: int = 0):
    report = run_scenario("flash-crowd", seed=seed)
    assert report.ok, report.failures
    fired = [n for n, ok, _d in report.invariants
             if n.startswith("fault-fired:")]
    assert len(fired) >= 3, "spike/shed checks missing"
    again = run_scenario("flash-crowd", seed=seed)
    assert report.fingerprint() == again.fingerprint(), "replay diverged"
    return report


def run_sharded_stage(smoke: bool = False) -> TrafficResult:
    config = _base_config(rate=100_000.0 if smoke else 200_000.0)
    config.n_shards = 4
    result = run_traffic(config)
    _check_conservation(result)
    assert result.n_shards == 4
    ratio = result.achieved_rps / result.offered_rps
    assert abs(1.0 - ratio) <= TRACKING_TOLERANCE, (
        f"sharded run off offered rate by {abs(1 - ratio):.0%}"
    )
    return result


def run_million_user_stage(smoke: bool = False) -> TrafficResult:
    config = ExperimentConfig(
        scheme="fast-messaging-event",
        fabric="ib-100g",
        dataset_size=2_000,
        seed=0,
        traffic=TrafficConfig(
            kind="poisson",
            rate=200_000.0 if smoke else 400_000.0,
            duration_s=2e-3,
            n_aggregates=64,
            users_per_aggregate=16_384,
            sessions=8,
            queue_watermark=256,
            window=64,
        ),
    )
    start = time.perf_counter()
    result = run_traffic(config)
    wall = time.perf_counter() - start
    assert result.users_total >= 1_000_000, result.users_total
    assert result.users_touched > 0
    assert result.completed > 0
    _check_conservation(result)
    assert wall <= MILLION_USER_WALL_S, (
        f"{result.users_total:,} users took {wall:.1f}s wall "
        f"(budget {MILLION_USER_WALL_S:.0f}s)"
    )
    return result


# -- pytest entry points ----------------------------------------------------

def test_traffic_saturation_smoke():
    run_sweep_stage(smoke=True)


def test_traffic_flash_crowd_smoke():
    run_flash_crowd_stage()


def test_traffic_sharded_smoke():
    run_sharded_stage(smoke=True)


def test_traffic_million_users_smoke():
    run_million_user_stage(smoke=True)


# -- CLI entry point --------------------------------------------------------

def main(argv) -> int:
    smoke = "--smoke" in argv[1:]
    print(f"== rate sweep ({'smoke' if smoke else 'full'}) ==")
    print(TrafficResult.header())
    for result in run_sweep_stage(smoke=smoke):
        print(result.row())

    print("\n== flash crowd (chaos scenario) ==")
    report = run_flash_crowd_stage()
    for line in report.describe():
        print(line)
    print(f"  fingerprint: {report.fingerprint()}")

    print("\n== sharded (K=4) ==")
    print(TrafficResult.header())
    print(run_sharded_stage(smoke=smoke).row())

    print("\n== million users ==")
    start = time.perf_counter()
    result = run_million_user_stage(smoke=smoke)
    wall = time.perf_counter() - start
    print(f"{result.users_total:,} virtual users, "
          f"{result.users_touched:,} touched, "
          f"{result.completed} completed in {wall:.2f}s wall")
    print("\nall traffic stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
