"""Paper Fig 10 — throughput, 100% search workloads.

Five schemes (TCP/1G, TCP/40G, fast messaging, RDMA offloading, Catfish)
swept over client counts at three request scales (0.00001, 0.01, power
law).  Expected shape: Catfish highest everywhere; at the small scale the
CPU-bound fast messaging collapses; at the large scale offloading wastes
bandwidth and falls behind fast messaging.

The runs are shared with bench_fig11 (latency) through the session cache.
"""

import pytest

from conftest import preset, print_figure, run_point

SCHEME_FABRICS = (
    ("tcp", "eth-1g"),
    ("tcp", "eth-40g"),
    ("fast-messaging", "ib-100g"),
    ("rdma-offloading", "ib-100g"),
    ("catfish", "ib-100g"),
)

PAPER_SCALES = ("0.00001", "0.01", "powerlaw")


def sweep(paper_scale):
    """All schemes x client counts for one scale; returns result grid."""
    grid = {}
    for scheme, fabric in SCHEME_FABRICS:
        for n in preset().client_sweep:
            grid[(scheme, fabric, n)] = run_point(
                scheme=scheme,
                fabric=fabric,
                n_clients=n,
                paper_scale=paper_scale,
            )
    return grid


def rows_from(grid, metric):
    rows = []
    for scheme, fabric in SCHEME_FABRICS:
        label = f"{scheme}@{fabric}"
        row = [label]
        for n in preset().client_sweep:
            row.append(f"{metric(grid[(scheme, fabric, n)]):.1f}")
        rows.append(row)
    return rows


def headers():
    return ["scheme"] + [str(n) for n in preset().client_sweep]


@pytest.mark.parametrize("paper_scale", PAPER_SCALES)
def test_fig10_throughput(benchmark, paper_scale):
    grid = benchmark.pedantic(
        lambda: sweep(paper_scale), rounds=1, iterations=1
    )
    print_figure(
        f"Fig 10  search throughput (Kops), scale {paper_scale}",
        headers(),
        rows_from(grid, lambda r: r.throughput_kops),
    )
    max_clients = preset().client_sweep[-1]

    def kops(scheme, fabric):
        return grid[(scheme, fabric, max_clients)].throughput_kops

    catfish = kops("catfish", "ib-100g")
    fm = kops("fast-messaging", "ib-100g")
    offload = kops("rdma-offloading", "ib-100g")
    tcp1g = kops("tcp", "eth-1g")
    tcp40g = kops("tcp", "eth-40g")

    # The paper's headline ordering at full load: Catfish wins.
    assert catfish > fm
    assert catfish > offload
    assert catfish > tcp1g and catfish > tcp40g
    if paper_scale == "0.00001":
        # CPU-bound: fast messaging saturates (it stops scaling between
        # the last two client counts) while Catfish keeps scaling.  The
        # paper's full FM *collapse* below TCP/1G needs the 256-connection
        # oversubscription of the large preset.
        prev = grid[("fast-messaging", "ib-100g",
                     preset().client_sweep[-2])].throughput_kops
        assert fm < prev * 1.3, "fast messaging should have saturated"
        assert catfish > 1.3 * fm
    if paper_scale == "0.01":
        # Bandwidth-hungry offloading cannot help here (paper Fig 10b):
        # fast messaging is preferred.
        assert fm > offload
