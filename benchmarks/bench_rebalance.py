"""Elastic shard plane: skewed throughput recovers after auto-split.

Three claims, all beyond the paper's static-partition figures:

1. **Skew recovery** — a K=4 deployment fed quadrant-concentrated
   queries starts with one hot shard.  With the rebalance controller on,
   tile splits + live migration spread the hot quadrant across shards
   and the *tail-window* throughput (second half of the run, after the
   splits land) recovers to >= 70% of the uniform-workload baseline.
   The static plane stays pinned on the hot shard and stays below that
   bar.  Every logged read still matches a single-tree oracle exactly
   (epoch-aware re-scatter absorbs the cut-overs; duplicates from
   overlapping scatter sets are dropped before the client sees them).
2. **Oracle under churn** — the verification pass replays every
   recorded result against a bulk-loaded reference tree; zero
   mismatches even though queries raced splits, cut-overs, and
   migration drains.
3. **Open loop** — the same controller under the ``repro.traffic``
   harness (Poisson arrivals, hotspot-skewed query centres, K=4):
   splits fire from live load with open-loop conservation intact
   (arrivals == completed + failed + shed).

Usable both ways::

    PYTHONPATH=src python benchmarks/bench_rebalance.py [--smoke]
    PYTHONPATH=src python -m pytest benchmarks/bench_rebalance.py
"""

from __future__ import annotations

import random
import sys
from typing import List, Optional, Tuple

from repro.cluster.config import ExperimentConfig, RebalanceConfig
from repro.rtree.node import Rect
from repro.shard.deploy import ShardedExperimentRunner
from repro.shard.verify import verify_routed_results
from repro.traffic import TrafficConfig
from repro.traffic.harness import TrafficRunner

#: Recovery bar: rebalanced-skewed tail throughput vs uniform baseline.
RECOVERY_RATIO = 0.70

#: Controller tuning for the bench: cycle fast enough to split within
#: the run, demand a clear 2x hot/mean imbalance, and keep the drain
#: short so cleanup does not monopolise the 1-core source shard.
BENCH_REBALANCE = RebalanceConfig(
    interval=0.3e-3,
    split_ratio=2.0,
    min_split_items=16,
    drain_s=0.1e-3,
)


def make_queries(n: int = 400, scale: float = 0.03, seed: int = 7,
                 quadrant: bool = False) -> List[Rect]:
    """Fixed query set: ``n`` rects of side ``scale``, centres uniform in
    the unit square (or its lower-left quadrant for the skewed leg)."""
    rng = random.Random(seed)
    hi = 0.5 if quadrant else 1.0
    out = []
    for _ in range(n):
        cx, cy = rng.uniform(0.0, hi), rng.uniform(0.0, hi)
        out.append(Rect(max(cx - scale / 2, 0.0), max(cy - scale / 2, 0.0),
                        min(cx + scale / 2, 1.0), min(cy + scale / 2, 1.0)))
    return out


def _config(queries: List[Rect], rebalance: Optional[RebalanceConfig],
            requests: int) -> ExperimentConfig:
    return ExperimentConfig(
        scheme="fast-messaging-event",
        workload_kind="queries",
        queries=queries,
        n_clients=8,
        requests_per_client=requests,
        dataset_size=2_000,
        max_entries=16,
        server_cores=1,
        n_shards=4,
        seed=0,
        rebalance=rebalance,
    )


def _tail_kops(runner: ShardedExperimentRunner) -> float:
    """Throughput over the second half of the run (completions with
    t >= t_end/2).  The splits land early; the tail window measures the
    plane *after* it adapted, which is the recovery claim."""
    t_end = runner._elapsed_at_done
    t_mid = t_end / 2.0
    late = sum(1 for router in runner.routers
               for (_i, _req, _res, t) in router.log if t >= t_mid)
    return late / (t_end - t_mid) / 1e3


def _run_leg(queries: List[Rect], rebalance: Optional[RebalanceConfig],
             requests: int) -> Tuple[ShardedExperimentRunner, float, dict]:
    runner = ShardedExperimentRunner(_config(queries, rebalance, requests),
                                     record_results=True)
    result = runner.run()
    return runner, _tail_kops(runner), result.extra


def run_skew_recovery_stage(smoke: bool = False) -> List[str]:
    requests = 500 if smoke else 800
    uniform = make_queries()
    skewed = make_queries(quadrant=True)

    _, uniform_tail, _ = _run_leg(uniform, None, requests)
    static_runner, static_tail, _ = _run_leg(skewed, None, requests)
    rebal_runner, rebal_tail, extra = _run_leg(skewed, BENCH_REBALANCE,
                                               requests)

    splits = int(extra.get("rebalance_splits", 0))
    migrations = int(extra.get("rebalance_migrations_completed", 0))
    occupancy = [int(extra[f"shard{k}_items"]) for k in range(4)]
    assert splits > 0, "controller never split the hot shard"
    assert migrations > 0, "no migration completed"
    assert rebal_tail >= RECOVERY_RATIO * uniform_tail, (
        f"rebalanced skewed tail {rebal_tail:.1f} kops did not recover to "
        f"{RECOVERY_RATIO:.0%} of uniform baseline {uniform_tail:.1f} kops"
    )
    assert static_tail < RECOVERY_RATIO * uniform_tail, (
        f"static plane unexpectedly healthy: {static_tail:.1f} vs "
        f"uniform {uniform_tail:.1f} kops — the skew leg lost its bite"
    )
    assert rebal_tail > static_tail, (
        f"rebalancing made the skewed leg worse: {rebal_tail:.1f} vs "
        f"static {static_tail:.1f} kops"
    )

    # Claim 2: every recorded read matches the single-tree oracle, on
    # both the churning plane and the static one.
    for label, runner in (("rebalanced", rebal_runner),
                          ("static", static_runner)):
        summary = verify_routed_results(runner)
        assert summary.ok, f"{label} oracle mismatch: {summary}"
        assert summary.checked > 0

    ratio = rebal_tail / uniform_tail if uniform_tail else float("nan")
    return [
        f"uniform baseline    tail={uniform_tail:7.1f} kops",
        f"skewed static       tail={static_tail:7.1f} kops "
        f"({static_tail / uniform_tail:.0%} of baseline)",
        f"skewed rebalanced   tail={rebal_tail:7.1f} kops "
        f"({ratio:.0%} of baseline), {splits} splits, "
        f"{migrations} migrations, occupancy {occupancy}",
    ]


def run_open_loop_stage(smoke: bool = False) -> List[str]:
    traffic = TrafficConfig(
        kind="poisson",
        rate=100_000.0 if smoke else 200_000.0,
        duration_s=2e-3,
        n_aggregates=4,
        users_per_aggregate=1000,
        sessions=4,
        queue_watermark=64,
        window=256,
        hotspot_skew=True,
    )
    config = ExperimentConfig(
        scheme="fast-messaging-event",
        fabric="ib-100g",
        dataset_size=2_000,
        max_entries=16,
        seed=0,
        n_shards=4,
        rebalance=BENCH_REBALANCE,
        traffic=traffic,
    )
    runner = TrafficRunner(config)
    result = runner.run()
    stats = runner.rebalance_stats
    assert stats is not None and int(stats.splits) > 0, (
        "open-loop hotspot load never triggered a split"
    )
    accounted = (result.completed + result.failed
                 + result.shed_client_total)
    assert accounted == result.arrivals, (
        f"{result.arrivals} arrivals != {result.completed} completed + "
        f"{result.failed} failed + {result.shed_client_total} shed"
    )
    assert result.completed > 0
    return [
        f"offered {result.offered_rps:,.0f}/s achieved "
        f"{result.achieved_rps:,.0f}/s, {result.completed} completed, "
        f"{int(stats.splits)} splits / "
        f"{int(stats.migrations_completed)} migrations under open loop",
    ]


# -- pytest entry points ----------------------------------------------------

def test_rebalance_skew_recovery_smoke():
    run_skew_recovery_stage(smoke=True)


def test_rebalance_open_loop_smoke():
    run_open_loop_stage(smoke=True)


# -- CLI entry point --------------------------------------------------------

def main(argv) -> int:
    smoke = "--smoke" in argv[1:]
    print(f"== skew recovery ({'smoke' if smoke else 'full'}) ==")
    for line in run_skew_recovery_stage(smoke=smoke):
        print(line)

    print("\n== open loop (hotspot skew) ==")
    for line in run_open_loop_stage(smoke=smoke):
        print(line)

    print("\nall rebalance stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
