"""Paper Fig 8 — RDMA offloading with multi-issue.

One client, four request scales; compare single-issue (one RDMA Read per
RTT, the baseline) against multi-issue (all intersecting children fetched
concurrently).  The paper reports latency reductions at every scale with
the largest (15.13%) at scale 0.01, where nodes have the most intersecting
children to pipeline.
"""

from conftest import preset, print_figure, run_point

PAPER_SCALES = ("0.00001", "0.0001", "0.001", "0.01")


def _latency(scheme, paper_scale):
    result = run_point(
        scheme=scheme,
        fabric="ib-100g",
        n_clients=1,
        paper_scale=paper_scale,
        requests_per_client=max(200, preset().requests_per_client),
        seed=2,
    )
    return result.mean_search_latency_us


def test_fig08_multi_issue_latency(benchmark):
    def run():
        rows = []
        reductions = []
        for scale in PAPER_SCALES:
            single = _latency("rdma-offloading", scale)
            multi = _latency("rdma-offloading-multi", scale)
            reduction = (single - multi) / single * 100.0
            reductions.append((scale, reduction))
            rows.append([
                scale,
                f"{single:.2f}",
                f"{multi:.2f}",
                f"{reduction:.2f}%",
            ])
        return rows, reductions

    rows, reductions = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Fig 8(b)  single- vs multi-issue offloading latency (1 client)",
        ["scale", "single_us", "multi_us", "reduction"],
        rows,
    )
    # Multi-issue helps at every scale...
    assert all(r > 0 for _s, r in reductions)
    # ...and helps most at the largest scale (widest fan-out).
    assert reductions[-1][1] == max(r for _s, r in reductions)
