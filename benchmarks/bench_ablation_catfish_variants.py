"""Ablation — which of Catfish's three ingredients buys what?

DESIGN.md §6 items 2/3: isolate the event-based server and the
multi-issue traversal by running the scheme-registry variants at the
CPU-bound operating point:

* ``catfish``               — full system;
* ``catfish-polling``       — adaptive + multi-issue, but polling server;
* ``catfish-single-issue``  — adaptive + event server, one read per RTT;
* ``fast-messaging-event``  — event server alone, no offloading.
"""

from conftest import preset, print_figure, run_point

VARIANTS = (
    "catfish",
    "catfish-polling",
    "catfish-single-issue",
    "fast-messaging-event",
)


def test_ablation_catfish_variants(benchmark):
    p = preset()
    n = p.client_sweep[-1]

    def run():
        return {
            scheme: run_point(
                scheme=scheme,
                fabric="ib-100g",
                n_clients=n,
                paper_scale="0.00001",
                seed=7,
            )
            for scheme in VARIANTS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [scheme,
         f"{r.throughput_kops:.1f}",
         f"{r.mean_latency_us:.1f}",
         f"{r.offload_fraction * 100:.1f}%",
         f"{r.server_cpu_utilization * 100:.1f}%"]
        for scheme, r in results.items()
    ]
    print_figure(
        f"Ablation  Catfish ingredient isolation ({n} clients, CPU-bound)",
        ["variant", "kops", "mean_us", "offload", "cpu"],
        rows,
    )
    full = results["catfish"]
    polling = results["catfish-polling"]
    fm_event = results["fast-messaging-event"]

    # The event-based server matters: polling Catfish loses throughput.
    assert full.throughput_kops > polling.throughput_kops
    # Offloading matters: event-FM alone trails full Catfish.
    assert full.throughput_kops > fm_event.throughput_kops
    # Every variant still offloads except the pure fast-messaging one.
    assert fm_event.offload_fraction == 0.0
    assert full.offload_fraction > 0.0
