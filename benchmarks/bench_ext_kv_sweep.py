"""Extension sweep — the §VI structures under the Fig-10 methodology.

The figure the paper never had: B+tree and cuckoo GET-heavy workloads
(zipf-popular keys, 10% writes) swept over client counts, comparing fast
messaging, always-offload and adaptive Catfish, using the KV experiment
harness.
"""

import pytest

from conftest import print_figure

from repro.cluster import KvExperimentConfig, run_kv_experiment

CLIENTS = (8, 16, 32)
SCHEMES = ("fast-messaging", "rdma-offloading", "catfish")


def _sweep(index):
    grid = {}
    for scheme in SCHEMES:
        for n in CLIENTS:
            grid[(scheme, n)] = run_kv_experiment(KvExperimentConfig(
                index=index,
                scheme=scheme,
                n_clients=n,
                requests_per_client=80,
                n_keys=20_000,
                server_cores=4,
                heartbeat_interval=0.2e-3,
                seed=4,
            ))
    return grid


@pytest.mark.parametrize("index", ["btree", "cuckoo"])
def test_ext_kv_sweep(benchmark, index):
    grid = benchmark.pedantic(lambda: _sweep(index), rounds=1, iterations=1)
    rows = []
    for scheme in SCHEMES:
        rows.append(
            [scheme]
            + [f"{grid[(scheme, n)].throughput_kops:.1f}" for n in CLIENTS]
            + [f"{grid[(scheme, CLIENTS[-1])].mean_latency_us:.1f}"]
        )
    print_figure(
        f"Ext  {index} GET-heavy zipf workload (Kops; last col mean_us "
        f"@{CLIENTS[-1]} clients)",
        ["scheme"] + [str(n) for n in CLIENTS] + ["mean_us"],
        rows,
    )
    top = CLIENTS[-1]
    catfish = grid[("catfish", top)]
    fm = grid[("fast-messaging", top)]
    # adaptive >= fast messaging at saturation for both structures
    assert catfish.throughput_kops >= fm.throughput_kops * 0.95
    # every point completed its full request count
    for result in grid.values():
        assert result.total_requests == result.n_clients * 80
