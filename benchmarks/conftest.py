"""Shared benchmark harness: presets, scale equivalence, result caching.

Every ``bench_figNN_*.py`` regenerates one figure of the paper.  The paper
runs a 2-million-rectangle tree with up to 256 clients and 10,000 requests
per client; that is far beyond what a pure-Python DES can grind through in
a benchmark loop, so the default preset shrinks the experiment while
preserving every qualitative claim:

* the dataset shrinks, and query scales are rescaled by
  ``sqrt(paper_size / dataset_size)`` so the *result-set cardinalities*
  (and hence the CPU-vs-bandwidth balance) stay the paper's;
* the client counts shrink 4x; where the oversubscription ratio matters
  (Fig 7) the server core count shrinks with them so the ratios match the
  paper's exactly;
* heartbeat intervals shrink with the experiment duration so the adaptive
  algorithm sees as many heartbeats as it would in a long run.

Set ``CATFISH_BENCH_SCALE=medium`` (or ``large``) for bigger runs.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Tuple

import pytest

from repro import AdaptiveParams, ExperimentConfig, RunResult, run_experiment
from repro.workloads import PAPER_DATASET_SIZE, uniform_dataset


@dataclass(frozen=True)
class Preset:
    name: str
    dataset_size: int
    requests_per_client: int
    #: Client counts standing in for the paper's 32..256 sweep.
    client_sweep: Tuple[int, ...]
    #: Client counts for the paper's Fig 7 (80..320) sweep.
    fig7_sweep: Tuple[int, ...]
    #: Fig 7 server cores, chosen to match the paper's oversubscription.
    fig7_cores: int
    heartbeat_interval: float
    max_entries: int = 64


PRESETS = {
    "small": Preset(
        name="small",
        dataset_size=40_000,
        requests_per_client=60,
        client_sweep=(8, 16, 32, 64),
        fig7_sweep=(20, 40, 60, 80),
        fig7_cores=7,
        heartbeat_interval=0.25e-3,
    ),
    "medium": Preset(
        name="medium",
        dataset_size=200_000,
        requests_per_client=200,
        client_sweep=(16, 32, 64, 128),
        fig7_sweep=(40, 80, 120, 160),
        fig7_cores=14,
        heartbeat_interval=0.5e-3,
    ),
    "large": Preset(
        name="large",
        dataset_size=2_000_000,
        requests_per_client=1000,
        client_sweep=(32, 64, 128, 256),
        fig7_sweep=(80, 160, 240, 320),
        fig7_cores=28,
        heartbeat_interval=2e-3,
        max_entries=64,
    ),
}


def preset() -> Preset:
    name = os.environ.get("CATFISH_BENCH_SCALE", "small")
    if name not in PRESETS:
        raise KeyError(
            f"CATFISH_BENCH_SCALE={name!r}; known: {sorted(PRESETS)}"
        )
    return PRESETS[name]


def equivalent_scale(paper_scale: float, dataset_size: int) -> float:
    """Rescale a paper query scale to a smaller dataset so the expected
    result count (density x area) is unchanged."""
    return paper_scale * math.sqrt(PAPER_DATASET_SIZE / dataset_size)


def scale_spec(paper_label: str, dataset_size: int) -> str:
    """Map the paper's scale label to a rescaled generator spec."""
    if paper_label == "powerlaw":
        lo = equivalent_scale(1e-5, dataset_size)
        hi = equivalent_scale(1e-2, dataset_size)
        return f"powerlaw:{lo:.8g}:{hi:.8g}"
    return f"{equivalent_scale(float(paper_label), dataset_size):.8g}"


# -- dataset + result caches (shared across bench files in one session) -----

_dataset_cache: Dict[Tuple[int, int], list] = {}
_result_cache: Dict[tuple, RunResult] = {}

#: Every distinct run's metrics document, in run order; flushed to one
#: JSON artifact at session end (see pytest_sessionfinish).
_metrics_log: List[dict] = []


def shared_dataset(size: int, seed: int = 0) -> list:
    key = (size, seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = uniform_dataset(size, seed=seed)
    return _dataset_cache[key]


def run_point(
    scheme: str,
    fabric: str,
    n_clients: int,
    paper_scale: str,
    workload_kind: str = "search",
    seed: int = 0,
    **overrides,
) -> RunResult:
    """Run (or fetch from cache) one experiment point.

    Figures 10/11 (and 12/13) share identical runs — one reports
    throughput, the other latency — so points are cached per session.
    """
    p = preset()
    key_overrides = tuple(
        (k, id(v) if isinstance(v, (list, dict)) else v)
        for k, v in sorted(overrides.items())
    )
    key = (scheme, fabric, n_clients, paper_scale, workload_kind, seed,
           key_overrides)
    if key in _result_cache:
        return _result_cache[key]
    config = ExperimentConfig(
        scheme=scheme,
        fabric=fabric,
        n_clients=n_clients,
        requests_per_client=overrides.pop(
            "requests_per_client", p.requests_per_client
        ),
        workload_kind=workload_kind,
        scale=scale_spec(paper_scale, p.dataset_size),
        dataset=overrides.pop(
            "dataset", None
        ) or shared_dataset(p.dataset_size, seed=0),
        dataset_size=p.dataset_size,
        max_entries=overrides.pop("max_entries", p.max_entries),
        heartbeat_interval=overrides.pop(
            "heartbeat_interval", p.heartbeat_interval
        ),
        adaptive=overrides.pop(
            "adaptive", None
        ) or AdaptiveParams(N=8, T=0.95, Inv=p.heartbeat_interval),
        seed=seed,
        **overrides,
    )
    result = run_experiment(config)
    _result_cache[key] = result
    if result.metrics:
        _metrics_log.append(result.metrics)
    return result


def pytest_sessionfinish(session, exitstatus):
    """Flush every run's metrics document to one JSON artifact.

    Default path: ``BENCH_metrics.json`` in the invocation directory;
    override with ``CATFISH_METRICS_OUT`` (empty string disables).
    """
    if not _metrics_log:
        return
    path = os.environ.get("CATFISH_METRICS_OUT", "BENCH_metrics.json")
    if not path:
        return
    from repro.obs import write_metrics_json
    write_metrics_json(path, _metrics_log)
    print(f"\n[catfish] {len(_metrics_log)} run metrics -> {path}")


def print_figure(title: str, headers: List[str],
                 rows: List[List[str]]) -> None:
    """Render one paper-style series table to stdout."""
    print()
    print(f"=== {title} ===")
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    print("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def bench_preset():
    return preset()
