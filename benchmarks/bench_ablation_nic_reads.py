"""Ablation — multi-issue vs the NIC's outstanding-read budget.

Multi-issue posts one RDMA Read per intersecting child, but ConnectX-class
NICs only keep ~16 reads in flight per QP; beyond that the sends queue at
the NIC.  This ablation sweeps the per-QP budget to show how much
hardware parallelism the multi-issue traversal actually banks on — and
that a budget of 1 degenerates to single-issue latency.
"""

from conftest import preset, print_figure

from repro.client import ClientStats, OffloadEngine
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import RTreeServer
from repro.sim import Simulator
from repro.transport import connect
from repro.workloads import uniform_dataset

BUDGETS = (1, 2, 4, 16)


def _latency(budget, n_items=30_000, n_ops=120):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=8)
    net.attach_server(server_host)
    items = uniform_dataset(n_items, seed=13)
    # small nodes -> wide queries fan out over many leaves -> deep waves
    server = RTreeServer(sim, server_host, items, max_entries=16)
    client_host = Host(sim, "client", IB_100G, cores=2)
    client_host.nic.max_outstanding_reads = budget
    from repro.sim.resources import Resource
    client_host.nic._read_slots = Resource(sim, capacity=budget)
    qp, _ = connect(sim, net, client_host, server_host)
    # A fast client core (0.2 us/node check): otherwise the client's own
    # arrival processing, not the NIC, caps the useful parallelism at ~2
    # in-flight reads (itself a finding this bench surfaced).
    from repro.server.costs import CostModel
    fast_client_costs = CostModel(client_node_check=0.2e-6)
    engine = OffloadEngine(sim, qp, server.offload_descriptor(),
                           fast_client_costs, ClientStats(),
                           multi_issue=True)

    import random
    rng = random.Random(14)

    def client():
        t0 = sim.now
        for _ in range(n_ops):
            s = 0.2  # wide queries: dozens of concurrent leaf fetches
            x, y = rng.uniform(0, 1 - s), rng.uniform(0, 1 - s)
            yield from engine.search(Rect(x, y, x + s, y + s))
        return (sim.now - t0) / n_ops

    p = sim.process(client())
    sim.run_until_triggered(p)
    return p.value * 1e6


def test_ablation_outstanding_read_budget(benchmark):
    def run():
        return {b: _latency(b) for b in BUDGETS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[str(b), f"{lat:.2f}"] for b, lat in results.items()]
    print_figure(
        "Ablation  multi-issue latency vs NIC outstanding-read budget",
        ["budget", "mean_us"],
        rows,
    )
    # More in-flight reads -> faster wide searches, monotonically.
    lats = [results[b] for b in BUDGETS]
    assert all(a >= b for a, b in zip(lats, lats[1:]))
    # The hardware default (16) buys a solid factor over serialized reads.
    assert results[16] < results[1] * 0.6
