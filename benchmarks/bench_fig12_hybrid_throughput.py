"""Paper Fig 12 — throughput with 90% search + 10% insert workloads.

The inserts are at corner-skewed locations (§V-B).  Expected shapes:
Catfish still leads; RDMA offloading degrades relative to the search-only
runs because concurrent server-side inserts make one-sided reads fail
version validation and retry (the paper: "more inserts ... the higher
probability the clients will find the read-write conflict").

Runs are shared with bench_fig13 (latency) through the session cache.
"""

import pytest

from conftest import preset, print_figure, run_point

SCHEME_FABRICS = (
    ("tcp", "eth-1g"),
    ("tcp", "eth-40g"),
    ("fast-messaging", "ib-100g"),
    ("rdma-offloading", "ib-100g"),
    ("catfish", "ib-100g"),
)

PAPER_SCALES = ("0.00001", "0.01", "powerlaw")


def sweep(paper_scale):
    grid = {}
    for scheme, fabric in SCHEME_FABRICS:
        for n in preset().client_sweep:
            grid[(scheme, fabric, n)] = run_point(
                scheme=scheme,
                fabric=fabric,
                n_clients=n,
                paper_scale=paper_scale,
                workload_kind="hybrid",
            )
    return grid


def rows_from(grid, metric):
    rows = []
    for scheme, fabric in SCHEME_FABRICS:
        row = [f"{scheme}@{fabric}"]
        for n in preset().client_sweep:
            row.append(f"{metric(grid[(scheme, fabric, n)]):.1f}")
        rows.append(row)
    return rows


def headers():
    return ["scheme"] + [str(n) for n in preset().client_sweep]


@pytest.mark.parametrize("paper_scale", PAPER_SCALES)
def test_fig12_hybrid_throughput(benchmark, paper_scale):
    grid = benchmark.pedantic(
        lambda: sweep(paper_scale), rounds=1, iterations=1
    )
    print_figure(
        f"Fig 12  hybrid (90/10) throughput (Kops), scale {paper_scale}",
        headers(),
        rows_from(grid, lambda r: r.throughput_kops),
    )
    max_clients = preset().client_sweep[-1]

    def res(scheme, fabric):
        return grid[(scheme, fabric, max_clients)]

    catfish = res("catfish", "ib-100g")
    offload = res("rdma-offloading", "ib-100g")
    tcp1g = res("tcp", "eth-1g")

    # Catfish still leads the baselines.
    assert catfish.throughput_kops > offload.throughput_kops
    assert catfish.throughput_kops > tcp1g.throughput_kops
    # Offloading clients now hit read-write conflicts and retry.
    assert offload.torn_retries > 0
    # The server actually served the write stream.
    assert catfish.inserts_served > 0
