"""Substrate perf-regression harness (wall-clock, not simulated time).

Measures kernel events/sec, R-tree search visits/sec and one Fig-10-shaped
end-to-end wall-clock, and writes ``BENCH_perf.json`` — see
``repro.perfbench`` for the kernels and the artifact schema, and
``docs/performance.md`` for the recorded trajectory.

Run stand-alone (preferred for stable numbers)::

    PYTHONPATH=src python benchmarks/bench_perf_substrate.py [--baseline]

or via the CLI (``python -m repro perf``).  Under pytest the module is
marked ``perf`` and excluded from the default (tier-1) run::

    python -m pytest benchmarks/bench_perf_substrate.py -m perf
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.perfbench import (  # noqa: E402
    SCALE_PARAMS,
    bench_end_to_end,
    bench_kernel_events,
    bench_search_visits,
    main,
)

pytestmark = pytest.mark.perf


def test_perf_kernel_smoke():
    """The kernel bench runs and reports a sane rate (tiny work size)."""
    out = bench_kernel_events(2_000)
    assert out["events"] > 0
    assert out["events_per_s"] > 0


def test_perf_search_smoke():
    out = bench_search_visits(dataset_size=5_000, n_queries=50)
    assert out["visits"] > 0
    assert out["matches"] > 0


def test_perf_end_to_end_smoke():
    params = dict(SCALE_PARAMS["small"], e2e_clients=4, e2e_requests=10,
                  dataset_size=5_000)
    out = bench_end_to_end(params)
    assert out["wall_s"] > 0
    # Disabling observability must not change simulated results, only
    # wall-clock; wall_s_obs_off times the identical pair of points.
    assert out["wall_s_obs_off"] > 0
    assert set(out["points"]) == {"adaptive", "offload"}
    # adaptive point runs at 1.5x the base client count
    assert out["points"]["adaptive"]["total_requests"] == 60
    assert out["points"]["offload"]["total_requests"] == 40
    for point in out["points"].values():
        assert point["sim_elapsed_s"] > 0
        assert point["throughput_kops"] > 0


if __name__ == "__main__":
    sys.exit(main())
