"""Ablation — sensitivity of Catfish to the Algorithm 1 parameters.

Not a paper figure; DESIGN.md §6 calls this out.  Sweeps the back-off
window base N and the busy threshold T at a CPU-saturating operating
point and reports throughput / latency / offload fraction.

Expected: very small N reacts too timidly (low offload fraction, close to
fast-messaging behaviour); very low T offloads eagerly even when the
server could serve requests faster; the paper's N=8, T=95% sits in the
sweet spot.
"""

from conftest import preset, print_figure, run_point

from repro import AdaptiveParams


def run_with(N, T):
    p = preset()
    return run_point(
        scheme="catfish",
        fabric="ib-100g",
        n_clients=p.client_sweep[-1],
        paper_scale="0.00001",
        adaptive=AdaptiveParams(N=N, T=T, Inv=p.heartbeat_interval),
        seed=4,
    )


def test_ablation_backoff_window(benchmark):
    """Sweep N (the offload window base) at T=95%."""
    Ns = (1, 2, 8, 32, 128)

    def run():
        return {N: run_with(N, 0.95) for N in Ns}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(N),
         f"{r.throughput_kops:.1f}",
         f"{r.mean_latency_us:.1f}",
         f"{r.offload_fraction * 100:.1f}%",
         f"{r.server_cpu_utilization * 100:.1f}%"]
        for N, r in results.items()
    ]
    print_figure(
        "Ablation  Catfish vs back-off window base N (T=95%)",
        ["N", "kops", "mean_us", "offload", "cpu"],
        rows,
    )
    # Larger windows offload more under sustained saturation.
    assert (results[128].offload_fraction
            > results[1].offload_fraction)
    # The paper's N=8 must beat the degenerate no-window case.
    assert results[8].throughput_kops >= results[1].throughput_kops * 0.95


def test_ablation_busy_threshold(benchmark):
    """Sweep T (the busy threshold) at N=8."""
    Ts = (0.5, 0.75, 0.95)

    def run():
        return {T: run_with(8, T) for T in Ts}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{T:.2f}",
         f"{r.throughput_kops:.1f}",
         f"{r.mean_latency_us:.1f}",
         f"{r.offload_fraction * 100:.1f}%"]
        for T, r in results.items()
    ]
    print_figure(
        "Ablation  Catfish vs busy threshold T (N=8)",
        ["T", "kops", "mean_us", "offload"],
        rows,
    )
    # Lower thresholds offload at least as much as the strict one.
    assert results[0.5].offload_fraction >= results[0.95].offload_fraction
