"""Shard-scaling benchmark: read throughput versus shard count K.

Sweeps one saturated read workload over K ∈ {1, 2, 4, 8} shard servers
(same dataset, same clients, same seed; K=1 *is* the single-server
Catfish baseline — the router degenerates to a pass-through).  The
clients oversubscribe a deliberately small per-shard core count, so the
K=1 server saturates both its cores and (through the adaptive clients'
offloaded reads) its NIC; sharding multiplies both resources until the
scatter fan-out (a query straddling tile borders visits several shards,
and kNN visits all of them) starts eating the gain.

The acceptance floor asserted here: K=4 must deliver >= 2.5x the K=1
read throughput.

Usable both ways::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py
    PYTHONPATH=src python -m pytest benchmarks/bench_shard_scaling.py
"""

from __future__ import annotations

import sys

from repro import AdaptiveParams, ExperimentConfig, run_experiment

K_SWEEP = (1, 2, 4, 8)

#: The K=4 / K=1 read-throughput floor (ISSUE acceptance criterion).
SCALING_FLOOR = 2.5

#: Saturating read load: 96 closed-loop clients against 2 cores per
#: shard, with result sets big enough that every query costs real CPU
#: *and* NIC bandwidth — the two resources sharding multiplies.  (At
#: K=1 the adaptive clients offload ~80% of reads, so the baseline is
#: bounded by the single server's NIC, not just its cores; smaller
#: loads let offloading absorb the pressure and compress the curve.)
#: The mixed workload is read-only, so throughput == read throughput
#: and every K runs the identical request stream.
PARAMS = dict(
    n_clients=96,
    requests_per_client=60,
    dataset_size=20_000,
    server_cores=2,
    workload_kind="mixed",
    scale="0.02",
    heartbeat_interval=0.25e-3,
    seed=0,
)


def run_k(n_shards: int, **overrides):
    params = dict(PARAMS)
    params.update(overrides)
    heartbeat = params["heartbeat_interval"]
    config = ExperimentConfig(
        scheme="catfish-sharded",
        fabric="ib-100g",
        adaptive=AdaptiveParams(N=8, T=0.95, Inv=heartbeat),
        n_shards=n_shards,
        **params,
    )
    return run_experiment(config)


def sweep(**overrides):
    return {k: run_k(k, **overrides) for k in K_SWEEP}


def report(results) -> list:
    base = results[K_SWEEP[0]].throughput_kops
    lines = [f"{'K':>3} {'Kops':>9} {'speedup':>8} {'mean_us':>8} "
             f"{'cpu':>6} {'subq/q':>7}"]
    for k, result in results.items():
        subq = (result.extra.get("n_shards") and
                _fanout(result)) or 1.0
        lines.append(
            f"{k:>3} {result.throughput_kops:>9.1f} "
            f"{result.throughput_kops / base:>7.2f}x "
            f"{result.mean_latency_us:>8.1f} "
            f"{result.server_cpu_utilization:>6.1%} {subq:>7.2f}"
        )
    return lines


def _fanout(result) -> float:
    meta = result.metrics.get("metrics", {}) if result.metrics else {}
    issued = meta.get("router.subqueries_issued", {}).get("value")
    routed = meta.get("router.queries_routed", {}).get("value")
    if issued and routed:
        return issued / routed
    return 1.0


def test_shard_scaling_floor():
    results = sweep()
    for line in report(results):
        print(line)
    base = results[1].throughput_kops
    k4 = results[4].throughput_kops
    assert k4 >= SCALING_FLOOR * base, (
        f"K=4 throughput {k4:.1f} Kops < {SCALING_FLOOR}x the K=1 "
        f"baseline {base:.1f} Kops"
    )
    # Monotone through the sweep's saturated region.
    assert results[2].throughput_kops > base


def main(argv) -> int:
    results = sweep()
    for line in report(results):
        print(line)
    base = results[1].throughput_kops
    k4 = results[4].throughput_kops
    ratio = k4 / base
    ok = ratio >= SCALING_FLOOR
    print(f"\nK=4 vs K=1: {ratio:.2f}x "
          f"({'ok' if ok else 'BELOW'} floor {SCALING_FLOOR}x)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
