"""Client-side node cache: RTTs saved and exactness under write storms.

Two claims, both beyond the paper (RDMAbox-style client caching grafted
onto the offload path):

1. **RTT savings** — on a repeated-search workload the cache serves the
   upper tree levels locally, cutting ``offload.chunks_fetched`` per
   search by at least 30% (the acceptance floor; typically ~2/3 for
   point-ish queries whose traversals are mostly upper levels).
2. **Exactness** — cache-served searches return exactly what the server
   tree would, including while a write-storm fault toggles node versions
   and concurrent inserts advance the mutation high-water mark.

Usable both ways::

    PYTHONPATH=src python benchmarks/bench_node_cache.py [--smoke]
    PYTHONPATH=src python -m pytest benchmarks/bench_node_cache.py
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, run_experiment
from repro.client.node_cache import NodeCacheConfig
from repro.faults.scenarios import run_scenario

#: The acceptance floor: cache-enabled repeated searches must post at
#: least this much fewer one-sided chunk reads per search.
REDUCTION_FLOOR = 0.30


def _config(cache: bool, smoke: bool) -> ExperimentConfig:
    return ExperimentConfig(
        scheme="rdma-offloading-multi",
        fabric="ib-100g",
        n_clients=4,
        requests_per_client=50 if smoke else 200,
        workload_kind="search",
        # Result-bearing queries: the off/on equality check below then
        # compares real match sets, not two empty ones.
        scale="0.01",
        dataset_size=2_000 if smoke else 10_000,
        seed=0,
        node_cache=NodeCacheConfig() if cache else None,
    )


def run_savings(smoke: bool = False) -> dict:
    """Cache off vs on over the same repeated-search workload."""
    rows = {}
    for label, cache in (("off", False), ("on", True)):
        result = run_experiment(_config(cache, smoke))
        metrics = result.metrics["metrics"]
        searches = metrics["client.offloaded_requests"]["value"]
        chunks = metrics["offload.chunks_fetched"]["value"]
        rows[label] = {
            "searches": searches,
            "chunks_fetched": chunks,
            "chunks_per_search": chunks / searches,
            "results": metrics["client.results_received"]["value"],
            "p50_us": result.p50_latency_us,
            "hits": metrics.get("cache.hits", {}).get("value", 0),
            "misses": metrics.get("cache.misses", {}).get("value", 0),
        }
    off, on = rows["off"], rows["on"]
    rows["reduction"] = 1.0 - (on["chunks_per_search"]
                               / off["chunks_per_search"])
    return rows


def run_storm_exactness(smoke: bool = False) -> dict:
    """Write-storm chaos scenario with the cache enabled: the harness
    compares every response against the server tree (the oracle)."""
    report = run_scenario(
        "write-storm",
        seed=0,
        n_clients=2,
        requests_per_client=100 if smoke else 300,
        dataset_size=1_000 if smoke else 2_000,
        node_cache=NodeCacheConfig(),
    )
    return {
        "ok": report.ok,
        "mismatches": report.mismatches,
        "completed": report.completed,
        "issued": report.issued,
        "failures": report.failures,
    }


def check(savings: dict, storm: dict) -> None:
    assert savings["reduction"] >= REDUCTION_FLOOR, savings
    # Same workload, same seed: identical result cardinalities.
    assert savings["on"]["results"] == savings["off"]["results"], savings
    assert savings["on"]["hits"] > 0, savings
    assert storm["mismatches"] == 0, storm
    assert storm["ok"], storm["failures"]


def test_node_cache_savings_and_exactness():
    savings = run_savings(smoke=True)
    storm = run_storm_exactness(smoke=True)
    check(savings, storm)


def main(argv) -> int:
    smoke = "--smoke" in argv[1:]
    savings = run_savings(smoke=smoke)
    storm = run_storm_exactness(smoke=smoke)
    off, on = savings["off"], savings["on"]
    print("node cache: repeated-search RTT savings")
    print(f"  {'':>10} {'chunks/search':>14} {'p50_us':>8} {'results':>8}")
    for label, row in (("cache off", off), ("cache on", on)):
        print(f"  {label:>10} {row['chunks_per_search']:>14.2f} "
              f"{row['p50_us']:>8.2f} {row['results']:>8}")
    print(f"  reduction: {savings['reduction'] * 100:.1f}% "
          f"(floor {REDUCTION_FLOOR * 100:.0f}%); "
          f"hits {on['hits']}, misses {on['misses']}")
    print("write-storm exactness (cache on): "
          f"{storm['completed']}/{storm['issued']} completed, "
          f"{storm['mismatches']} oracle mismatches")
    check(savings, storm)
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
