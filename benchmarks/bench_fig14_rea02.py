"""Paper Fig 14 — the rea02 real-world dataset.

Uses the synthetic rea02 stand-in (see DESIGN.md): California street
segments grouped in ~20k-object sub-regions, queries sized to return
50-150 (mean ~100) rectangles.  Expected: the same ordering as the
search-only experiments — Catfish highest throughput and lowest latency,
TCP an order of magnitude behind.
"""

import pytest

from conftest import preset, print_figure, run_point

from repro.workloads import generate_rea02, generate_rea02_queries

SCHEME_FABRICS = (
    ("tcp", "eth-1g"),
    ("tcp", "eth-40g"),
    ("fast-messaging", "ib-100g"),
    ("rdma-offloading", "ib-100g"),
    ("catfish", "ib-100g"),
)

_cache = {}


def rea02_inputs():
    p = preset()
    key = p.dataset_size
    if key not in _cache:
        # Scale the region size with the dataset so region structure holds.
        sub = max(500, 20_000 * p.dataset_size // 1_888_012)
        items = generate_rea02(n=p.dataset_size, subregion_objects=sub,
                               seed=14)
        queries = generate_rea02_queries(
            512, dataset_size=p.dataset_size, seed=15
        )
        _cache[key] = (items, queries)
    return _cache[key]


def sweep():
    items, queries = rea02_inputs()
    grid = {}
    for scheme, fabric in SCHEME_FABRICS:
        for n in preset().client_sweep:
            grid[(scheme, fabric, n)] = run_point(
                scheme=scheme,
                fabric=fabric,
                n_clients=n,
                paper_scale="0.00001",  # ignored for query workloads
                workload_kind="queries",
                queries=queries,
                dataset=items,
            )
    return grid


def test_fig14_rea02(benchmark):
    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    clients = preset().client_sweep
    thr_rows, lat_rows = [], []
    for scheme, fabric in SCHEME_FABRICS:
        label = f"{scheme}@{fabric}"
        thr_rows.append([label] + [
            f"{grid[(scheme, fabric, n)].throughput_kops:.1f}"
            for n in clients
        ])
        lat_rows.append([label] + [
            f"{grid[(scheme, fabric, n)].mean_latency_us:.1f}"
            for n in clients
        ])
    headers = ["scheme"] + [str(n) for n in clients]
    print_figure("Fig 14(a)  rea02 throughput (Kops)", headers, thr_rows)
    print_figure("Fig 14(b)  rea02 mean latency (us)", headers, lat_rows)

    n = clients[-1]
    catfish = grid[("catfish", "ib-100g", n)]
    fm = grid[("fast-messaging", "ib-100g", n)]
    offload = grid[("rdma-offloading", "ib-100g", n)]
    tcp1g = grid[("tcp", "eth-1g", n)]

    assert catfish.throughput_kops > fm.throughput_kops
    assert catfish.throughput_kops > offload.throughput_kops
    assert catfish.throughput_kops > tcp1g.throughput_kops
    assert catfish.mean_latency_us < tcp1g.mean_latency_us
    # rea02 queries really return ~100 results on average.
    mean_results = (catfish.extra.get("mean_results")
                    if catfish.extra else None)
    # (checked structurally in tests/test_workloads.py)
