"""Ablation — STR bulk loading vs incremental R* construction.

DESIGN.md §6 item 5: the harness bulk loads with STR for speed; does that
change the conclusions?  Compares tree quality (nodes visited per search,
which drives both server CPU and offload read counts) between an STR-built
and an R*-insert-built tree over the same data, plus build cost.
"""

import random
import time

from conftest import print_figure

from repro.rtree import RStarTree, bulk_load
from repro.workloads import uniform_dataset, uniform_scale_rect

N_ITEMS = 8000
N_QUERIES = 200


def _build_trees():
    items = uniform_dataset(N_ITEMS, seed=3)
    t0 = time.perf_counter()
    str_tree = bulk_load(items, max_entries=32)
    str_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    rstar = RStarTree(max_entries=32)
    for rect, i in items:
        rstar.insert(rect, i)
    rstar_build = time.perf_counter() - t0
    return str_tree, str_build, rstar, rstar_build


def _visits(tree, scale, seed=4):
    rng = random.Random(seed)
    total = 0
    for _ in range(N_QUERIES):
        query = uniform_scale_rect(rng, scale)
        total += tree.search(query).nodes_visited
    return total / N_QUERIES


def test_ablation_str_vs_incremental(benchmark):
    def run():
        str_tree, str_build, rstar, rstar_build = _build_trees()
        out = {
            "str_build_s": str_build,
            "rstar_build_s": rstar_build,
            "str_nodes": str_tree.node_count,
            "rstar_nodes": rstar.node_count,
        }
        for scale in (0.001, 0.01, 0.1):
            out[f"str_visits_{scale}"] = _visits(str_tree, scale)
            out[f"rstar_visits_{scale}"] = _visits(rstar, scale)
        # correctness cross-check on one broad query
        from repro.rtree import Rect
        q = Rect(0.2, 0.2, 0.5, 0.5)
        assert (sorted(str_tree.search(q).data_ids)
                == sorted(rstar.search(q).data_ids))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["build time (s)", f"{out['str_build_s']:.3f}",
         f"{out['rstar_build_s']:.3f}"],
        ["node count", str(out["str_nodes"]), str(out["rstar_nodes"])],
    ]
    for scale in (0.001, 0.01, 0.1):
        rows.append([
            f"visits @ {scale}",
            f"{out[f'str_visits_{scale}']:.2f}",
            f"{out[f'rstar_visits_{scale}']:.2f}",
        ])
    print_figure(
        "Ablation  STR bulk load vs incremental R* build",
        ["metric", "STR", "R*"],
        rows,
    )
    # STR must be far cheaper to build...
    assert out["str_build_s"] < out["rstar_build_s"] / 5
    # ...and of comparable search quality (within 2.5x visits) so using it
    # for the experiment pre-builds does not distort the figures.
    for scale in (0.001, 0.01, 0.1):
        assert (out[f"str_visits_{scale}"]
                < out[f"rstar_visits_{scale}"] * 2.5)
