"""Paper Fig 13 — latency with 90% search + 10% insert workloads.

Same grid as Fig 12 (shared runs).  Expected: the same trends as the
search-only latency figure — Catfish low, TCP an order of magnitude
higher — plus visible degradation of offloading as retry rates rise.
"""

import pytest

from bench_fig12_hybrid_throughput import (
    PAPER_SCALES,
    SCHEME_FABRICS,
    headers,
    rows_from,
    sweep,
)
from conftest import preset, print_figure


@pytest.mark.parametrize("paper_scale", PAPER_SCALES)
def test_fig13_hybrid_latency(benchmark, paper_scale):
    grid = benchmark.pedantic(
        lambda: sweep(paper_scale), rounds=1, iterations=1
    )
    print_figure(
        f"Fig 13  hybrid (90/10) mean latency (us), scale {paper_scale}",
        headers(),
        rows_from(grid, lambda r: r.mean_latency_us),
    )
    max_clients = preset().client_sweep[-1]

    def latency(scheme, fabric):
        return grid[(scheme, fabric, max_clients)].mean_latency_us

    catfish = latency("catfish", "ib-100g")
    tcp1g = latency("tcp", "eth-1g")
    tcp40g = latency("tcp", "eth-40g")
    fm = latency("fast-messaging", "ib-100g")

    assert catfish < tcp1g
    assert catfish < tcp40g
    assert catfish < fm
