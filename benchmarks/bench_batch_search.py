"""Cross-query batched search: visits/s floor, e2e RTT savings, fallback.

Three claims, all beyond the paper (SIMD-style scan vectorization after
Rayhan & Aref, plus cross-query frontier sharing):

1. **Engine throughput** — the shared-frontier ``BatchSearchEngine``
   sustains at least ``VISITS_SPEEDUP_FLOOR`` x the sequential
   ``RStarTree.search`` visit rate on the same query stream, while
   returning bit-identical per-query results (asserted, not assumed).
2. **Offloaded batching** — an ``rdma-offloading-multi`` run with
   ``batch_queries`` grouping outperforms the sequential run of the
   same workload: the shared traversal reads each frontier chunk once
   per group instead of once per query.
3. **Fallback** — with the pure-Python kernel forced, the engine still
   returns oracle-identical results (no throughput floor: the fallback
   is a correctness path, not a fast path).

Usable both ways::

    PYTHONPATH=src python benchmarks/bench_batch_search.py [--smoke]
    PYTHONPATH=src python -m pytest benchmarks/bench_batch_search.py
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, run_experiment
from repro.perfbench import bench_search_visits, bench_search_visits_batched
from repro.rtree import forced_kernel, kernel_name

#: Batched visits/s must beat sequential by at least this factor.
VISITS_SPEEDUP_FLOOR = 2.0
#: Batched end-to-end throughput must beat sequential by this factor.
E2E_SPEEDUP_FLOOR = 1.2


def run_engine_stage(smoke: bool = False) -> dict:
    """Sequential vs batched visit rate over the same tree + queries."""
    dataset = 20_000 if smoke else 40_000
    queries = 6_000 if smoke else 10_000
    sequential = bench_search_visits(dataset, queries, repeats=3)
    batched = bench_search_visits_batched(dataset, queries, repeats=3)
    assert batched["matches"] == sequential["matches"], "result divergence"
    assert batched["visits"] == sequential["visits"], "visit divergence"
    return {
        "kernel": kernel_name(),
        "sequential_visits_per_s": sequential["visits_per_s"],
        "batched_visits_per_s": batched["visits_per_s"],
        "speedup": batched["visits_per_s"] / sequential["visits_per_s"],
        "batch_size": batched["batch_size"],
        "amortization": batched["visits"] / max(1, batched["shared_visits"]),
    }


def run_e2e_stage(smoke: bool = False) -> dict:
    """Offload scheme with and without driver-level query batching."""
    rows = {}
    for label, batch_queries in (("off", 0), ("on", 8)):
        config = ExperimentConfig(
            scheme="rdma-offloading-multi",
            fabric="ib-100g",
            n_clients=4,
            requests_per_client=64 if smoke else 200,
            workload_kind="search",
            scale="0.01",
            dataset_size=4_000 if smoke else 20_000,
            batch_queries=batch_queries,
            seed=0,
        )
        result = run_experiment(config)
        metrics = result.metrics["metrics"]
        rows[label] = {
            "throughput_kops": result.throughput_kops,
            "results": metrics["client.results_received"]["value"],
            "chunks_fetched": metrics["offload.chunks_fetched"]["value"],
        }
    rows["speedup"] = (rows["on"]["throughput_kops"]
                       / rows["off"]["throughput_kops"])
    return rows


def run_fallback_stage(smoke: bool = False) -> dict:
    """The pure-Python kernel returns the same matches and visit counts."""
    dataset = 5_000 if smoke else 20_000
    queries = 500 if smoke else 2_000
    with forced_kernel("python"):
        assert kernel_name() == "python"
        sequential = bench_search_visits(dataset, queries)
        batched = bench_search_visits_batched(dataset, queries)
    assert batched["matches"] == sequential["matches"], "fallback divergence"
    assert batched["visits"] == sequential["visits"], "fallback divergence"
    return {"matches": batched["matches"], "visits": batched["visits"]}


def check(engine: dict, e2e: dict) -> None:
    assert engine["speedup"] >= VISITS_SPEEDUP_FLOOR, engine
    assert e2e["speedup"] >= E2E_SPEEDUP_FLOOR, e2e
    # Same workload, same seed: batching must not change what is served.
    assert e2e["on"]["results"] == e2e["off"]["results"], e2e
    assert e2e["on"]["chunks_fetched"] < e2e["off"]["chunks_fetched"], e2e


def test_batched_search_floors():
    engine = run_engine_stage(smoke=True)
    e2e = run_e2e_stage(smoke=True)
    run_fallback_stage(smoke=True)
    check(engine, e2e)


def main(argv) -> int:
    smoke = "--smoke" in argv[1:]
    engine = run_engine_stage(smoke=smoke)
    print(f"engine ({engine['kernel']} kernel, "
          f"Q={engine['batch_size']}/group):")
    print(f"  sequential {engine['sequential_visits_per_s']:>12,.0f} visits/s")
    print(f"  batched    {engine['batched_visits_per_s']:>12,.0f} visits/s "
          f"({engine['speedup']:.2f}x, floor {VISITS_SPEEDUP_FLOOR:.1f}x; "
          f"{engine['amortization']:.1f} queries/shared visit)")
    e2e = run_e2e_stage(smoke=smoke)
    print("end-to-end rdma-offloading-multi:")
    for label in ("off", "on"):
        row = e2e[label]
        print(f"  batching {label:>3}: {row['throughput_kops']:>8.0f} Kops, "
              f"{row['chunks_fetched']:>8} chunk reads")
    print(f"  speedup: {e2e['speedup']:.2f}x (floor {E2E_SPEEDUP_FLOOR:.1f}x)")
    fallback = run_fallback_stage(smoke=smoke)
    print(f"fallback kernel: {fallback['matches']} matches / "
          f"{fallback['visits']} visits, oracle-identical")
    check(engine, e2e)
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
