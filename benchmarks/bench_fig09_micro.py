"""Paper Fig 9 — communication micro-benchmark.

Ping-pong transfers (1-byte request, variable-size response) over TCP on
1/40 GbE, and perftest-style RDMA Read / RDMA Write streams on InfiniBand,
for chunk sizes from 2 B to 8 MB.  Reports latency (Fig 9a) and
throughput (Fig 9b).

Expected shapes: RDMA Write lowest latency; RDMA Read above Write for
small sizes (it needs a full round trip); TCP/1G worst; all methods flat
below ~2 KB and bandwidth-limited above.
"""

from conftest import print_figure

from repro.hw import Host
from repro.net import ETH_1G, ETH_40G, IB_100G, Network
from repro.sim import Simulator
from repro.transport import TcpConnection, connect

SIZES = (2, 64, 1024, 16 * 1024, 256 * 1024, 1024 * 1024, 8 * 1024 * 1024)
REPS = 12


class _Blob:
    """RDMA target that accepts writes and serves reads of any size."""

    def rdma_write(self, address, length, payload, now):
        pass

    def rdma_read(self, address, length, now):
        return b""


def _tcp_pingpong(profile, size, reps=REPS):
    """Mean one-chunk latency (s) for request(1B) -> response(size)."""
    sim = Simulator()
    net = Network(sim, profile)
    server = Host(sim, "server", profile)
    client = Host(sim, "client", profile, cores=2)
    net.attach_server(server)
    conn = TcpConnection(sim, net, client, server)

    def server_proc():
        for _ in range(reps):
            yield conn.server_recv()
            yield from conn.server_send(b"", size)

    def client_proc():
        t0 = sim.now
        for _ in range(reps):
            yield from conn.client_send(b"", 1)
            yield conn.client_recv()
        return (sim.now - t0) / reps

    sim.process(server_proc())
    p = sim.process(client_proc())
    sim.run_until_triggered(p)
    return p.value


def _rdma_stream(op, size, reps=REPS):
    """Mean per-chunk latency (s) for back-to-back RDMA Read/Write."""
    sim = Simulator()
    net = Network(sim, IB_100G)
    server = Host(sim, "server", IB_100G)
    client = Host(sim, "client", IB_100G, cores=2)
    net.attach_server(server)
    region = server.memory.register(max(size, 1) + 64, name="blob")
    server.memory.bind(region.rkey, _Blob())
    qp, _ = connect(sim, net, client, server)

    def client_proc():
        t0 = sim.now
        for _ in range(reps):
            if op == "read":
                yield qp.post_read(region.rkey, region.base, size)
            else:
                yield qp.post_write(region.rkey, region.base, b"", size)
        return (sim.now - t0) / reps

    p = sim.process(client_proc())
    sim.run_until_triggered(p)
    return p.value


METHODS = (
    ("tcp-1g", lambda size: _tcp_pingpong(ETH_1G, size)),
    ("tcp-40g", lambda size: _tcp_pingpong(ETH_40G, size)),
    ("rdma-read", lambda size: _rdma_stream("read", max(size, 1))),
    ("rdma-write", lambda size: _rdma_stream("write", size)),
)


def test_fig09_micro_benchmark(benchmark):
    def run():
        table = {}
        for name, fn in METHODS:
            table[name] = [fn(size) for size in SIZES]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lat_rows = []
    thr_rows = []
    for i, size in enumerate(SIZES):
        lat_rows.append(
            [str(size)] + [f"{table[m][i] * 1e6:.2f}" for m, _ in METHODS]
        )
        thr_rows.append(
            [str(size)]
            + [f"{size * 8 / table[m][i] / 1e9:.3f}" for m, _ in METHODS]
        )
    headers = ["bytes"] + [m for m, _ in METHODS]
    print_figure("Fig 9(a)  transmission latency (us)", headers, lat_rows)
    print_figure("Fig 9(b)  throughput (Gbps)", headers, thr_rows)

    small = SIZES.index(64)
    big = SIZES.index(8 * 1024 * 1024)
    # RDMA Write has the lowest small-transfer latency; Read costs a
    # round trip more; TCP/1G is the worst.
    assert table["rdma-write"][small] < table["rdma-read"][small]
    assert table["rdma-read"][small] < table["tcp-40g"][small]
    assert table["tcp-40g"][small] < table["tcp-1g"][small]
    # Large transfers are bandwidth-limited: RDMA ~100G > 40G > 1G.
    assert table["tcp-1g"][big] > table["tcp-40g"][big] > table["rdma-write"][big]
    # TCP latency is flat for small sizes (latency-dominated).
    assert table["tcp-1g"][small] < table["tcp-1g"][0] * 1.5
