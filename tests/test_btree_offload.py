"""B+tree over the Catfish framework: service, offloading, adaptive."""

import random

import pytest

from repro.btree import (
    BTreeOffloadEngine,
    BTreeService,
    KvCatfishSession,
    KvFmSession,
    KvOffloadSession,
    KvRequest,
    OP_GET,
    OP_PUT,
    OP_SCAN,
)
from repro.client import AdaptiveParams, ClientStats
from repro.hw import Host
from repro.msg import Heartbeat
from repro.net import IB_100G, Network
from repro.server import EVENT, FastMessagingServer
from repro.sim import Simulator


def make_kv(n=2000, capacity=16, cores=4, multi_issue=True, seed=1):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=cores)
    net.attach_server(server_host)
    rng = random.Random(seed)
    keys = rng.sample(range(n * 10), n)
    items = [(k, k * 2) for k in keys]
    service = BTreeService(sim, server_host, items, capacity=capacity)
    fm_server = FastMessagingServer(sim, service, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = KvFmSession(sim, conn, 0, stats)
    engine = BTreeOffloadEngine(
        sim, conn.client_end, service.offload_descriptor(), service.costs,
        stats, multi_issue=multi_issue,
    )
    return sim, server_host, service, fm, engine, stats, sorted(keys)


class TestFastMessagingPath:
    def test_get_round_trip(self):
        sim, sh, service, fm, engine, stats, keys = make_kv()
        k = keys[10]

        def client():
            items = yield from fm.execute(KvRequest(OP_GET, key=k))
            return items

        p = sim.process(client())
        sim.run()
        assert p.value == [(k, k * 2)]
        assert service.gets_served == 1

    def test_put_then_get(self):
        sim, sh, service, fm, engine, stats, keys = make_kv()

        def client():
            yield from fm.execute(KvRequest(OP_PUT, key=999_999, value=7))
            items = yield from fm.execute(KvRequest(OP_GET, key=999_999))
            return items

        p = sim.process(client())
        sim.run()
        assert p.value == [(999_999, 7)]
        assert service.puts_served == 1

    def test_scan_round_trip(self):
        sim, sh, service, fm, engine, stats, keys = make_kv()
        lo, hi = keys[100], keys[200]

        def client():
            items = yield from fm.execute(
                KvRequest(OP_SCAN, lo=lo, hi=hi))
            return items

        p = sim.process(client())
        sim.run()
        expected = [(k, k * 2) for k in keys if lo <= k <= hi]
        assert p.value == expected
        assert service.scans_served == 1

    def test_delete_round_trip(self):
        from repro.btree import OP_KV_DELETE
        sim, sh, service, fm, engine, stats, keys = make_kv()
        k = keys[5]

        def client():
            yield from fm.execute(KvRequest(OP_KV_DELETE, key=k))
            items = yield from fm.execute(KvRequest(OP_GET, key=k))
            return items

        p = sim.process(client())
        sim.run()
        assert p.value == []
        assert service.deletes_served == 1


class TestOffloadPath:
    @pytest.mark.parametrize("multi_issue", [False, True])
    def test_offload_get_correct(self, multi_issue):
        sim, sh, service, fm, engine, stats, keys = make_kv(
            multi_issue=multi_issue
        )
        sample = random.Random(3).sample(keys, 20)

        def client():
            out = []
            for k in sample:
                items = yield from engine.get(k)
                out.append(items)
            missing = yield from engine.get(10**9 - 1)
            out.append(missing)
            return out

        p = sim.process(client())
        sim.run()
        for k, items in zip(sample, p.value):
            assert items == [(k, k * 2)]
        assert p.value[-1] == []

    @pytest.mark.parametrize("multi_issue", [False, True])
    def test_offload_scan_correct(self, multi_issue):
        sim, sh, service, fm, engine, stats, keys = make_kv(
            multi_issue=multi_issue
        )
        lo, hi = keys[40], keys[400]

        def client():
            items = yield from engine.scan(lo, hi)
            return items

        p = sim.process(client())
        sim.run()
        expected = [(k, k * 2) for k in keys if lo <= k <= hi]
        assert p.value == expected

    def test_offload_scan_max_results(self):
        sim, sh, service, fm, engine, stats, keys = make_kv()

        def client():
            items = yield from engine.scan(keys[0], keys[-1],
                                           max_results=25)
            return items

        p = sim.process(client())
        sim.run()
        assert len(p.value) == 25
        assert [k for k, _v in p.value] == keys[:25]

    def test_offload_consumes_zero_server_cpu(self):
        sim, sh, service, fm, engine, stats, keys = make_kv()

        def client():
            for k in keys[:30]:
                yield from engine.get(k)
            yield from engine.scan(keys[0], keys[60])

        sim.process(client())
        sim.run()
        assert sh.cpu.total_work_seconds == 0.0

    def test_multi_issue_scan_is_faster(self):
        def timed(multi_issue):
            sim, sh, service, fm, engine, stats, keys = make_kv(
                n=4000, capacity=8, multi_issue=multi_issue
            )
            lo, hi = keys[0], keys[2000]

            def client():
                t0 = sim.now
                yield from engine.scan(lo, hi)
                return sim.now - t0

            p = sim.process(client())
            sim.run()
            return p.value

        assert timed(True) < timed(False) * 0.8

    def test_torn_reads_during_concurrent_puts(self):
        sim, sh, service, fm, engine, stats, keys = make_kv()
        rng = random.Random(9)

        def writer():
            for i in range(600):
                # fresh keys near a hot spot: splits touch several nodes
                yield from service.execute_put(keys[50] * 10 + i, i)
                yield sim.timeout(rng.uniform(0, 3e-6))

        def reader():
            for _ in range(300):
                yield from engine.get(keys[50])
                # jitter so the read instants don't phase-lock with the
                # writer's deterministic put period
                yield sim.timeout(rng.uniform(0, 5e-6))

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert stats.torn_retries > 0

    def test_root_split_detected_via_meta(self):
        sim, sh, service, fm, engine, stats, keys = make_kv(
            n=10, capacity=4
        )
        old_height = service.tree.height

        def client():
            first = yield from engine.get(keys[0])
            i = 0
            while service.tree.height == old_height:
                yield from service.execute_put(10**6 + i, i)
                i += 1
            second = yield from engine.get(10**6)
            return first, second

        p = sim.process(client())
        sim.run()
        first, second = p.value
        assert first == [(keys[0], keys[0] * 2)]
        assert second == [(10**6, 0)]


class TestAdaptiveKv:
    def test_catfish_session_offloads_under_load(self):
        sim, sh, service, fm, engine, stats, keys = make_kv(cores=2)
        session = KvCatfishSession(
            sim, fm, engine, stats,
            params=AdaptiveParams(N=8, T=0.9, Inv=0.2e-3),
            rng=random.Random(5),
        )

        def feeder():
            # emulate heartbeats reporting a saturated server
            while sim.now < 30e-3:
                fm.mailbox.deliver(
                    Heartbeat(1.0, seq=fm.mailbox.seq + 1))
                yield sim.timeout(0.2e-3)

        def client():
            for k in keys[:200]:
                yield from session.execute(KvRequest(OP_GET, key=k))
                yield sim.timeout(50e-6)

        sim.process(feeder())
        done = sim.process(client())
        sim.run_until_triggered(done)
        assert stats.offloaded_requests > 0
        assert stats.fast_messaging_requests > 0

    def test_puts_never_offloaded(self):
        sim, sh, service, fm, engine, stats, keys = make_kv()
        session = KvCatfishSession(
            sim, fm, engine, stats,
            params=AdaptiveParams(N=8, T=0.9, Inv=0.2e-3),
        )
        fm.mailbox.deliver(Heartbeat(1.0, seq=fm.mailbox.seq + 1))

        def client():
            for i in range(10):
                yield from session.execute(
                    KvRequest(OP_PUT, key=10**7 + i, value=i))

        done = sim.process(client())
        sim.run_until_triggered(done)
        assert stats.offloaded_requests == 0
        assert service.puts_served == 10

    def test_offload_session_baseline(self):
        sim, sh, service, fm, engine, stats, keys = make_kv()
        session = KvOffloadSession(engine, fm, stats)

        def client():
            items = yield from session.execute(
                KvRequest(OP_GET, key=keys[3]))
            yield from session.execute(
                KvRequest(OP_PUT, key=10**7, value=5))
            return items

        p = sim.process(client())
        sim.run()
        assert p.value == [(keys[3], keys[3] * 2)]
        assert stats.offloaded_requests == 1
        assert service.puts_served == 1


class TestKvRequestValidation:
    def test_bad_op(self):
        with pytest.raises(ValueError):
            KvRequest("mget", key=1)

    def test_get_needs_key(self):
        with pytest.raises(ValueError):
            KvRequest(OP_GET)

    def test_put_needs_value(self):
        with pytest.raises(ValueError):
            KvRequest(OP_PUT, key=1)

    def test_scan_needs_bounds(self):
        with pytest.raises(ValueError):
            KvRequest(OP_SCAN, lo=1)
